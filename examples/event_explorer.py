#!/usr/bin/env python3
"""Event explorer — MABED over news and Twitter, with timelines.

Shows the event-detection substrate on its own: detect events on both
corpora (60-minute news slices, 30-minute tweet slices, §5.3–§5.4),
print each event in the paper's table layout, and draw an ASCII timeline
of mention anomalies for the top event.

    python examples/event_explorer.py
"""

from repro import NewsDiffusionPipeline, build_world
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig
from repro.events import TimeSlicer, anomaly_series


def ascii_timeline(event, documents, slice_width, width=72) -> str:
    """Sparkline of the event main word's anomaly across the timeline."""
    sliced = TimeSlicer(slice_width).slice(documents)
    anomaly = anomaly_series(
        sliced.term_series(event.main_word), sliced.slice_totals
    )
    # Downsample to `width` buckets.
    bucket = max(1, len(anomaly) // width)
    levels = " .:-=+*#%@"
    chars = []
    for start in range(0, len(anomaly), bucket):
        value = max(0.0, float(anomaly[start:start + bucket].sum()))
        scaled = min(len(levels) - 1, int(value))
        chars.append(levels[scaled])
    return "".join(chars)


def main() -> None:
    world = build_world(
        WorldConfig(n_articles=1200, n_tweets=4000, n_users=200, seed=21)
    )
    config = PipelineConfig(
        n_news_events=15,
        n_twitter_events=25,
        min_term_support=6,
        seed=21,
    )
    pipeline = NewsDiffusionPipeline(config)

    news_ed = pipeline.preprocess_news_ed(world)
    twitter_ed = pipeline.preprocess_twitter_ed(world)

    print("=== News events (60-minute slices) ===")
    news_events = pipeline.detect_news_events(news_ed)
    for event in news_events:
        print("  " + event.describe())

    print("\n=== Twitter events (30-minute slices) ===")
    twitter_events = pipeline.detect_twitter_events(twitter_ed)
    for event in twitter_events[:15]:
        print("  " + event.describe())

    if twitter_events:
        top = twitter_events[0]
        from datetime import timedelta

        print(f"\nMention-anomaly timeline for top Twitter event "
              f"[{top.main_word}] (whole 5-month window):")
        print(
            "  "
            + ascii_timeline(
                top, twitter_ed, timedelta(minutes=config.twitter_slice_minutes)
            )
        )
        print(f"  magnitude={top.magnitude:.1f}  support={top.support} tweets")
        print("  related words: "
              + ", ".join(f"{w}({s:.2f})" for w, s in top.related_words[:8]))


if __name__ == "__main__":
    main()
