#!/usr/bin/env python3
"""Network immunization — closing the loop of §5.8.

Builds the follower graph of the synthetic population, finds its
communities and influencers, simulates a misinformation cascade seeded by
the most influential accounts, and compares immunization strategies —
including one driven by the audience-interest predictor's virality
signal, which is exactly how the paper proposes its system be used.

    python examples/network_immunization.py
"""

from collections import defaultdict

import numpy as np

from repro import NewsDiffusionPipeline, build_world
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig
from repro.network import (
    IndependentCascade,
    SocialGraph,
    communities_as_lists,
    community_centers,
    compare_strategies,
    degree_strategy,
    label_propagation,
    pagerank,
)


def main() -> None:
    world = build_world(
        WorldConfig(n_articles=1200, n_tweets=4500, n_users=250, seed=31)
    )
    graph = SocialGraph.from_population(
        world.population, max_following=25, seed=31
    )
    print(f"follower graph: {len(graph)} accounts, {graph.num_edges()} edges")

    labels = label_propagation(graph, seed=31)
    groups = communities_as_lists(labels)
    centers = community_centers(graph, labels)
    print(f"communities: {len(groups)} (largest {len(groups[0])} members)")
    print("influencers (community centers, §1):")
    ranks = pagerank(graph)
    for label, center in sorted(centers.items())[:6]:
        print(
            f"  community {label}: {center} "
            f"(followers={graph.in_degree(center)}, "
            f"pagerank={ranks[center]:.4f})"
        )

    print("\nSimulating a high-virality misinformation cascade ...")
    attacker = degree_strategy(graph, 3)
    model = IndependentCascade(graph, base_probability=0.08, virality=0.9, seed=31)
    baseline = model.expected_spread(attacker, n_simulations=30)
    print(f"attacker seeds: {attacker}")
    print(f"expected cascade size, no defense: {baseline:.1f} accounts")

    # Per-author virality signal from the pipeline's correlated tweets
    # (the paper's predictor supplies this in deployment).
    config = PipelineConfig(
        n_topics=12, n_news_events=20, n_twitter_events=40,
        embedding_dim=64, min_term_support=6, min_event_records=6, seed=31,
    )
    result = NewsDiffusionPipeline(config).run(world)
    per_author = defaultdict(list)
    for record in result.event_tweets:
        per_author[record.author].append(1.0 if record.likes > 1000 else 0.0)
    scores = {a: float(np.mean(v)) for a, v in per_author.items()}

    print("\nImmunization strategies at budget 10:")
    outcomes = compare_strategies(
        graph,
        attacker_seeds=attacker,
        budget=10,
        virality_by_author=scores,
        base_probability=0.08,
        virality=0.9,
        n_simulations=30,
        seed=31,
    )
    print(f"{'strategy':<12}{'residual spread':<18}reduction")
    for outcome in outcomes:
        print(
            f"{outcome.strategy:<12}{outcome.residual_spread:<18.1f}"
            f"{outcome.reduction:.1%}"
        )
    print(
        "\nTargeted immunization (degree/pagerank/predicted) suppresses the\n"
        "cascade far better than random spending — the §5.8 rationale for\n"
        "predicting audience interest before choosing where to intervene."
    )


if __name__ == "__main__":
    main()
