#!/usr/bin/env python3
"""Quickstart — the whole pipeline in one short script.

Generates a small synthetic news+Twitter world, runs the Figure-1
pipeline end to end (topics -> events -> trending -> correlation ->
features), trains one audience-interest model, and prints a run summary.

    python examples/quickstart.py
"""

from repro import NewsDiffusionPipeline, build_world
from repro.core import AudienceInterestPredictor
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig


def main() -> None:
    print("1. Generating the synthetic world (news + tweets) ...")
    world = build_world(
        WorldConfig(n_articles=800, n_tweets=3000, n_users=200, seed=7)
    )
    print(f"   collections: {world.database.stats()}")

    print("2. Running the news-diffusion pipeline ...")
    config = PipelineConfig(
        n_topics=12,
        n_news_events=20,
        n_twitter_events=40,
        embedding_dim=64,
        min_term_support=5,
        min_event_records=5,
        seed=7,
    )
    result = NewsDiffusionPipeline(config).run(world)
    print(result.summary())

    print("\n3. A few extracted news topics (Table-3 style):")
    for topic in result.topics[:5]:
        print(f"   NT#{topic.index + 1}: {' '.join(topic.keywords[:8])}")

    print("\n4. Correlated <trending news topic, Twitter event> pairs:")
    for pair in result.correlation.pairs[:5]:
        print("   " + pair.describe())

    if not result.datasets:
        print("\nNo correlated tweets at this scale — increase n_tweets.")
        return

    print("\n5. Training MLP 1 on the metadata-enhanced dataset (A2) ...")
    predictor = AudienceInterestPredictor(max_epochs=30, batch_size=64, seed=7)
    baseline = predictor.train(result.datasets["A1"], "MLP 1", target="likes")
    enhanced = predictor.train(result.datasets["A2"], "MLP 1", target="likes")
    print(f"   likes accuracy without metadata (A1): {baseline.validation_accuracy:.3f}")
    print(f"   likes accuracy with metadata    (A2): {enhanced.validation_accuracy:.3f}")
    print(
        "   -> metadata lift: "
        f"{enhanced.validation_accuracy - baseline.validation_accuracy:+.3f} "
        "(the paper's headline result)"
    )


if __name__ == "__main__":
    main()
