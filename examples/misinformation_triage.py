#!/usr/bin/env python3
"""Misinformation triage — the fake-news-mitigation scenario of §5.8.

The paper motivates the system as a building block for network
immunization: once you can predict which trending news topics go viral,
you know where to spend fact-checking and intervention budget.  This
example runs the pipeline, trains the virality predictor, and ranks every
correlated trending topic by its predicted viral share — the fraction of
its tweets predicted to land in the top Table-2 engagement class —
together with the influencer concentration among its spreaders.

    python examples/misinformation_triage.py
"""

from collections import defaultdict

import numpy as np

from repro import NewsDiffusionPipeline, build_world
from repro.core import AudienceInterestPredictor
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig
from repro.datasets import build_dataset


def main() -> None:
    world = build_world(
        WorldConfig(n_articles=2000, n_tweets=6000, n_users=300, seed=42)
    )
    config = PipelineConfig(
        n_topics=14,
        n_news_events=30,
        n_twitter_events=60,
        embedding_dim=128,
        min_term_support=8,
        min_event_records=10,
        seed=42,
    )
    result = NewsDiffusionPipeline(config).run(world)
    if not result.event_tweets:
        print("No correlated tweets — increase the world size.")
        return

    print("Training the audience-interest model (A2: Doc2Vec + metadata)...")
    predictor = AudienceInterestPredictor(max_epochs=40, batch_size=256, seed=42)
    outcome = predictor.train(
        result.datasets["A2"], "MLP 1", target="likes", keep_model=True
    )
    print(f"validation accuracy: {outcome.validation_accuracy:.3f}\n")

    # Predict over all event tweets and aggregate per Twitter event.
    dataset = build_dataset(result.event_tweets, result.embeddings, "A2")
    predicted = outcome.model.predict_classes(dataset.X)

    per_event = defaultdict(list)
    influencers = defaultdict(list)
    for record, cls in zip(result.event_tweets, predicted):
        per_event[record.event_id].append(int(cls))
        influencers[record.event_id].append(record.followers > 1000)

    # Map event ids back to the correlated trending topics.
    events = []
    seen = []
    for pair in result.correlation.pairs:
        if not any(pair.twitter_event is e for e in seen):
            seen.append(pair.twitter_event)
    for event_id, event in enumerate(seen):
        if event_id not in per_event:
            continue
        classes = np.array(per_event[event_id])
        viral_share = float(np.mean(classes == 2))
        hot_share = float(np.mean(classes >= 1))
        influencer_share = float(np.mean(influencers[event_id]))
        topics = sorted(
            {
                p.trending.topic.index + 1
                for p in result.correlation.pairs
                if p.twitter_event is event
            }
        )
        events.append(
            {
                "label": event.main_word,
                "topics": topics,
                "n": len(classes),
                "viral": viral_share,
                "hot": hot_share,
                "influencers": influencer_share,
            }
        )

    events.sort(key=lambda e: (-e["viral"], -e["hot"]))
    print("TRIAGE QUEUE — correlated events by predicted virality")
    print("-" * 76)
    print(f"{'rank':<5}{'event':<16}{'topics':<12}{'tweets':<8}"
          f"{'p(viral)':<10}{'p(>=100)':<10}influencer share")
    for rank, event in enumerate(events, start=1):
        topics = ",".join(f"NT{t}" for t in event["topics"])
        print(
            f"{rank:<5}{event['label']:<16}{topics:<12}{event['n']:<8}"
            f"{event['viral']:<10.2f}{event['hot']:<10.2f}"
            f"{event['influencers']:.2f}"
        )
    print("-" * 76)
    print(
        "Immunization guidance: prioritize fact-checking the top-ranked\n"
        "events; target the influencer accounts first (§5.8: popularity\n"
        "inside a group determines the spread of its messages)."
    )


if __name__ == "__main__":
    main()
