#!/usr/bin/env python3
"""Profiled run — where does a pipeline run spend its time?

Enables the ``repro.obs`` observability layer, runs the Figure-1
pipeline on a small synthetic world, and renders the captured span tree
(per-stage wall/CPU breakdown) plus the hot-path metrics right in the
terminal.  The same snapshot is saved to disk so it can be re-rendered
later:

    python examples/profiled_run.py
    python -m repro.obs report profiled_run.json

Equivalent flows: ``python -m repro run --data ... --trace out.json``
(CLI), or ``REPRO_OBS=1`` to force instrumentation on everywhere.
"""

from repro import NewsDiffusionPipeline, build_world, obs
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig

SNAPSHOT_PATH = "profiled_run.json"


def main() -> None:
    print("1. Generating a small synthetic world ...")
    world = build_world(
        WorldConfig(n_articles=400, n_tweets=1500, n_users=120, seed=7)
    )

    print("2. Running the pipeline with observability enabled ...")
    config = PipelineConfig(
        n_topics=10,
        n_news_events=15,
        n_twitter_events=30,
        embedding_dim=48,
        min_term_support=4,
        min_event_records=4,
        seed=7,
    )
    with obs.enabled():
        result = NewsDiffusionPipeline(config).run(world)
        registry = obs.get_registry()
        snapshot = registry.snapshot()
        registry.save(SNAPSHOT_PATH)
        registry.reset()

    print(
        f"   {len(result.topics)} topics, "
        f"{len(result.news_events)}+{len(result.twitter_events)} events, "
        f"{len(result.event_tweets)} event-tweet records"
    )

    print("\n3. Per-stage timing tree (spans):\n")
    print(obs.render_spans(snapshot))

    print("\n4. Hot-path metrics (counters / histograms):\n")
    print(obs.render_metrics(snapshot))

    print(
        f"\nSnapshot saved to {SNAPSHOT_PATH} — re-render any time with"
        f"\n    python -m repro.obs report {SNAPSHOT_PATH}"
    )


if __name__ == "__main__":
    main()
