#!/usr/bin/env python3
"""Newsroom monitoring — the RoNews use case from the paper's conclusion.

A newsroom wants to know, for the articles it publishes, which topics are
*developing* (trending in its own coverage) and which of those are
echoing on social media right now.  This example runs the pipeline and
renders a monitoring dashboard: every NMF topic, whether it is trending
(matched to a news event above the 0.7 threshold), and which Twitter
events echo it.

    python examples/newsroom_monitoring.py
"""

from repro import NewsDiffusionPipeline, build_world
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig


def main() -> None:
    world = build_world(
        WorldConfig(n_articles=1500, n_tweets=5000, n_users=250, seed=33)
    )
    config = PipelineConfig(
        n_topics=14,
        n_news_events=25,
        n_twitter_events=50,
        embedding_dim=96,
        min_term_support=6,
        min_event_records=8,
        seed=33,
    )
    result = NewsDiffusionPipeline(config).run(world)

    trending_by_topic = {t.topic.index: t for t in result.trending}
    pairs_by_topic = {}
    for pair in result.correlation.pairs:
        pairs_by_topic.setdefault(pair.trending.topic.index, []).append(pair)

    print("=" * 78)
    print("NEWSROOM TOPIC MONITOR".center(78))
    print("=" * 78)
    for topic in result.topics:
        keywords = " ".join(topic.keywords[:6])
        trending = trending_by_topic.get(topic.index)
        if trending is None:
            status = "quiet"
            detail = ""
        else:
            echoes = pairs_by_topic.get(topic.index, [])
            if echoes:
                status = "TRENDING + SOCIAL ECHO"
                detail = ", ".join(
                    f"[{p.twitter_event.main_word}] sim={p.similarity:.2f}"
                    for p in echoes[:3]
                )
            else:
                status = "trending (no Twitter echo yet)"
                detail = f"news event [{trending.event.main_word}]"
        print(f"NT#{topic.index + 1:<3} {keywords:<46} {status}")
        if detail:
            print(f"      {detail}")

    print("-" * 78)
    print(
        f"{len(result.trending)}/{len(result.topics)} topics trending; "
        f"{result.correlation.n_pairs} topic-event echoes; "
        f"{len(result.correlation.unrelated_twitter_events)} Twitter events "
        "unrelated to coverage"
    )
    print("\nUnrelated Twitter chatter the desk may still want to watch:")
    for event in result.correlation.unrelated_twitter_events[:5]:
        print(f"  [{event.main_word}] {' '.join(event.keywords[:6])}")


if __name__ == "__main__":
    main()
