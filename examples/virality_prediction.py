#!/usr/bin/env python3
"""Virality prediction — the paper's §5.6 experiment, with per-class detail.

Trains all four network configurations (MLP 1/2, CNN 1/2) on the A1 and
A2 datasets for both targets, printing the accuracy grid (Tables 8–9
style), the metadata lift (Figures 4–5), and a per-class
precision/recall report for the best model.

    python examples/virality_prediction.py
"""

import numpy as np

from repro import NewsDiffusionPipeline, build_world
from repro.core import AudienceInterestPredictor
from repro.core.config import PipelineConfig
from repro.core.prediction import format_accuracy_table, grid_to_accuracy_table
from repro.datagen import WorldConfig
from repro.nn import classification_report

CLASS_NAMES = {0: "<100", 1: "100-1000", 2: ">1000"}


def main() -> None:
    world = build_world(
        WorldConfig(n_articles=2000, n_tweets=6000, n_users=300, seed=42)
    )
    config = PipelineConfig(
        n_topics=14,
        n_news_events=30,
        n_twitter_events=60,
        embedding_dim=128,
        min_term_support=8,
        min_event_records=10,
        seed=42,
    )
    result = NewsDiffusionPipeline(config).run(world)
    print(result.summary())
    if not result.datasets:
        print("No datasets produced — increase the world size.")
        return

    predictor = AudienceInterestPredictor(
        max_epochs=40, batch_size=256, seed=42
    )
    selected = {k: result.datasets[k] for k in ("A1", "A2", "D2")}

    for target in ("likes", "retweets"):
        print(f"\n=== {target} accuracy (validation) ===")
        grid = predictor.run_grid(selected, target=target)
        table = grid_to_accuracy_table(grid)
        print(format_accuracy_table(table))
        a1 = np.mean(list(table["A1"].values()))
        a2 = np.mean(list(table["A2"].values()))
        print(f"metadata lift (A1 -> A2, mean over networks): {a2 - a1:+.3f}")

    print("\n=== Per-class report: MLP 1 on A2, likes ===")
    outcome = predictor.train(result.datasets["A2"], "MLP 1", target="likes")
    print(f"validation accuracy:        {outcome.validation_accuracy:.3f}")
    print(f"Eq-17 average accuracy:     {outcome.validation_average_accuracy:.3f}")
    print("confusion matrix (rows = true class):")
    print(outcome.confusion)
    # Recompute the per-class report from the confusion matrix.
    y_true, y_pred = [], []
    for i in range(3):
        for j in range(3):
            y_true += [i] * outcome.confusion[i, j]
            y_pred += [j] * outcome.confusion[i, j]
    for cls, report in classification_report(y_true, y_pred, 3).items():
        print(
            f"  class {CLASS_NAMES[cls]:<9} precision={report.precision:.2f} "
            f"recall={report.recall:.2f} f1={report.f1:.2f} "
            f"support={report.support}"
        )


if __name__ == "__main__":
    main()
