#!/usr/bin/env python3
"""Continuous deployment — the §4.9 refresh loop with checkpoints.

The paper's system refreshes its corpora every 2 hours and retrains from
checkpoints so models stay current without full retraining.  This example
simulates that loop: the deployment starts with a 60% backlog of the
5-month world, then takes refresh steps, re-running the pipeline on the
grown corpus and warm-starting the audience-interest model from the
previous cycle's weights.

    python examples/continuous_deployment.py
"""

from datetime import timedelta

from repro import build_world
from repro.core import DeploymentSimulator
from repro.core.config import PipelineConfig
from repro.datagen import WorldConfig


def main() -> None:
    world = build_world(
        WorldConfig(n_articles=1500, n_tweets=5000, n_users=250, seed=29)
    )
    config = PipelineConfig(
        n_topics=12,
        n_news_events=20,
        n_twitter_events=40,
        embedding_dim=96,
        min_term_support=6,
        min_event_records=8,
        max_epochs=40,
        seed=29,
    )
    # Refresh every 12 simulated days so each cycle sees meaningfully new
    # data (the paper refreshes every 2 hours against a live firehose).
    simulator = DeploymentSimulator(
        config, refresh=timedelta(days=12), variant="A2", network="MLP 1"
    )
    print("Simulating 4 refresh cycles from a 60% backlog ...\n")
    report = simulator.run(world, n_cycles=4, start_fraction=0.6)
    print(report.summary())

    cold = report.cold_epochs()
    warm = report.warm_epochs()
    if cold and warm:
        print(
            f"\ncheckpoint effect: cold start took {cold[0]} epochs; "
            f"warm starts took {warm} — §4.9's motivation for "
            "checkpointed retraining."
        )


if __name__ == "__main__":
    main()
