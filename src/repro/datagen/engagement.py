"""Engagement model: likes and retweets for synthetic tweets.

This is where the paper's two modelling assumptions are built into the
world so the prediction experiments can detect them:

1. *Influencers drive virality* — engagement scales with the author's
   follower count (Hafnaoui et al. [16]).
2. *Day-of-week effects* — media consumption varies across the week
   (Bentley et al. [3]); weekend tweets earn more engagement.

Expected likes  = base * topic_virality * burst_boost * follower_factor
                  * day_factor, then a lognormal draw around it.
Retweets follow likes at roughly a 1:3 ratio with their own noise, which
is the empirically observed like:retweet proportion.

The lognormal noise floor is tuned so text-only models top out around the
paper's 0.73–0.80 band while metadata-augmented models reach 0.82–0.85
(Tables 8–9): the noise hides part of the signal that only the author
and day features can recover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .users import User
from .world import TopicSpec

# Engagement multiplier per weekday Mon..Sun (independent of the posting
# propensity profile in users.py — this one scales how much attention a
# posted tweet receives).
DAY_ENGAGEMENT = (0.8, 0.75, 0.8, 0.9, 1.2, 1.6, 1.5)


@dataclass(frozen=True)
class EngagementParams:
    """Knobs of the engagement draw."""

    base_likes: float = 80.0
    retweet_ratio: float = 0.45
    follower_exponent: float = 0.35
    noise_sigma: float = 0.40
    burst_boost: float = 3.0
    virality_decades: float = 2.4


def follower_factor(followers: int, exponent: float = 0.45) -> float:
    """Sub-linear follower amplification, normalized to 1.0 at 500."""
    return (max(followers, 1) / 500.0) ** exponent


def expected_likes(
    topic: TopicSpec,
    author: User,
    weekday: int,
    in_burst: bool,
    params: EngagementParams,
) -> float:
    """Mean of the likes distribution for one tweet."""
    value = params.base_likes
    # Virality acts on a log scale: a topic at virality 1.0 earns
    # 10^virality_decades more engagement than one at 0.0, so the Table-2
    # class boundaries (100 / 1000) separate topics rather than only
    # separating authors.
    value *= 10.0 ** (params.virality_decades * (topic.virality - 0.5))
    value *= follower_factor(author.followers, params.follower_exponent)
    value *= DAY_ENGAGEMENT[weekday]
    if in_burst:
        value *= params.burst_boost
    return value


def draw_engagement(
    topic: TopicSpec,
    author: User,
    weekday: int,
    in_burst: bool,
    rng: np.random.Generator,
    params: EngagementParams = EngagementParams(),
) -> Tuple[int, int]:
    """(likes, retweets) for one tweet."""
    mean = expected_likes(topic, author, weekday, in_burst, params)
    # Lognormal centered on `mean`: mu = ln(mean) - sigma^2 / 2.
    mu = math.log(max(mean, 1e-6)) - params.noise_sigma ** 2 / 2.0
    likes = int(round(rng.lognormal(mu, params.noise_sigma)))
    rt_mean = max(likes * params.retweet_ratio, 1e-6)
    rt_mu = math.log(rt_mean) - 0.3 ** 2 / 2.0
    retweets = int(round(rng.lognormal(rt_mu, 0.3)))
    return max(likes, 0), max(retweets, 0)
