"""Synthetic tweet generator.

Tweets carry the fields the paper collects via the Twitter API (§4.1):
text, author handle, the author's follower count, likes, retweets, and
creation time.  Tweet text is short and keyword-dense, sprinkled with
hashtags, mentions, URLs, and slang tokens that stay out of the
"pretrained" embedding store (feeding the RND_Doc2Vec variant).
Engagement comes from :mod:`repro.datagen.engagement`, which encodes the
influencer and day-of-week effects the paper's metadata features exploit.
"""

from __future__ import annotations

from datetime import timedelta
from typing import Dict, List

import numpy as np

from .engagement import EngagementParams, draw_engagement
from .news import _topic_weights
from .users import UserPopulation
from .world import BACKGROUND_WORDS, TWITTER_SLANG, TopicSpec, WorldConfig


def _compose_tweet(
    topic: TopicSpec, rng: np.random.Generator, in_burst: bool = False
) -> str:
    length = int(rng.integers(8, 18))
    # Excited reactions during a burst carry more slang — which makes
    # slang tokens co-move with the burst, surface as MABED related
    # words, and (being absent from the pretrained store) separate the
    # SW and RND document-embedding variants.
    slang_rate = 0.22 if in_burst else 0.08
    words: List[str] = []
    for _position in range(length):
        draw = rng.random()
        if draw < 0.40 and topic.keywords:
            words.append(str(rng.choice(topic.keywords)))
        elif draw < 0.40 + slang_rate:
            words.append(str(rng.choice(TWITTER_SLANG)))
        else:
            words.append(str(rng.choice(BACKGROUND_WORDS)))
    # Hashtag one of the topic keywords ~60% of the time.
    if topic.keywords and rng.random() < 0.6:
        words.append("#" + str(rng.choice(topic.keywords)))
    if rng.random() < 0.25:
        words.append("@" + f"user_{int(rng.integers(0, 1000)):04d}")
    if rng.random() < 0.3:
        words.append(f"https://news.example/{int(rng.integers(1, 99999))}")
    return " ".join(words)


class TwitterGenerator:
    """Generates tweet documents for the world's Twitter-covered topics."""

    def __init__(
        self,
        config: WorldConfig,
        population: UserPopulation,
        engagement: EngagementParams = EngagementParams(),
    ) -> None:
        self.config = config
        self.population = population
        self.engagement = engagement

    def generate(self) -> List[Dict[str, object]]:
        """All tweets, sorted by creation time."""
        rng = np.random.default_rng(self.config.seed + 307)
        topics = self.config.twitter_topics()
        if not topics:
            raise ValueError("world has no Twitter topics")
        tweets: List[Dict[str, object]] = []
        minutes_total = self.config.duration_days * 24 * 60
        for _i in range(self.config.n_tweets):
            minute = float(rng.uniform(0, minutes_total))
            day_offset = minute / (24 * 60)
            weights = _topic_weights(topics, day_offset)
            topic = topics[int(rng.choice(len(topics), p=weights))]
            created_at = self.config.start + timedelta(minutes=minute)
            weekday = created_at.weekday()
            author = self.population.sample_author(topic, weekday, rng)
            in_burst = topic.activity(day_offset) > topic.base_rate
            likes, retweets = draw_engagement(
                topic, author, weekday, in_burst, rng, self.engagement
            )
            tweets.append(
                {
                    "text": _compose_tweet(topic, rng, in_burst),
                    "author": author.handle,
                    "followers": author.followers,
                    "likes": likes,
                    "retweets": retweets,
                    "created_at": created_at,
                    "topic": topic.name,  # ground truth, never shown to models
                }
            )
        tweets.sort(key=lambda t: t["created_at"])
        return tweets
