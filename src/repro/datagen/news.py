"""Synthetic news article generator.

Articles are what the paper collected via NewsRiver/NewsAPI plus a
scraper (§4.1): title, full body text, source outlet, and creation time.
Each article belongs to one latent topic; its prose mixes topic keywords,
named entities (capitalised, so the NER pass finds them), background
newsroom vocabulary, and function-word glue.  Publication times are
uniform over the world's five months, while the *topic* of each article
is drawn proportionally to topic activity at that instant — so bursts
show up as a topic claiming a larger share of a roughly constant news
volume, which is exactly the mention-anomaly signal MABED detects.
"""

from __future__ import annotations

from datetime import timedelta
from typing import Dict, List, Sequence

import numpy as np

from .world import BACKGROUND_WORDS, TopicSpec, WorldConfig

NEWS_SOURCES = (
    "The Daily Chronicle", "Global Wire", "The Metropolitan Times",
    "Continental Post", "The Morning Ledger", "Capital Report",
)

# Function words gluing sentences together; they also exercise the
# stopword-removal stage of the NewsTM pipeline.
GLUE_WORDS = (
    "the", "a", "of", "in", "on", "to", "for", "with", "and", "as",
    "by", "after", "over", "about", "from", "that", "has", "was",
)


def _topic_weights(topics: Sequence[TopicSpec], day_offset: float) -> np.ndarray:
    weights = np.array([t.activity(day_offset) for t in topics], dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        return np.full(len(topics), 1.0 / len(topics))
    return weights / total


def _compose_sentence(
    topic: TopicSpec,
    rng: np.random.Generator,
    keyword_density: float,
    length_range=(9, 16),
) -> str:
    length = int(rng.integers(*length_range))
    words: List[str] = []
    for position in range(length):
        draw = rng.random()
        if draw < keyword_density and topic.keywords:
            words.append(str(rng.choice(topic.keywords)))
        elif draw < keyword_density + 0.08 and topic.entities:
            words.append(str(rng.choice(topic.entities)))
        elif draw < keyword_density + 0.08 + 0.35:
            words.append(str(rng.choice(BACKGROUND_WORDS)))
        else:
            words.append(str(rng.choice(GLUE_WORDS)))
    sentence = " ".join(words)
    return sentence[0].upper() + sentence[1:] + "."


def _compose_title(topic: TopicSpec, rng: np.random.Generator) -> str:
    n_keywords = int(rng.integers(2, 4))
    picks = list(rng.choice(topic.keywords, size=min(n_keywords, len(topic.keywords)), replace=False))
    picks.append(str(rng.choice(BACKGROUND_WORDS)))
    title = " ".join(str(p) for p in picks)
    return title[0].upper() + title[1:]


class NewsGenerator:
    """Generates article documents for the world's news-covered topics."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config

    def generate(self) -> List[Dict[str, object]]:
        """All articles, sorted by creation time."""
        rng = np.random.default_rng(self.config.seed + 211)
        topics = self.config.news_topics()
        if not topics:
            raise ValueError("world has no news topics")
        articles: List[Dict[str, object]] = []
        minutes_total = self.config.duration_days * 24 * 60
        for i in range(self.config.n_articles):
            minute = float(rng.uniform(0, minutes_total))
            day_offset = minute / (24 * 60)
            weights = _topic_weights(topics, day_offset)
            topic = topics[int(rng.choice(len(topics), p=weights))]
            created_at = self.config.start + timedelta(minutes=minute)
            n_sentences = int(rng.integers(8, 18))
            body = " ".join(
                _compose_sentence(topic, rng, keyword_density=0.28)
                for _ in range(n_sentences)
            )
            articles.append(
                {
                    "title": _compose_title(topic, rng),
                    "text": body,
                    "source": str(rng.choice(NEWS_SOURCES)),
                    "created_at": created_at,
                    "topic": topic.name,  # ground truth, never shown to models
                }
            )
        articles.sort(key=lambda a: a["created_at"])
        return articles
