"""Synthetic Twitter user population with a power-law follower graph.

§1 and §4.7 of the paper hinge on two user roles: *influencers* (nodes at
a group's center, with huge follower counts) and *spreaders* (ordinary
users who like/retweet).  We draw follower counts from a Pareto-like
power law — the empirically observed shape of the Twitter follower
distribution — so the top few percent of accounts dominate reach, and we
give each user a topic affinity and a day-of-week posting profile
(media consumption varies by day, per Bentley et al. [3]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .world import TopicSpec, WorldConfig

# Relative posting propensity Mon..Sun; weekends skew casual posting.
DEFAULT_DAY_PROFILE = (1.0, 0.95, 0.95, 1.0, 1.15, 1.3, 1.25)


@dataclass
class User:
    """One synthetic account."""

    handle: str
    followers: int
    is_influencer: bool
    topic_affinity: Dict[str, float] = field(default_factory=dict)
    day_profile: tuple = DEFAULT_DAY_PROFILE

    def affinity(self, topic: str) -> float:
        """This user's interest in *topic* (0.0 when unknown)."""
        return self.topic_affinity.get(topic, 0.1)


class UserPopulation:
    """Generates and serves the user base for the tweet generator."""

    def __init__(self, config: WorldConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed + 101)
        self.users: List[User] = self._generate(rng)
        self._activity_weights = self._compute_activity_weights()

    def _generate(self, rng: np.random.Generator) -> List[User]:
        n = self.config.n_users
        n_influencers = max(1, int(round(n * self.config.influencer_fraction)))
        # Pareto(alpha=1.2) scaled: most users have tens of followers,
        # influencers have thousands to hundreds of thousands.
        raw = (rng.pareto(1.2, size=n) + 1.0) * 20.0
        followers = np.sort(raw)[::-1]
        # Force the influencer block above the paper's >1000 encoding bucket.
        followers[:n_influencers] = np.maximum(
            followers[:n_influencers], 2000.0 + rng.pareto(1.0, n_influencers) * 5000.0
        )
        topics = self.config.twitter_topics()
        users: List[User] = []
        for i in range(n):
            # Dirichlet affinity concentrated on 1-3 topics per user.
            alpha = np.full(len(topics), 0.15)
            weights = rng.dirichlet(alpha)
            affinity = {t.name: float(w) for t, w in zip(topics, weights)}
            day_shift = rng.normal(0.0, 0.05, size=7)
            profile = tuple(
                max(0.1, base + shift)
                for base, shift in zip(DEFAULT_DAY_PROFILE, day_shift)
            )
            users.append(
                User(
                    handle=f"user_{i:04d}",
                    followers=int(followers[i]),
                    is_influencer=i < n_influencers,
                    topic_affinity=affinity,
                    day_profile=profile,
                )
            )
        return users

    def _compute_activity_weights(self) -> np.ndarray:
        """Posting propensity: mildly follower-correlated.

        Influencers post more but do not monopolize the stream — most
        volume still comes from ordinary spreaders, as on real Twitter.
        """
        counts = np.array([u.followers for u in self.users], dtype=np.float64)
        weights = np.log1p(counts)
        return weights / weights.sum()

    # -- sampling -------------------------------------------------------------

    def sample_author(
        self,
        topic: TopicSpec,
        weekday: int,
        rng: np.random.Generator,
    ) -> User:
        """Pick a tweet author given the topic and day of the week."""
        base = self._activity_weights
        affinity = np.array([u.affinity(topic.name) for u in self.users])
        day = np.array([u.day_profile[weekday] for u in self.users])
        weights = base * (0.2 + affinity) * day
        weights /= weights.sum()
        index = int(rng.choice(len(self.users), p=weights))
        return self.users[index]

    def influencers(self) -> List[User]:
        """Users flagged as influencers."""
        return [u for u in self.users if u.is_influencer]

    def by_handle(self, handle: str) -> User:
        """Look up a user by handle; raises KeyError when absent."""
        for user in self.users:
            if user.handle == handle:
                return user
        raise KeyError(handle)

    def __len__(self) -> int:
        return len(self.users)

    def follower_percentiles(self, percentiles: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        """Follower-count percentiles across the population."""
        counts = np.array([u.followers for u in self.users], dtype=np.float64)
        return {p: float(np.percentile(counts, p)) for p in percentiles}
