"""Synthetic news+Twitter world — the substitute for the paper's crawl.

``build_world`` produces a populated :class:`~repro.store.Database` with
``news`` and ``tweets`` collections plus the user population, ready for
the preprocessing modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..store import Database
from .engagement import (
    DAY_ENGAGEMENT,
    EngagementParams,
    draw_engagement,
    expected_likes,
    follower_factor,
)
from .news import NewsGenerator
from .twitter import TwitterGenerator
from .users import User, UserPopulation
from .world import (
    BACKGROUND_WORDS,
    TWITTER_SLANG,
    Burst,
    TopicSpec,
    WorldConfig,
    default_topics,
)


@dataclass
class World:
    """A generated world: its config, database, and user population."""

    config: WorldConfig
    database: Database
    population: UserPopulation

    @property
    def news(self):
        """The news-article collection of the world's store."""
        return self.database["news"]

    @property
    def tweets(self):
        """The tweet collection of the world's store."""
        return self.database["tweets"]


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Generate a complete world into a fresh database.

    This is the reproduction's stand-in for the paper's Data Collection
    module (§4.1): afterwards ``world.news`` and ``world.tweets`` hold the
    raw corpora the preprocessing modules consume.
    """
    config = config or WorldConfig()
    population = UserPopulation(config)
    database = Database("news_diffusion", shard_count=config.store_shards)
    database["news"].insert_many(NewsGenerator(config).generate())
    database["tweets"].insert_many(
        TwitterGenerator(config, population).generate()
    )
    database["tweets"].create_index("author")
    database["news"].create_index("source")
    return World(config=config, database=database, population=population)


__all__ = [
    "World",
    "WorldConfig",
    "TopicSpec",
    "Burst",
    "default_topics",
    "BACKGROUND_WORDS",
    "TWITTER_SLANG",
    "build_world",
    "NewsGenerator",
    "TwitterGenerator",
    "User",
    "UserPopulation",
    "EngagementParams",
    "draw_engagement",
    "expected_likes",
    "follower_factor",
    "DAY_ENGAGEMENT",
]
