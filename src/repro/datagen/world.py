"""Synthetic news+Twitter world configuration.

The paper's experiments run on 261,052 news articles and 80,569 tweets
collected live over five months (§5.1) — data we cannot re-collect
offline.  This module defines the generative world that replaces the
crawl: a set of latent topics, each with a keyword vocabulary, background
chatter rate, bursty real-world "happenings", a virality level, and flags
for whether it appears in mass media, on Twitter, or both.

The default world mirrors the paper's observed topics (Tables 3–5): Brexit
elections, US–China tariffs, the Huawei ban, Iran tensions, the Gaza
conflict, Abe's Japan, the impeachment inquiry, and the Kentucky Derby —
plus Twitter-only topics (TV shows, food, football) that reproduce the
"unrelated Twitter events" of Table 7, since Twitter "is a generalized
discussion forum".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Burst:
    """One happening inside a topic: a time window of elevated activity."""

    start_day: float      # offset from the world's start, in days
    duration_days: float
    intensity: float      # multiplier over the topic's base rate

    def active(self, day_offset: float) -> bool:
        """True when *day_offset* falls inside the burst window."""
        return self.start_day <= day_offset < self.start_day + self.duration_days


@dataclass(frozen=True)
class TopicSpec:
    """A latent topic of the synthetic world.

    *virality* in [0, 1] drives the engagement model: tweets about highly
    viral topics attract more likes/retweets.  *in_news* / *on_twitter*
    control which medium covers the topic.
    """

    name: str
    keywords: Tuple[str, ...]
    entities: Tuple[str, ...] = ()
    base_rate: float = 1.0
    bursts: Tuple[Burst, ...] = ()
    virality: float = 0.5
    in_news: bool = True
    on_twitter: bool = True

    def activity(self, day_offset: float) -> float:
        """Instantaneous rate multiplier at *day_offset* days."""
        rate = self.base_rate
        for burst in self.bursts:
            if burst.active(day_offset):
                rate += self.base_rate * burst.intensity
        return rate


# Common news-prose vocabulary shared by every article and tweet; gives the
# NMF/TFIDF layers realistic background mass to discount.
BACKGROUND_WORDS: Tuple[str, ...] = (
    "government", "officials", "statement", "report", "sources", "country",
    "public", "plan", "decision", "meeting", "leaders", "press", "group",
    "announcement", "response", "support", "issue", "policy", "situation",
    "week", "month", "members", "national", "major", "change", "growth",
    "market", "talks", "deal", "future", "political", "economic", "media",
    "story", "update", "latest", "breaking", "analysis", "reaction",
    "comment", "crisis", "debate", "agreement", "concern", "action",
    "development", "impact", "question", "move", "call", "effort",
)

# Slang/novel tokens appearing only in tweets; these land outside the
# "pretrained" embedding store and exercise the RND_Doc2Vec path.
TWITTER_SLANG: Tuple[str, ...] = (
    "omg", "smh", "tbh", "lol", "yikes", "wow", "thread", "hot", "take",
    "mood", "stan", "vibes", "lmao", "fr", "lowkey", "ngl", "based",
)


def default_topics() -> List[TopicSpec]:
    """The default world's topics, shaped after the paper's Tables 3–7."""
    return [
        TopicSpec(
            name="brexit_election",
            keywords=("party", "election", "vote", "seat", "poll", "voter",
                      "conservative", "european", "brexit", "campaign",
                      "parliament", "minister", "leadership", "mps"),
            entities=("Theresa May", "European Union", "Boris Johnson"),
            base_rate=1.6,
            bursts=(Burst(20, 12, 6.0), Burst(55, 8, 4.0)),
            virality=0.85,
        ),
        TopicSpec(
            name="trade_tariffs",
            keywords=("tariff", "import", "billion", "chinese", "goods",
                      "impose", "consumer", "product", "percent", "trade",
                      "export", "tax", "china", "escalation"),
            entities=("United States",),
            base_rate=1.4,
            bursts=(Burst(10, 10, 5.0), Burst(70, 10, 5.0)),
            virality=0.7,
        ),
        TopicSpec(
            name="tech_business",
            keywords=("company", "business", "industry", "customer",
                      "service", "technology", "startup", "revenue",
                      "investor", "profit", "shares", "earnings"),
            base_rate=1.8,
            bursts=(Burst(30, 20, 2.0),),
            virality=0.45,
        ),
        TopicSpec(
            name="trade_war",
            keywords=("war", "global", "economy", "tension", "negotiation",
                      "sanctions", "dispute", "agreement", "markets",
                      "stocks", "currency", "beijing"),
            base_rate=1.2,
            bursts=(Burst(12, 14, 4.0),),
            virality=0.65,
        ),
        TopicSpec(
            name="huawei_ban",
            keywords=("huawei", "google", "ban", "smartphone", "android",
                      "network", "security", "telecom", "blacklist",
                      "chip", "5g", "supplier"),
            base_rate=0.9,
            bursts=(Burst(40, 9, 8.0),),
            virality=0.75,
        ),
        TopicSpec(
            name="iran_tensions",
            keywords=("iran", "iranian", "tehran", "sanction", "nuclear",
                      "drone", "gulf", "tanker", "military", "strait",
                      "missile", "warship"),
            base_rate=1.0,
            bursts=(Burst(50, 12, 6.0), Burst(95, 7, 5.0)),
            virality=0.8,
        ),
        TopicSpec(
            name="gaza_conflict",
            keywords=("israel", "gaza", "israeli", "palestinian", "hamas",
                      "rocket", "militant", "jerusalem", "ceasefire",
                      "airstrike", "border", "strip"),
            entities=("Middle East",),
            base_rate=0.8,
            bursts=(Burst(32, 6, 9.0),),
            virality=0.7,
        ),
        TopicSpec(
            name="japan_emperor",
            keywords=("japan", "abe", "japanese", "emperor", "tokyo",
                      "naruhito", "imperial", "visit", "ceremony",
                      "enthronement", "dynasty", "summit"),
            entities=("Shinzo Abe",),
            base_rate=0.6,
            bursts=(Burst(28, 5, 7.0),),
            virality=0.5,
        ),
        TopicSpec(
            name="impeachment",
            keywords=("impeachment", "pelosi", "democrats", "impeach",
                      "inquiry", "speaker", "congress", "testimony",
                      "subpoena", "hearing", "committee", "mueller"),
            entities=("Nancy Pelosi", "White House", "Donald Trump"),
            base_rate=1.3,
            bursts=(Burst(60, 15, 5.0),),
            virality=0.9,
        ),
        TopicSpec(
            name="kentucky_derby",
            keywords=("derby", "horse", "kentucky", "race", "win",
                      "belmont", "maximum", "winner", "racing", "jockey",
                      "track", "disqualified"),
            entities=("Kentucky Derby", "Maximum Security"),
            base_rate=0.5,
            bursts=(Burst(33, 4, 10.0),),
            virality=0.6,
        ),
        # Twitter-only topics — the Table 7 "unrelated Twitter events".
        TopicSpec(
            name="tv_show",
            keywords=("thrones", "season", "episode", "spoilers", "finale",
                      "review", "characters", "dragon", "plot", "hbo"),
            base_rate=1.1,
            bursts=(Burst(35, 10, 6.0),),
            virality=0.8,
            in_news=False,
        ),
        TopicSpec(
            name="food_talk",
            keywords=("coffee", "rice", "delicious", "sandwiches", "fried",
                      "dish", "cheese", "recipe", "tea", "brunch"),
            base_rate=1.0,
            bursts=(),
            virality=0.3,
            in_news=False,
        ),
        TopicSpec(
            name="football",
            keywords=("football", "manchester", "club", "everton",
                      "fantasy", "goal", "league", "transfer", "striker",
                      "fixture"),
            entities=("Premier League",),
            base_rate=1.2,
            bursts=(Burst(15, 6, 4.0), Burst(80, 6, 4.0)),
            virality=0.65,
            in_news=False,
        ),
        TopicSpec(
            name="social_platforms",
            keywords=("whatsapp", "facebook", "videos", "zuckerberg",
                      "user", "privacy", "platform", "account", "viral",
                      "followers"),
            base_rate=0.9,
            bursts=(Burst(22, 8, 3.0),),
            virality=0.55,
            in_news=False,
        ),
        # News-only topic: covered by outlets but never tweeted about,
        # exercising the "not every news topic trends" path.
        TopicSpec(
            name="municipal_budget",
            keywords=("budget", "council", "municipal", "infrastructure",
                      "funding", "allocation", "audit", "fiscal",
                      "committee", "ordinance"),
            base_rate=0.7,
            bursts=(),
            virality=0.1,
            on_twitter=False,
        ),
    ]


@dataclass
class WorldConfig:
    """Knobs of the synthetic world.

    The defaults produce a corpus that runs the full pipeline in well under
    a minute; benchmarks scale *n_articles* / *n_tweets* up as needed.
    """

    start: datetime = field(default_factory=lambda: datetime(2019, 4, 1))
    duration_days: int = 150  # five months, as in §5.1
    n_articles: int = 2000
    n_tweets: int = 4000
    n_users: int = 300
    influencer_fraction: float = 0.05
    seed: int = 42
    topics: List[TopicSpec] = field(default_factory=default_topics)
    # Shard count of the world's document store; None defers to
    # REPRO_STORE_SHARDS / the engine default.
    store_shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration_days < 1:
            raise ValueError("duration_days must be >= 1")
        if self.store_shards is not None and self.store_shards < 1:
            raise ValueError("store_shards must be >= 1")
        if self.n_users < 2:
            raise ValueError("n_users must be >= 2")
        if not 0.0 < self.influencer_fraction < 1.0:
            raise ValueError("influencer_fraction must lie in (0, 1)")
        if not self.topics:
            raise ValueError("world needs at least one topic")

    @property
    def end(self) -> datetime:
        """End of the simulated window (start + duration)."""
        return self.start + timedelta(days=self.duration_days)

    def news_topics(self) -> List[TopicSpec]:
        """Topic specs that appear in the news stream."""
        return [t for t in self.topics if t.in_news]

    def twitter_topics(self) -> List[TopicSpec]:
        """Topic specs that appear in the tweet stream."""
        return [t for t in self.topics if t.on_twitter]
