"""Rule-based tokenizer for news articles and tweets.

Replaces the SpaCy tokenizer used in the paper's preprocessing modules
(§4.2).  Handles the entities that matter for the two corpora:

* URLs, @mentions, #hashtags (tweets),
* contractions and hyphenated words (news prose),
* numbers (incl. decimals, thousands separators, percentages),
* punctuation stripping for the MABED-style "remove punctuation and
  tokenize" pipeline.
"""

from __future__ import annotations

import re
from typing import List

# Ordered alternation: specific web tokens first, then words, then numbers.
_TOKEN_RE = re.compile(
    r"""
    (?:https?://\S+|www\.\S+)          # URLs
    |[@\#][A-Za-z_][A-Za-z0-9_]*       # @mentions and #hashtags
    |[A-Za-z]+(?:'[A-Za-z]+)?          # words with optional contraction
    |\d+(?:[.,]\d+)*%?                 # numbers, decimals, percentages
    |[^\sA-Za-z0-9]                    # any single punctuation mark
    """,
    re.VERBOSE,
)

_PUNCT_RE = re.compile(r"^[^\sA-Za-z0-9@#]$")
_URL_RE = re.compile(r"^(?:https?://|www\.)", re.IGNORECASE)


def tokenize(text: str) -> List[str]:
    """Split *text* into tokens, keeping punctuation as single tokens."""
    if not text:
        return []
    return _TOKEN_RE.findall(text)


def is_punctuation(token: str) -> bool:
    """True for single punctuation-mark tokens."""
    return bool(_PUNCT_RE.match(token))


def is_url(token: str) -> bool:
    """True for URL tokens."""
    return bool(_URL_RE.match(token))


def is_mention(token: str) -> bool:
    """True for @mention tokens."""
    return token.startswith("@") and len(token) > 1


def is_hashtag(token: str) -> bool:
    """True for #hashtag tokens."""
    return token.startswith("#") and len(token) > 1


def words(text: str, lowercase: bool = True) -> List[str]:
    """Tokenize and keep only word-like tokens (drops punctuation/URLs).

    This is the "removal of punctuation + tokenization" pipeline the paper
    applies to the NewsED and TwitterED corpora before MABED.  Hashtags and
    mentions are kept with their sigil stripped, since MABED treats them as
    ordinary terms.
    """
    out: List[str] = []
    for token in tokenize(text):
        if is_url(token) or is_punctuation(token):
            continue
        if token in ("@", "#"):  # bare sigils carry no content
            continue
        if is_mention(token) or is_hashtag(token):
            token = token[1:]
            # A sigil can front a punctuation-only name ("@_"): once
            # stripped it must clear the same punctuation filter as any
            # other token, or "words" would leak bare underscores.
            if is_punctuation(token):
                continue
        if lowercase:
            token = token.lower()
        out.append(token)
    return out


def sentences(text: str) -> List[str]:
    """Naive sentence splitter on terminal punctuation.

    Good enough for the shape-based NER pass, which only needs to know
    whether a capitalised word starts a sentence.
    """
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [p for p in parts if p]
