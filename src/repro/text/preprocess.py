"""The three preprocessing pipelines of §4.2.

The paper builds three corpora from the raw collections:

* ``NewsTM``   — news articles for topic modeling: named-entity merging,
  lemmatization, punctuation and stopword removal;
* ``NewsED``   — news articles for event detection: punctuation removal +
  tokenization only (replicating pyMABED's original preprocessing);
* ``TwitterED`` — tweets for event detection: same minimal pipeline.

Each function maps raw text to a token list; the corpus-level helpers read
from / write to the document store the way the deployed system used
MongoDB.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..parallel import parallel_map
from ..store import Collection
from .lemmatizer import Lemmatizer
from .ner import EntityRecognizer
from .stopwords import remove_stopwords
from .tokenizer import is_punctuation, is_url, words

_SHARED_LEMMATIZER = Lemmatizer()
_SHARED_NER = EntityRecognizer()


def preprocess_for_topic_modeling(
    text: str,
    lemmatizer: Optional[Lemmatizer] = None,
    ner: Optional[EntityRecognizer] = None,
) -> List[str]:
    """NewsTM pipeline: NER concepts + lemmas, minus punctuation/stopwords.

    Entity spans become single underscore-joined concept tokens and are
    *not* lemmatized ("treat them as concepts and not as simple terms");
    remaining tokens are lemmatized, then punctuation and stopwords drop.
    """
    lemmatizer = lemmatizer or _SHARED_LEMMATIZER
    ner = ner or _SHARED_NER
    merged = ner.merge_entities(text)
    out: List[str] = []
    for token in merged:
        if is_punctuation(token) or is_url(token):
            continue
        if "_" in token:
            out.append(token)  # concept token, kept verbatim
            continue
        lowered = token.lower()
        if not lowered.isalpha():
            continue
        out.append(lemmatizer.lemma(lowered))
    return remove_stopwords(out)


def preprocess_for_event_detection(text: str) -> List[str]:
    """NewsED / TwitterED pipeline: remove punctuation, tokenize, lowercase.

    Deliberately minimal, matching the original MABED preprocessing the
    paper replicates.
    """
    return words(text, lowercase=True)


def build_corpus(
    source: Collection,
    target: Collection,
    pipeline: str,
    text_field: str = "text",
    copy_fields: Iterable[str] = ("created_at", "author", "followers", "likes", "retweets"),
    workers: Optional[int] = None,
) -> int:
    """Materialize a preprocessed corpus collection from a raw one.

    *pipeline* is ``"topic_modeling"`` or ``"event_detection"``.  Each
    output document carries ``tokens`` plus the requested metadata fields,
    mirroring how the deployed system stores preprocessed corpora back into
    MongoDB.  Returns the number of documents written.

    Tokenization fans out over :func:`repro.parallel.parallel_map`
    (*workers* = None defers to ``REPRO_WORKERS``); writes stay serial
    and in source order, so the target collection is identical whatever
    the worker count.
    """
    if pipeline == "topic_modeling":
        func = preprocess_for_topic_modeling
    elif pipeline == "event_detection":
        func = preprocess_for_event_detection
    else:
        raise ValueError(f"unknown pipeline: {pipeline!r}")

    docs = list(source.find())
    token_lists = parallel_map(
        func,
        [doc.get(text_field, "") for doc in docs],
        workers=workers,
        span_name=f"text.build_corpus.{pipeline}",
    )
    for doc, tokens in zip(docs, token_lists):
        record: Dict[str, object] = {
            "source_id": doc["_id"],
            "tokens": tokens,
        }
        for field in copy_fields:
            if field in doc:
                record[field] = doc[field]
        target.insert_one(record)
    return len(docs)
