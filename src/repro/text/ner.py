"""Shape- and gazetteer-based named entity recognizer.

The NewsTM pipeline (§4.2) "extracts named entities to treat them as
concepts and not as simple terms" — e.g. *New York Times* must survive as
one vocabulary item rather than three stopword-riddled tokens.  SpaCy is
unavailable offline, so this recognizer combines:

1. a gazetteer of known multi-word entities (extensible by the caller), and
2. a shape heuristic: maximal runs of capitalised tokens not at sentence
   start, allowing internal connectors (*of*, *the*, *de*).

Matched spans are merged into single underscore-joined concept tokens.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from .stopwords import is_stopword
from .tokenizer import sentences, tokenize

DEFAULT_GAZETTEER: Tuple[str, ...] = (
    "new york times", "washington post", "wall street journal", "white house",
    "european union", "united states", "united kingdom", "united nations",
    "theresa may", "donald trump", "boris johnson", "joe biden",
    "nancy pelosi", "shinzo abe", "kentucky derby", "maximum security",
    "supreme court", "middle east", "north korea", "south korea",
    "saudi arabia", "hong kong", "federal reserve", "world cup",
    "premier league", "manchester united", "manchester city",
    "silicon valley", "wall street", "game of thrones",
)

_CONNECTORS: Set[str] = {"of", "the", "de", "for", "and", "al"}


def _is_capitalized(token: str) -> bool:
    return token[:1].isupper() and token[1:].islower() and token.isalpha()


def _is_all_caps(token: str) -> bool:
    return len(token) > 1 and token.isalpha() and token.isupper()


class EntityRecognizer:
    """Finds named-entity spans and rewrites them as concept tokens.

    >>> ner = EntityRecognizer()
    >>> ner.merge_entities("The White House denied the report.")
    ['The', 'white_house', 'denied', 'the', 'report', '.']
    """

    def __init__(self, gazetteer: Iterable[str] = DEFAULT_GAZETTEER) -> None:
        self._gazetteer: Set[Tuple[str, ...]] = {
            tuple(entry.lower().split()) for entry in gazetteer
        }
        self._max_gaz_len = max((len(g) for g in self._gazetteer), default=1)

    def add_entities(self, entries: Iterable[str]) -> None:
        """Extend the gazetteer with additional known entities."""
        for entry in entries:
            parts = tuple(entry.lower().split())
            if parts:
                self._gazetteer.add(parts)
                self._max_gaz_len = max(self._max_gaz_len, len(parts))

    def _gazetteer_match(self, lowered: Sequence[str], start: int) -> int:
        """Longest gazetteer match starting at *start*; returns end index."""
        best = 0
        limit = min(self._max_gaz_len, len(lowered) - start)
        for length in range(limit, 1, -1):
            if tuple(lowered[start:start + length]) in self._gazetteer:
                best = length
                break
        return start + best if best else 0

    def _shape_span(self, tokens: Sequence[str], start: int, sentence_start: bool) -> int:
        """Length of a capitalised-run entity starting at *start* (0 if none)."""
        if not (_is_capitalized(tokens[start]) or _is_all_caps(tokens[start])):
            return 0
        # A sentence-initial determiner/adverb ("The", "Yesterday") is
        # capitalised by grammar, not because it names something; letting
        # it open a span swallows the real entity behind it.
        if sentence_start and is_stopword(tokens[start]) and not _is_all_caps(tokens[start]):
            return 0
        end = start + 1
        while end < len(tokens):
            tok = tokens[end]
            if _is_capitalized(tok) or _is_all_caps(tok):
                end += 1
            elif tok.lower() in _CONNECTORS and end + 1 < len(tokens) and (
                _is_capitalized(tokens[end + 1]) or _is_all_caps(tokens[end + 1])
            ):
                # A connector may not be the second element of a span that
                # opens the sentence: "Read the New York Times" must not
                # fuse the verb with the entity behind it.
                if sentence_start and end == start + 1:
                    break
                end += 2
            else:
                break
        length = end - start
        # A lone capitalised sentence-initial word is usually not an entity.
        if length == 1 and sentence_start and not _is_all_caps(tokens[start]):
            return 0
        return length

    def entities(self, text: str) -> List[str]:
        """Named entities found in *text*, as lower-cased surface strings."""
        found: List[str] = []
        for tokens, _flags in self._sentence_tokens(text):
            lowered = [t.lower() for t in tokens]
            i = 0
            while i < len(tokens):
                gaz_end = self._gazetteer_match(lowered, i)
                if gaz_end:
                    found.append(" ".join(lowered[i:gaz_end]))
                    i = gaz_end
                    continue
                span = self._shape_span(tokens, i, sentence_start=(i == 0))
                if span >= 2:
                    found.append(" ".join(lowered[i:i + span]))
                    i += span
                else:
                    i += 1
        return found

    def _sentence_tokens(self, text: str):
        for sentence in sentences(text):
            tokens = tokenize(sentence)
            yield tokens, None

    def merge_entities(self, text: str) -> List[str]:
        """Tokenize *text*, rewriting entity spans as ``foo_bar`` concepts."""
        out: List[str] = []
        for tokens, _flags in self._sentence_tokens(text):
            lowered = [t.lower() for t in tokens]
            i = 0
            while i < len(tokens):
                gaz_end = self._gazetteer_match(lowered, i)
                if gaz_end:
                    out.append("_".join(lowered[i:gaz_end]))
                    i = gaz_end
                    continue
                span = self._shape_span(tokens, i, sentence_start=(i == 0))
                if span >= 2:
                    out.append("_".join(lowered[i:i + span]))
                    i += span
                else:
                    out.append(tokens[i])
                    i += 1
        return out
