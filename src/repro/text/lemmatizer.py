"""Suffix-rule lemmatizer with an exception table.

Replaces SpaCy's lemmatizer in the NewsTM preprocessing pipeline (§4.2:
"extract lemmas to minimize the vocabulary and store only the base root").
The approach is the classic rule cascade (irregulars first, then ordered
suffix transformations with a minimum-stem-length guard), which is the same
family of algorithm SpaCy's lookup lemmatizer uses for English.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Irregular forms that suffix rules would mangle.
IRREGULAR_LEMMAS: Dict[str, str] = {
    # verbs
    "was": "be", "were": "be", "is": "be", "are": "be", "am": "be", "been": "be",
    "being": "be", "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "said": "say", "says": "say", "went": "go", "gone": "go", "goes": "go",
    "made": "make", "making": "make", "took": "take", "taken": "take",
    "came": "come", "got": "get", "gotten": "get", "saw": "see", "seen": "see",
    "knew": "know", "known": "know", "thought": "think", "told": "tell",
    "became": "become", "began": "begin", "begun": "begin", "brought": "bring",
    "bought": "buy", "caught": "catch", "chose": "choose", "chosen": "choose",
    "fell": "fall", "fallen": "fall", "felt": "feel", "found": "find",
    "gave": "give", "given": "give", "grew": "grow", "grown": "grow",
    "held": "hold", "kept": "keep", "led": "lead", "left": "leave",
    "lost": "lose", "met": "meet", "paid": "pay", "ran": "run", "rose": "rise",
    "risen": "rise", "sent": "send", "sold": "sell", "spent": "spend",
    "spoke": "speak", "spoken": "speak", "stood": "stand", "struck": "strike",
    "threw": "throw", "thrown": "throw", "understood": "understand",
    "voted": "vote", "won": "win", "wrote": "write", "written": "write",
    "broke": "break", "broken": "break", "drew": "draw", "drawn": "draw",
    "fought": "fight", "heard": "hear", "hit": "hit", "meant": "mean",
    "put": "put", "read": "read", "set": "set", "shot": "shoot",
    "added": "add", "adding": "add", "odds": "odds", "news": "news",
    # nouns
    "men": "man", "women": "woman", "children": "child", "people": "people",
    "feet": "foot", "teeth": "tooth", "mice": "mouse", "geese": "goose",
    "lives": "life", "wives": "wife", "knives": "knife", "leaves": "leaf",
    "wolves": "wolf", "halves": "half", "shelves": "shelf", "selves": "self",
    "media": "medium", "data": "data", "crises": "crisis", "analyses": "analysis",
    "countries": "country", "parties": "party", "companies": "company",
    "policies": "policy", "economies": "economy", "studies": "study",
    "bodies": "body", "stories": "story", "authorities": "authority",
    # adjectives / adverbs
    "better": "good", "best": "good", "worse": "bad", "worst": "bad",
    "more": "many", "most": "many", "less": "little", "least": "little",
    "further": "far", "farther": "far",
}

# (suffix, replacement, min_stem_length) tried in order; the stem length
# guard stops "as" -> "a" style destruction.
SUFFIX_RULES: List[Tuple[str, str, int]] = [
    ("ization", "ize", 3),
    ("isation", "ise", 3),
    ("fulness", "ful", 3),
    ("ousness", "ous", 3),
    ("iveness", "ive", 3),
    ("ations", "ate", 3),
    ("ation", "ate", 3),
    ("ingly", "", 4),
    ("edly", "", 4),
    ("iest", "y", 3),
    ("ies", "y", 3),
    ("ied", "y", 3),
    ("ier", "y", 3),
    ("ily", "y", 3),
    ("sses", "ss", 2),
    ("shes", "sh", 3),
    ("ches", "ch", 3),
    ("xes", "x", 2),
    ("zes", "z", 2),
    ("ves", "f", 3),
    ("ing", "", 3),
    ("ed", "", 3),
    ("ly", "", 4),
    ("s", "", 3),
]

# Words where stripping a final "s" would destroy the root.
_S_ENDINGS_KEPT = ("ss", "us", "is", "ous")

_DOUBLED_FINAL = set("bdfgklmnprt")
_VOWELS = set("aeiou")


def _restore_e(stem: str) -> str:
    """After stripping -ing/-ed, restore a dropped final 'e' when likely.

    ``making -> mak -> make``; ``voting -> vot -> vote``.  Heuristic: a
    short stem (<= 4 chars) ending consonant-vowel-consonant dropped an
    'e' before the suffix; longer stems only when they end in a pattern
    that almost always carries one (-at, -iz, -is, -ut, or c/g/s/u/v/z).
    """
    if len(stem) < 3 or stem[-1] in _VOWELS or stem[-1] in "wxy":
        return stem
    cvc = stem[-2] in _VOWELS and (len(stem) < 3 or stem[-3] not in _VOWELS)
    if not cvc:
        return stem
    if len(stem) <= 4:
        return stem + "e"
    if stem[-1] in "cgsuvz" or stem.endswith(("at", "iz", "is", "ut")):
        return stem + "e"
    return stem


def _undouble(stem: str):
    """Collapse doubled final consonants produced by -ing/-ed stripping.

    ``running -> runn -> run``; ``stopped -> stopp -> stop``.  Returns
    ``(stem, undoubled)`` — an undoubled stem never needs 'e' restoration
    (the doubling itself signalled the short vowel).
    """
    if (
        len(stem) >= 3
        and stem[-1] == stem[-2]
        and stem[-1] in _DOUBLED_FINAL
        and not stem.endswith(("ll", "ss", "ff"))
    ):
        return stem[:-1], True
    return stem, False


class Lemmatizer:
    """English lemmatizer: exception lookup, then ordered suffix rules.

    >>> Lemmatizer().lemma("elections")
    'election'
    >>> Lemmatizer().lemma("running")
    'run'
    >>> Lemmatizer().lemma("went")
    'go'
    """

    def __init__(self, extra_exceptions: Optional[Dict[str, str]] = None) -> None:
        self._exceptions = dict(IRREGULAR_LEMMAS)
        if extra_exceptions:
            self._exceptions.update(extra_exceptions)
        self._cache: Dict[str, str] = {}

    def lemma(self, token: str) -> str:
        """Return the lemma of *token* (lower-cased)."""
        word = token.lower()
        if word in self._cache:
            return self._cache[word]
        result = self._lemma_uncached(word)
        self._cache[word] = result
        return result

    def _lemma_uncached(self, word: str) -> str:
        if word in self._exceptions:
            return self._exceptions[word]
        if len(word) <= 3 or not word.isalpha():
            return word
        for suffix, replacement, min_stem in SUFFIX_RULES:
            if word.endswith(suffix):
                if suffix == "s" and word.endswith(_S_ENDINGS_KEPT):
                    continue
                stem = word[: len(word) - len(suffix)]
                if len(stem) < min_stem:
                    continue
                stem += replacement
                if suffix in ("ing", "ed"):
                    stem, undoubled = _undouble(stem)
                    if not undoubled:
                        stem = _restore_e(stem)
                return stem
        return word

    def lemmatize(self, tokens) -> List[str]:
        """Lemmatize a token sequence."""
        return [self.lemma(tok) for tok in tokens]
