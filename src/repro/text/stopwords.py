"""English stopword list used by the NewsTM preprocessing pipeline.

The paper removes stopwords before topic modeling (§4.2) because they "do
not add any information gain".  The list below merges the classic Snowball
English list with web/Twitter-era function words; it is deliberately static
so preprocessing is deterministic across runs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

ENGLISH_STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are aren't as at be
    because been before being below between both but by can can't cannot
    could couldn't did didn't do does doesn't doing don't down during each
    few for from further had hadn't has hasn't have haven't having he he'd
    he'll he's her here here's hers herself him himself his how how's i i'd
    i'll i'm i've if in into is isn't it it's its itself let's me more most
    mustn't my myself no nor not of off on once only or other ought our ours
    ourselves out over own same shan't she she'd she'll she's should
    shouldn't so some such than that that's the their theirs them themselves
    then there there's these they they'd they'll they're they've this those
    through to too under until up very was wasn't we we'd we'll we're we've
    were weren't what what's when when's where where's which while who who's
    whom why why's with won't would wouldn't you you'd you'll you're you've
    your yours yourself yourselves
    also just like get got one two via says said say new will may amp rt im
    dont u ur us even still really much many back go going went make made
    see want know take need come time today day says yet ago per according
    among amid told people year years week weeks yesterday tomorrow
    """.split()
)


def is_stopword(token: str) -> bool:
    """True when *token* (case-insensitive) is an English stopword."""
    return token.lower() in ENGLISH_STOPWORDS


def remove_stopwords(tokens: Iterable[str]) -> list:
    """Filter stopwords out of a token sequence, preserving order."""
    return [tok for tok in tokens if tok.lower() not in ENGLISH_STOPWORDS]
