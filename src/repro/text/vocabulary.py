"""Vocabulary: bidirectional term <-> index mapping with frequency pruning.

Shared by the document-term matrix builder (topic modeling), MABED's
candidate-word selection, and Word2Vec's negative-sampling table.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence


class Vocabulary:
    """Orders distinct terms and tracks corpus statistics.

    Terms receive indexes in decreasing frequency order (ties broken
    alphabetically) so that index 0 is always the most frequent term —
    handy for frequency-bucketed sampling tables.
    """

    def __init__(self) -> None:
        self._term_to_index: Dict[str, int] = {}
        self._index_to_term: List[str] = []
        self._term_counts: Counter = Counter()
        self._doc_counts: Counter = Counter()
        self._num_docs = 0
        self._finalized = False

    # -- construction ---------------------------------------------------------

    def add_document(self, tokens: Sequence[str]) -> None:
        """Record one document's tokens (term and document frequencies)."""
        if self._finalized:
            raise RuntimeError("vocabulary already finalized")
        self._num_docs += 1
        self._term_counts.update(tokens)
        self._doc_counts.update(set(tokens))

    def finalize(
        self,
        min_count: int = 1,
        min_df: int = 1,
        max_df_ratio: float = 1.0,
        max_size: Optional[int] = None,
    ) -> "Vocabulary":
        """Freeze the vocabulary, applying frequency pruning.

        Parameters mirror scikit-learn's vectorizers: *min_count* filters by
        total term frequency, *min_df*/*max_df_ratio* by document frequency,
        *max_size* keeps only the most frequent terms.
        """
        if self._finalized:
            raise RuntimeError("vocabulary already finalized")
        max_df = max_df_ratio * max(self._num_docs, 1)
        eligible = [
            term
            for term, count in self._term_counts.items()
            if count >= min_count
            and self._doc_counts[term] >= min_df
            and self._doc_counts[term] <= max_df
        ]
        eligible.sort(key=lambda t: (-self._term_counts[t], t))
        if max_size is not None:
            eligible = eligible[:max_size]
        self._index_to_term = eligible
        self._term_to_index = {term: i for i, term in enumerate(eligible)}
        self._finalized = True
        return self

    @classmethod
    def from_documents(
        cls,
        documents: Iterable[Sequence[str]],
        min_count: int = 1,
        min_df: int = 1,
        max_df_ratio: float = 1.0,
        max_size: Optional[int] = None,
    ) -> "Vocabulary":
        """Build and finalize a vocabulary in one pass."""
        vocab = cls()
        for doc in documents:
            vocab.add_document(doc)
        return vocab.finalize(
            min_count=min_count,
            min_df=min_df,
            max_df_ratio=max_df_ratio,
            max_size=max_size,
        )

    @classmethod
    def from_counts(
        cls,
        term_counts: Counter,
        doc_counts: Counter,
        num_docs: int,
        min_count: int = 1,
        min_df: int = 1,
        max_df_ratio: float = 1.0,
        max_size: Optional[int] = None,
    ) -> "Vocabulary":
        """Build and finalize a vocabulary from precomputed statistics.

        The streaming pipeline maintains cumulative term/document
        frequency counters incrementally (O(new data) per cycle) and
        finalizes a vocabulary from them each cycle.  Pruning and
        ordering are identical to :meth:`from_documents` over the same
        corpus — the eligible set is sorted by the total order
        ``(-count, term)``, so the result does not depend on counter
        insertion order.
        """
        if num_docs < 0:
            raise ValueError("num_docs must be >= 0")
        vocab = cls()
        vocab._term_counts = Counter(term_counts)
        vocab._doc_counts = Counter(doc_counts)
        vocab._num_docs = num_docs
        return vocab.finalize(
            min_count=min_count,
            min_df=min_df,
            max_df_ratio=max_df_ratio,
            max_size=max_size,
        )

    # -- lookups ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_index

    def __iter__(self) -> Iterator[str]:
        return iter(self._index_to_term)

    def index(self, term: str) -> int:
        """Index of *term*; raises KeyError when absent."""
        return self._term_to_index[term]

    def get_index(self, term: str, default: int = -1) -> int:
        """Index of *term*, or *default* when out of vocabulary."""
        return self._term_to_index.get(term, default)

    def term(self, index: int) -> str:
        """Term at *index*; raises IndexError when out of range."""
        return self._index_to_term[index]

    def terms(self) -> List[str]:
        return list(self._index_to_term)

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Indexes of the in-vocabulary tokens, preserving order."""
        return [
            self._term_to_index[tok]
            for tok in tokens
            if tok in self._term_to_index
        ]

    # -- statistics --------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        """Number of documents the vocabulary was built from."""
        return self._num_docs

    def term_frequency(self, term: str) -> int:
        """Total corpus frequency of *term* (0 when unseen)."""
        return self._term_counts.get(term, 0)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing *term* (0 when unseen)."""
        return self._doc_counts.get(term, 0)
