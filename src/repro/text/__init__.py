"""NLP substrate — tokenization, lemmatization, NER, stopwords, vocabulary.

Replaces the SpaCy components the paper uses in its preprocessing modules
(§4.2).  The three corpus pipelines (NewsTM, NewsED, TwitterED) live in
:mod:`repro.text.preprocess`.
"""

from .lemmatizer import Lemmatizer
from .ner import EntityRecognizer, DEFAULT_GAZETTEER
from .preprocess import (
    build_corpus,
    preprocess_for_event_detection,
    preprocess_for_topic_modeling,
)
from .stopwords import ENGLISH_STOPWORDS, is_stopword, remove_stopwords
from .tokenizer import (
    is_hashtag,
    is_mention,
    is_punctuation,
    is_url,
    sentences,
    tokenize,
    words,
)
from .vocabulary import Vocabulary

__all__ = [
    "Lemmatizer",
    "EntityRecognizer",
    "DEFAULT_GAZETTEER",
    "Vocabulary",
    "ENGLISH_STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "tokenize",
    "words",
    "sentences",
    "is_punctuation",
    "is_url",
    "is_mention",
    "is_hashtag",
    "preprocess_for_topic_modeling",
    "preprocess_for_event_detection",
    "build_corpus",
]
