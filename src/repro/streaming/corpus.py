"""Incremental corpus statistics for matrix-based stages.

The batch pipeline's document-term matrices (NMF topic modeling, LSA
background embeddings) are built by a per-token python loop over the
whole corpus every run.  Streaming keeps that loop O(new data): each
document's token counts are aggregated once at append time against a
shared :class:`TokenInterner`, and each cycle the matrix is *assembled*
from the cached triplets with vectorized numpy — O(nnz) with no python
per-token work.

Bitwise parity with the batch path holds because ``scipy`` canonicalizes
a COO-constructed CSR (column-sorted within rows, duplicates summed —
and neither path produces duplicate coordinates): the same multiset of
``(row, column, count)`` triplets yields byte-identical ``data`` /
``indices`` / ``indptr`` arrays, and the counts themselves are exact
small integers in float64.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

import numpy as np
from scipy import sparse

from ..text.vocabulary import Vocabulary


class TokenInterner:
    """Assigns stable small integer ids to tokens (first-seen order)."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._tokens: List[str] = []

    def __len__(self) -> int:
        return len(self._tokens)

    def intern(self, token: str) -> int:
        """Id of *token*, allocating one on first sight."""
        tid = self._ids.get(token)
        if tid is None:
            tid = self._ids[token] = len(self._tokens)
            self._tokens.append(token)
        return tid

    def tokens(self) -> List[str]:
        """All interned tokens, id order."""
        return self._tokens

    def column_map(self, vocabulary: Vocabulary) -> np.ndarray:
        """token-id -> vocabulary column (``-1`` for out-of-vocabulary)."""
        colmap = np.empty(len(self._tokens), dtype=np.int64)
        for tid, token in enumerate(self._tokens):
            colmap[tid] = vocabulary.get_index(token)
        return colmap


class SegmentCounts:
    """Append-only per-document token counts for one corpus segment.

    Carries both the per-document triplet cache (for matrix assembly)
    and the cumulative term/document frequency counters (for
    :meth:`Vocabulary.from_counts`).
    """

    def __init__(self, interner: TokenInterner) -> None:
        self.interner = interner
        self._doc_token_ids: List[np.ndarray] = []
        self._doc_token_counts: List[np.ndarray] = []
        self.term_counts: Counter = Counter()
        self.doc_counts: Counter = Counter()

    @property
    def num_docs(self) -> int:
        """Number of documents folded so far."""
        return len(self._doc_token_ids)

    def append(self, tokens: Sequence[str]) -> None:
        """Fold one document's tokens."""
        self.term_counts.update(tokens)
        self.doc_counts.update(set(tokens))
        seen: Dict[int, int] = {}
        for token in tokens:
            tid = self.interner.intern(token)
            seen[tid] = seen.get(tid, 0) + 1
        n = len(seen)
        self._doc_token_ids.append(
            np.fromiter(seen.keys(), dtype=np.int64, count=n)
        )
        self._doc_token_counts.append(
            np.fromiter(seen.values(), dtype=np.float64, count=n)
        )

    def extend(self, documents: Iterable[Sequence[str]]) -> None:
        for tokens in documents:
            self.append(tokens)


def combined_counts(segments: Sequence[SegmentCounts]):
    """Summed ``(term_counts, doc_counts, num_docs)`` across *segments*.

    The sums equal what :meth:`Vocabulary.from_documents` would tally
    over the concatenated corpora; order never matters because
    vocabulary finalization sorts by the total order ``(-count, term)``.
    """
    term_counts: Counter = Counter()
    doc_counts: Counter = Counter()
    num_docs = 0
    for segment in segments:
        term_counts.update(segment.term_counts)
        doc_counts.update(segment.doc_counts)
        num_docs += segment.num_docs
    return term_counts, doc_counts, num_docs


def assemble_counts(
    segments: Sequence[SegmentCounts], vocabulary: Vocabulary
) -> sparse.csr_matrix:
    """Raw-count CSR over *vocabulary*, rows = segment docs concatenated.

    Byte-identical to
    :meth:`DocumentTermMatrix._count_matrix` over the same documents in
    the same order (see module docstring for the canonicalization
    argument).  All segments must share one interner.
    """
    if not segments:
        return sparse.csr_matrix((0, len(vocabulary)), dtype=np.float64)
    interner = segments[0].interner
    for segment in segments[1:]:
        if segment.interner is not interner:
            raise ValueError("all segments must share one TokenInterner")
    colmap = interner.column_map(vocabulary)
    id_chunks: List[np.ndarray] = []
    count_chunks: List[np.ndarray] = []
    lengths: List[int] = []
    for segment in segments:
        id_chunks.extend(segment._doc_token_ids)
        count_chunks.extend(segment._doc_token_counts)
        lengths.extend(len(ids) for ids in segment._doc_token_ids)
    n_docs = len(lengths)
    if n_docs == 0:
        return sparse.csr_matrix((0, len(vocabulary)), dtype=np.float64)
    all_ids = (
        np.concatenate(id_chunks) if id_chunks else np.empty(0, dtype=np.int64)
    )
    data = (
        np.concatenate(count_chunks)
        if count_chunks
        else np.empty(0, dtype=np.float64)
    )
    rows = np.repeat(
        np.arange(n_docs, dtype=np.int64),
        np.asarray(lengths, dtype=np.int64),
    )
    cols = colmap[all_ids] if len(all_ids) else np.empty(0, dtype=np.int64)
    in_vocab = cols >= 0
    return sparse.csr_matrix(
        (data[in_vocab], (rows[in_vocab], cols[in_vocab])),
        shape=(n_docs, len(vocabulary)),
        dtype=np.float64,
    )
