"""``repro.streaming`` — append-only ingestion + incremental pipeline.

The paper's §4.9 deployment loop refreshes every two hours on a growing
corpus.  The batch pipeline recomputes everything from scratch each
cycle — O(all data); this package makes a refresh cycle cost O(new
data):

* :class:`IngestSession` (``ingest``) — durable append-only front door
  over the sharded WAL-backed store, with per-collection watermarks
  that drop late records deterministically.
* :class:`SliceWindow` (``window``) — the time-slice bookkeeping of
  ``events.timeslice`` maintained incrementally, with dirty-slice
  tracking and re-anchor rebuilds.
* :class:`IncrementalMABED` (``mabed``) — MABED with an incrementally
  extended inverted index and a related-words cache invalidated only
  where slices changed; detected events are bitwise equal to a batch
  detection over the same documents.
* :class:`TokenInterner` / :class:`SegmentCounts` (``corpus``) —
  per-document token counts cached at append time so the
  document-term matrix and LSA inputs rebuild in O(nnz) numpy, not
  O(corpus) python.
* :class:`StreamingStateStore` (``state``) — crash-safe persistence of
  the folded corpora + warm-start model state, fingerprint-invalidated.
* :class:`IncrementalPipeline` (``pipeline``) — the per-cycle driver
  returning the same :class:`~repro.core.pipeline.PipelineResult` as
  the batch pipeline; exact by default, warm-started when configured.

``docs/streaming.md`` documents which paths are exact (bitwise equal to
batch) and which are tolerance-bounded, and why.
"""

from .corpus import SegmentCounts, TokenInterner, assemble_counts, combined_counts
from .ingest import IngestAck, IngestSession
from .mabed import IncrementalMABED, RelatedWordsCache
from .pipeline import IncrementalPipeline, StreamingConfig
from .state import StreamingStateStore
from .window import SliceWindow

__all__ = [
    "IngestAck",
    "IngestSession",
    "IncrementalMABED",
    "IncrementalPipeline",
    "RelatedWordsCache",
    "SegmentCounts",
    "SliceWindow",
    "StreamingConfig",
    "StreamingStateStore",
    "TokenInterner",
    "assemble_counts",
    "combined_counts",
]
