"""Crash-safe persistence of streaming pipeline state.

The durable source of truth is always the store's WAL — the streaming
state checkpoint is an *optimization* that lets a reopened pipeline
skip re-preprocessing the backlog.  Consistency model:

* the checkpoint records, per collection, the last document ``_id``
  folded into the derived state, and it is only written **after** those
  documents were acknowledged by the store — so the state can lag the
  store but never lead it;
* on open, a valid checkpoint is loaded and the gap is folded from the
  store with ``find({"_id": {"$gt": last_id}})``; a missing, torn, or
  fingerprint-stale checkpoint simply means folding from document one.

Atomicity uses the classic directory-flip: a whole state bundle is
written under a fresh ``state-NNNNNN/`` directory, then the ``CURRENT``
pointer file is atomically replaced.  A crash before the flip leaves
the previous complete bundle current; a crash after it leaves the new
one — a half-written bundle is never observed.  Fault sites
``streaming.checkpoint.write`` (before the bundle write) and
``streaming.checkpoint.flip`` (before the pointer flip) let the
recovery harness kill at both edges.

Corpus payloads reuse the ``repro.resilience.codecs`` stage codecs
(token docs, timestamped docs, tweet records), so the on-disk format is
shared with pipeline checkpoints.
"""

from __future__ import annotations

import io
import json
import os
import shutil
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs
from ..resilience import faults
from ..resilience.checkpoint import atomic_write, config_fingerprint
from ..resilience.codecs import decode_stage, encode_stage

STATE_VERSION = 1
_CURRENT = "CURRENT"

Bundle = Tuple[Dict[str, Any], Dict[str, Any], Dict[str, np.ndarray]]


class StreamingStateStore:
    """Directory-flip checkpoint store for one streaming pipeline."""

    def __init__(self, root: str, config: Any, key: str = "") -> None:
        self.root = root
        self._fingerprint = config_fingerprint(
            config, world_key=f"streaming:{key}"
        )
        os.makedirs(root, exist_ok=True)

    # -- helpers -----------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Config fingerprint a checkpoint must match to be restored."""
        return self._fingerprint

    def _current_dir(self) -> Optional[str]:
        try:
            with open(
                os.path.join(self.root, _CURRENT), "r", encoding="utf-8"
            ) as handle:
                pointer = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        name = pointer.get("dir")
        if not isinstance(name, str):
            return None
        path = os.path.join(self.root, name)
        return path if os.path.isdir(path) else None

    def _next_dir(self) -> str:
        existing = [
            name
            for name in os.listdir(self.root)
            if name.startswith("state-")
        ]
        seq = 0
        for name in existing:
            try:
                seq = max(seq, int(name.split("-", 1)[1]) + 1)
            except ValueError:
                continue
        return os.path.join(self.root, f"state-{seq:06d}")

    # -- save / load -------------------------------------------------------

    def save(
        self,
        manifest: Dict[str, Any],
        stages: Dict[str, Any],
        arrays: Dict[str, np.ndarray],
    ) -> str:
        """Persist one complete bundle; returns the bundle directory.

        *manifest* must be JSON-able; *stages* maps codec stage names to
        their values; *arrays* holds extra raw arrays (model weights).
        """
        faults.inject("streaming.checkpoint.write")
        bundle_dir = self._next_dir()
        os.makedirs(bundle_dir, exist_ok=True)
        stage_index: Dict[str, bool] = {}
        for stage, value in stages.items():
            meta, stage_arrays = encode_stage(stage, value)
            atomic_write(
                os.path.join(bundle_dir, f"{stage}.json"),
                json.dumps({"stage": stage, "meta": meta}).encode("utf-8"),
            )
            if stage_arrays:
                buffer = io.BytesIO()
                np.savez(buffer, **stage_arrays)
                atomic_write(
                    os.path.join(bundle_dir, f"{stage}.npz"),
                    buffer.getvalue(),
                )
            stage_index[stage] = bool(stage_arrays)
        if arrays:
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            atomic_write(os.path.join(bundle_dir, "arrays.npz"), buffer.getvalue())
        payload = {
            "version": STATE_VERSION,
            "fingerprint": self._fingerprint,
            "manifest": manifest,
            "stages": stage_index,
            "has_arrays": bool(arrays),
        }
        atomic_write(
            os.path.join(bundle_dir, "manifest.json"),
            (json.dumps(payload, indent=2) + "\n").encode("utf-8"),
        )
        faults.inject("streaming.checkpoint.flip")
        previous = self._current_dir()
        atomic_write(
            os.path.join(self.root, _CURRENT),
            json.dumps({"dir": os.path.basename(bundle_dir)}).encode("utf-8"),
        )
        if previous is not None and previous != bundle_dir:
            shutil.rmtree(previous, ignore_errors=True)
        obs.counter("streaming.checkpoint.saved").inc()
        return bundle_dir

    def load(self) -> Optional[Bundle]:
        """The current ``(manifest, stages, arrays)``, or None.

        Any inconsistency — missing pointer, torn bundle, version or
        fingerprint mismatch — returns None: the caller rebuilds from
        the store, which is always safe.
        """
        bundle_dir = self._current_dir()
        if bundle_dir is None:
            return None
        try:
            with open(
                os.path.join(bundle_dir, "manifest.json"), "r", encoding="utf-8"
            ) as handle:
                payload = json.load(handle)
            if payload.get("version") != STATE_VERSION:
                return None
            if payload.get("fingerprint") != self._fingerprint:
                obs.counter("streaming.checkpoint.stale").inc()
                return None
            stages: Dict[str, Any] = {}
            for stage, has_arrays in payload.get("stages", {}).items():
                with open(
                    os.path.join(bundle_dir, f"{stage}.json"),
                    "r",
                    encoding="utf-8",
                ) as handle:
                    stage_payload = json.load(handle)
                stage_arrays: Dict[str, np.ndarray] = {}
                if has_arrays:
                    with np.load(
                        os.path.join(bundle_dir, f"{stage}.npz")
                    ) as data:
                        stage_arrays = {name: data[name] for name in data.files}
                stages[stage] = decode_stage(
                    stage, stage_payload["meta"], stage_arrays
                )
            arrays: Dict[str, np.ndarray] = {}
            if payload.get("has_arrays"):
                with np.load(os.path.join(bundle_dir, "arrays.npz")) as data:
                    arrays = {name: data[name] for name in data.files}
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            obs.counter("streaming.checkpoint.torn").inc()
            return None
        obs.counter("streaming.checkpoint.loaded").inc()
        return payload["manifest"], stages, arrays
