"""Append-only ingestion with watermark-based late-record handling.

:class:`IngestSession` is the streaming front door: records append
through the WAL-backed :class:`~repro.store.ShardedCollection`, so an
acknowledged append survives a crash, and every collection carries a
**watermark** — ``max(accepted created_at) - allowed_lateness``.  A
record older than the watermark *at the start of its append call* is
dropped (counted, never stored): the incremental pipeline has already
folded the slices it would land in, and an unbounded right to rewrite
history would make per-cycle cost O(all data) again.  Records between
the watermark and the newest accepted timestamp are accepted
out-of-order; the slice window re-anchors or back-fills for them.

The watermark itself is derived state: on reopen it is recomputed from
the store's surviving documents (:meth:`IngestSession.resume`), so a
crash can never make the watermark disagree with the data.

Fault sites (``repro.resilience.faults`` kill points, per collection):
``streaming.ingest.append.<collection>`` fires before the store write,
``streaming.ingest.ack.<collection>`` after it — a fatal fault between
the two leaves acknowledged-but-unreported documents, exactly the torn
state the recovery harness replays.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .. import obs
from ..resilience import faults
from ..store import Database
from ..tools.annotations import guarded_by


@dataclass
class IngestAck:
    """Durable acknowledgement of one append batch."""

    collection: str
    ids: List[Any] = field(default_factory=list)
    dropped_late: int = 0
    watermark: Optional[datetime] = None

    @property
    def accepted(self) -> int:
        """Number of records durably written (``len(self.ids)``)."""
        return len(self.ids)


@guarded_by("_lock", "_high_water")
class IngestSession:
    """Watermarked append-only writer over a streaming database.

    Thread-safe: the watermark read and the post-write high-water
    update are serialized under ``_lock``; the store write itself runs
    outside the lock (the collection has its own locking) so concurrent
    appends to different collections do not serialize on each other.
    """

    def __init__(
        self,
        database: Database,
        allowed_lateness: timedelta = timedelta(0),
    ) -> None:
        if allowed_lateness < timedelta(0):
            raise ValueError("allowed_lateness must be >= 0")
        self._lock = threading.Lock()
        self.database = database
        self.allowed_lateness = allowed_lateness
        self._high_water: Dict[str, datetime] = {}

    @classmethod
    def resume(
        cls,
        database: Database,
        collections: Sequence[str] = ("news", "tweets"),
        allowed_lateness: timedelta = timedelta(0),
    ) -> "IngestSession":
        """Reopen over an existing store, rebuilding watermarks from it.

        The store's WAL-recovered documents are the source of truth: the
        high-water mark per collection is the max surviving
        ``created_at``, which can only lag (never lead) the pre-crash
        value — a replayed late record that would previously have been
        dropped is dropped again or safely re-folded, never lost.
        """
        session = cls(database, allowed_lateness=allowed_lateness)
        for name in collections:
            if name not in database:
                continue
            newest: Optional[datetime] = None
            for doc in database[name].find():
                created = doc["created_at"]
                if newest is None or created > newest:
                    newest = created
            if newest is not None:
                session._high_water[name] = newest
        return session

    # -- watermarks --------------------------------------------------------

    def _watermark_locked(self, collection: str) -> Optional[datetime]:
        high = self._high_water.get(collection)
        if high is None:
            return None
        return high - self.allowed_lateness

    def watermark(self, collection: str) -> Optional[datetime]:
        """Current watermark of *collection* (None before any accept)."""
        with self._lock:
            return self._watermark_locked(collection)

    # -- appends -----------------------------------------------------------

    def append(
        self, collection: str, records: Iterable[Dict[str, Any]]
    ) -> IngestAck:
        """Append *records*; returns a durable :class:`IngestAck`.

        Records are judged against the watermark as of the start of the
        call (an accepted record in the same batch does not advance the
        bar for its siblings).  Any ``_id`` on an input record is
        discarded — the store assigns monotonically increasing ids in
        arrival order, which is what keeps streaming and batch document
        orders identical.
        """
        with self._lock:
            watermark = self._watermark_locked(collection)
        accepted: List[Dict[str, Any]] = []
        dropped = 0
        for record in records:
            if watermark is not None and record["created_at"] < watermark:
                dropped += 1
                continue
            cleaned = {k: v for k, v in record.items() if k != "_id"}
            accepted.append(cleaned)
        faults.inject(f"streaming.ingest.append.{collection}")
        ids: List[Any] = []
        if accepted:
            ids = self.database[collection].insert_many(accepted)
        faults.inject(f"streaming.ingest.ack.{collection}")
        with self._lock:
            high = self._high_water.get(collection)
            for record in accepted:
                created = record["created_at"]
                if high is None or created > high:
                    high = created
            if high is not None:
                self._high_water[collection] = high
            watermark_after = self._watermark_locked(collection)
        obs.counter("streaming.ingest.accepted").inc(len(ids))
        obs.counter("streaming.ingest.late_dropped").inc(dropped)
        return IngestAck(
            collection=collection,
            ids=ids,
            dropped_late=dropped,
            watermark=watermark_after,
        )
