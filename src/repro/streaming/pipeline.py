"""The incremental pipeline: per-cycle cost proportional to new data.

:class:`IncrementalPipeline` is the streaming twin of
:class:`~repro.core.pipeline.NewsDiffusionPipeline`.  Records append
through a watermarked :class:`~repro.streaming.ingest.IngestSession`;
each :meth:`IncrementalPipeline.cycle` folds only the documents that
arrived since the previous cycle into persistent derived state —
preprocessed corpora, segment token counts, MABED slice windows and
inverted indexes, the related-words cache — and then re-runs the cheap
global steps over that state.  The output is a regular
:class:`~repro.core.pipeline.PipelineResult`.

Parity contract (checked by the differential harness in
``tests/streaming``):

* **exact path** (``topic_mode="cold"``, ``embeddings_mode="lsa"`` —
  the defaults): every product (events, topics, embeddings,
  correlation, dataset tensors) is *bitwise identical* to a batch
  :meth:`NewsDiffusionPipeline.run` over the same documents, however
  the arrivals were chunked;
* **fast path** (``topic_mode="warm"`` and/or
  ``embeddings_mode="word2vec"``): NMF warm-starts from the previous
  factorization and Word2Vec grows its vocabulary and continues
  training — same objective, different trajectory, so products are
  tolerance-comparable rather than bitwise (MABED events stay bitwise
  in every mode).

Crash safety: the store's WAL is the source of truth; the optional
:class:`~repro.streaming.state.StreamingStateStore` checkpoint is only
an optimization.  It is written after a cycle completes (never leads
the acknowledged data), and a reopened pipeline folds whatever the
checkpoint is missing straight from the store.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from dataclasses import dataclass
from datetime import timedelta
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

import numpy as np

from .. import obs
from ..core.config import PipelineConfig
from ..core.correlation import CorrelationModule
from ..core.features import FeatureCreationModule, TweetRecord
from ..core.pipeline import (
    PipelineResult,
    news_ed_document,
    news_tm_tokens,
    tweet_record_of,
    twitter_ed_document,
)
from ..core.trending import TrendingNewsModule
from ..datagen.world import TWITTER_SLANG
from ..datasets import Dataset, VARIANT_NAMES, build_all_datasets
from ..embeddings import PretrainedEmbeddings
from ..embeddings.word2vec import Word2Vec
from ..events import Event, MABED
from ..events.timeslice import TimestampedDocument
from ..store import Database
from ..text import is_stopword
from ..text.vocabulary import Vocabulary
from ..topics.nmf import NMF, NMFResult
from ..weighting.matrix import DocumentTermMatrix
from .corpus import (
    SegmentCounts,
    TokenInterner,
    assemble_counts,
    combined_counts,
)
from .ingest import IngestAck, IngestSession
from .mabed import IncrementalMABED
from .state import StreamingStateStore

T = TypeVar("T")

TOPIC_MODES = ("cold", "warm")
EMBEDDINGS_MODES = ("lsa", "word2vec")


@dataclass
class StreamingConfig:
    """Knobs specific to the incremental pipeline.

    ``topic_mode`` / ``embeddings_mode`` select the exact or fast
    variants of the two iterative stages (see the module docstring for
    the parity contract of each combination).
    """

    #: Records older than ``watermark = max(created_at) - allowed_lateness``
    #: are dropped at ingest; anything newer is folded (re-anchoring the
    #: slice windows when needed).
    allowed_lateness: timedelta = timedelta(0)
    #: "cold": re-factorize from the seeded random init (bitwise equal to
    #: batch).  "warm": init from the previous cycle's factors.
    topic_mode: str = "cold"
    #: "lsa": full SVD over the incrementally maintained TFIDF matrix
    #: (bitwise equal to batch).  "word2vec": grow vocabulary + continue
    #: training on new sentences only.
    embeddings_mode: str = "lsa"
    #: Epochs per continue-training session in "word2vec" mode (the batch
    #: background trainer uses 2).
    w2v_epochs: int = 2

    def __post_init__(self) -> None:
        if self.allowed_lateness < timedelta(0):
            raise ValueError("allowed_lateness must be >= 0")
        if self.topic_mode not in TOPIC_MODES:
            raise ValueError(
                f"topic_mode must be one of {TOPIC_MODES}, got {self.topic_mode!r}"
            )
        if self.embeddings_mode not in EMBEDDINGS_MODES:
            raise ValueError(
                f"embeddings_mode must be one of {EMBEDDINGS_MODES}, "
                f"got {self.embeddings_mode!r}"
            )
        if self.w2v_epochs < 1:
            raise ValueError("w2v_epochs must be >= 1")


def _hash_rng(label: str) -> np.random.Generator:
    """Deterministic, arrival-order-independent generator for *label*."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


class IncrementalPipeline:
    """Streaming counterpart of the Figure-1 pipeline.

    Usage::

        pipeline = IncrementalPipeline(config, StreamingConfig())
        pipeline.append_news(articles)     # durable, watermarked
        pipeline.append_tweets(tweets)
        result = pipeline.cycle()          # O(new data) fold + detect

    The instance owns a streaming :class:`~repro.store.Database` (or
    wraps one passed in) and an :class:`IngestSession` over it.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        streaming: Optional[StreamingConfig] = None,
        database: Optional[Database] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.streaming = streaming or StreamingConfig()
        self.database = (
            database if database is not None else Database("streaming")
        )
        self.ingest = IngestSession.resume(
            self.database, allowed_lateness=self.streaming.allowed_lateness
        )
        self._reset_derived()
        self._store: Optional[StreamingStateStore] = None
        if state_dir is not None:
            self._store = StreamingStateStore(
                state_dir, config=self.config, key=self._state_key()
            )
            self._try_restore()

    def _state_key(self) -> str:
        s = self.streaming
        return (
            f"{s.topic_mode}:{s.embeddings_mode}:{s.w2v_epochs}:"
            f"{s.allowed_lateness.total_seconds()}"
        )

    def _reset_derived(self) -> None:
        self.news_tm: List[List[str]] = []
        self.news_ed: List[TimestampedDocument] = []
        self.twitter_ed: List[TimestampedDocument] = []
        self.tweet_records: List[TweetRecord] = []
        self._tm_seg = SegmentCounts(TokenInterner())
        background = TokenInterner()
        self._bg_news_ed = SegmentCounts(background)
        self._bg_twitter_ed = SegmentCounts(background)
        self._bg_news_tm = SegmentCounts(background)
        self.mabed_news = IncrementalMABED(self._news_detector())
        self.mabed_twitter = IncrementalMABED(self._twitter_detector())
        self._last_ids: Dict[str, int] = {"news": 0, "tweets": 0}
        self._cycle = 0
        self._nmf_state: Optional[Dict[str, Any]] = None
        self._w2v: Optional[Word2Vec] = None
        self._pending_sentences: List[List[str]] = []

    # -- detectors (constructed exactly as the batch pipeline does) --------

    def _news_detector(self) -> MABED:
        return MABED(
            slice_width=timedelta(minutes=self.config.news_slice_minutes),
            min_term_support=self.config.min_term_support,
            n_related_words=self.config.n_related_words,
            theta=self.config.mabed_theta,
            stopword_filter=is_stopword,
            workers=self.config.workers or None,
        )

    def _twitter_detector(self) -> MABED:
        return MABED(
            slice_width=timedelta(minutes=self.config.twitter_slice_minutes),
            min_term_support=self.config.min_term_support,
            n_related_words=self.config.n_related_words,
            theta=self.config.mabed_theta,
            stopword_filter=is_stopword,
            workers=self.config.workers or None,
        )

    # -- ingestion ---------------------------------------------------------

    def append_news(self, records: Iterable[Dict[str, Any]]) -> IngestAck:
        """Durably append news articles (see :meth:`IngestSession.append`)."""
        return self.ingest.append("news", records)

    def append_tweets(self, records: Iterable[Dict[str, Any]]) -> IngestAck:
        """Durably append tweets."""
        return self.ingest.append("tweets", records)

    # -- folding -----------------------------------------------------------

    def _new_documents(self, collection: str, folded: int) -> List[Dict[str, Any]]:
        if collection not in self.database:
            return []
        coll = self.database[collection]
        if len(coll) <= folded:
            return []
        return list(
            coll.find({"_id": {"$gt": self._last_ids[collection]}})
        )

    def _fold(self) -> Tuple[int, int]:
        """Fold documents appended since the last cycle; O(new data)."""
        new_news = self._new_documents("news", len(self.news_ed))
        new_news_ed: List[TimestampedDocument] = []
        new_news_tm: List[List[str]] = []
        for doc in new_news:
            tokens = news_tm_tokens(doc)
            ed_doc = news_ed_document(doc)
            self.news_tm.append(tokens)
            self.news_ed.append(ed_doc)
            self._tm_seg.append(tokens)
            self._bg_news_ed.append(ed_doc.tokens)
            self._bg_news_tm.append(tokens)
            new_news_ed.append(ed_doc)
            new_news_tm.append(tokens)
            self._last_ids["news"] = doc["_id"]

        new_tweets = self._new_documents("tweets", len(self.twitter_ed))
        new_twitter_ed: List[TimestampedDocument] = []
        for doc in new_tweets:
            ed_doc = twitter_ed_document(doc)
            self.twitter_ed.append(ed_doc)
            self.tweet_records.append(tweet_record_of(doc))
            self._bg_twitter_ed.append(ed_doc.tokens)
            new_twitter_ed.append(ed_doc)
            self._last_ids["tweets"] = doc["_id"]

        self.mabed_news.extend(new_news_ed)
        self.mabed_twitter.extend(new_twitter_ed)
        if self.streaming.embeddings_mode == "word2vec":
            # Same segment order as the batch background corpus.
            self._pending_sentences.extend(
                list(d.tokens) for d in new_news_ed
            )
            self._pending_sentences.extend(
                list(d.tokens) for d in new_twitter_ed
            )
            self._pending_sentences.extend(
                list(tokens) for tokens in new_news_tm
            )
        obs.counter("streaming.folded_documents").inc(
            len(new_news) + len(new_tweets)
        )
        return len(new_news), len(new_tweets)

    # -- stages ------------------------------------------------------------

    def _topic_model(self) -> NMFResult:
        """TFIDF_N + NMF over the incrementally assembled NewsTM matrix.

        ``topic_mode="cold"`` reruns the seeded factorization — bitwise
        the batch ``extract_topics`` path (same matrix bytes, same
        init).  ``topic_mode="warm"`` initializes from the previous
        cycle's factors mapped onto the current vocabulary.
        """
        cfg = self.config
        vocabulary = Vocabulary.from_counts(
            self._tm_seg.term_counts,
            self._tm_seg.doc_counts,
            self._tm_seg.num_docs,
            min_df=2,
            max_df_ratio=0.7,
        )
        counts = assemble_counts([self._tm_seg], vocabulary)
        dtm = DocumentTermMatrix.from_counts(
            counts, vocabulary, weighting="tfidf_n"
        )
        model = NMF(
            n_topics=cfg.n_topics, max_iter=cfg.nmf_max_iter, seed=cfg.seed
        )
        init = None
        if self.streaming.topic_mode == "warm":
            init = self._warm_nmf_init(dtm)
            if init is None:
                obs.counter("streaming.nmf.cold_starts").inc()
            else:
                obs.counter("streaming.nmf.warm_starts").inc()
        result = model.fit(dtm, top_terms=cfg.topic_top_terms, init=init)
        if self.streaming.topic_mode == "warm":
            self._nmf_state = {
                "W": result.W,
                "H": result.H,
                "terms": list(dtm.vocabulary.terms()),
            }
        return result

    def _warm_nmf_init(
        self, dtm: DocumentTermMatrix
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Previous factors mapped onto the current matrix, or None.

        Retained terms keep their topic loadings (columns of H matched
        by term string); documents are append-only, so previous W rows
        map positionally.  New rows/columns get deterministic hash-seeded
        entries at the same scale as the cold init, independent of
        arrival chunking.  Falls back to a cold start when the topic
        count changed (k depends on matrix shape) or state is missing.
        """
        state = self._nmf_state
        if state is None:
            return None
        A = dtm.matrix
        n, m = A.shape
        k = min(self.config.n_topics, n, m)
        W_prev: np.ndarray = state["W"]
        H_prev: np.ndarray = state["H"]
        if k < 1 or W_prev.shape[1] != k or W_prev.shape[0] > n:
            return None
        scale = float(np.sqrt(NMF._mean(A) / max(k, 1))) or 1.0
        seed = self.config.seed
        prev_col = {term: j for j, term in enumerate(state["terms"])}
        H0 = np.empty((k, m), dtype=np.float64)
        for j, term in enumerate(dtm.vocabulary.terms()):
            pj = prev_col.get(term)
            if pj is None:
                H0[:, j] = _hash_rng(f"nmf-h:{seed}:{term}").random(k) * scale
            else:
                H0[:, j] = H_prev[:, pj]
        n_prev = W_prev.shape[0]
        W0 = np.empty((n, k), dtype=np.float64)
        W0[:n_prev] = W_prev
        for i in range(n_prev, n):
            W0[i] = _hash_rng(f"nmf-w:{seed}:{i}").random(k) * scale
        return W0, H0

    def _embeddings(self) -> PretrainedEmbeddings:
        """Background embeddings over the incrementally maintained corpus."""
        cfg = self.config
        if self.streaming.embeddings_mode == "lsa":
            segments = [self._bg_news_ed, self._bg_twitter_ed, self._bg_news_tm]
            term_counts, doc_counts, num_docs = combined_counts(segments)
            vocabulary = Vocabulary.from_counts(
                term_counts, doc_counts, num_docs, min_count=2
            )
            if len(vocabulary) == 0:
                embeddings = PretrainedEmbeddings({}, cfg.embedding_dim)
            else:
                counts = assemble_counts(segments, vocabulary)
                dtm = DocumentTermMatrix.from_counts(
                    counts, vocabulary, weighting="tfidf"
                )
                embeddings = PretrainedEmbeddings.lsa_from_matrix(
                    dtm,
                    dim=cfg.embedding_dim,
                    coverage=cfg.embedding_coverage,
                    seed=cfg.seed,
                )
            return embeddings.without(TWITTER_SLANG)

        # word2vec: grow the vocabulary, continue training on new text only.
        if self._w2v is None:
            self._w2v = Word2Vec(
                vector_size=cfg.embedding_dim,
                min_count=2,
                epochs=self.streaming.w2v_epochs,
                seed=cfg.seed,
                sg=True,
            )
        pending, self._pending_sentences = self._pending_sentences, []
        if pending:
            self._w2v.grow_vocab(pending)
            if self._w2v.index_to_word:
                self._w2v.continue_train(pending)
        vectors = self._w2v.vectors() if self._w2v.W_in is not None else {}
        coverage = cfg.embedding_coverage
        if coverage < 1.0 and vectors:
            model = self._w2v
            ranked = sorted(
                vectors, key=lambda w: (model.word_counts[w], w), reverse=True
            )
            keep = max(1, int(round(len(ranked) * coverage)))
            vectors = {w: vectors[w] for w in ranked[:keep]}
        return PretrainedEmbeddings(vectors, cfg.embedding_dim).without(
            TWITTER_SLANG
        )

    # -- orchestration -----------------------------------------------------

    @staticmethod
    def _timed(
        timings: Dict[str, float], name: str, func: Callable[[], T]
    ) -> T:
        with obs.span(f"streaming.{name}"):
            started = time.perf_counter()
            try:
                return func()
            finally:
                timings[name] = time.perf_counter() - started

    def cycle(self) -> PipelineResult:
        """Fold new data, then produce a full :class:`PipelineResult`.

        Stage structure mirrors :meth:`NewsDiffusionPipeline._run_stages`
        (same module constructions, same ordering) with the expensive
        per-document work replaced by incremental folds.
        """
        cfg = self.config
        timings: Dict[str, float] = {}
        with obs.span("streaming.cycle") as cycle_span:
            started = time.perf_counter()
            with obs.span("streaming.fold") as fold_span:
                n_new_news, n_new_tweets = self._fold()
                fold_span.annotate(
                    n_new_news=n_new_news, n_new_tweets=n_new_tweets
                )
            timings["fold"] = time.perf_counter() - started

            nmf = self._timed(timings, "topic_modeling", self._topic_model)
            news_events: List[Event] = self._timed(
                timings,
                "news_event_detection",
                lambda: self.mabed_news.detect(cfg.n_news_events),
            )
            twitter_events: List[Event] = self._timed(
                timings,
                "twitter_event_detection",
                lambda: self.mabed_twitter.detect(cfg.n_twitter_events),
            )
            embeddings = self._timed(timings, "embeddings", self._embeddings)

            trending_module = TrendingNewsModule(
                embeddings,
                similarity_threshold=cfg.trending_similarity_threshold,
            )
            trending = self._timed(
                timings,
                "trending_news",
                lambda: trending_module.extract(nmf.topics, news_events),
            )
            correlation_module = CorrelationModule(
                embeddings,
                similarity_threshold=cfg.correlation_similarity_threshold,
                start_window=timedelta(days=cfg.start_window_days),
                start_slack=timedelta(days=cfg.start_slack_days),
            )
            correlation = self._timed(
                timings,
                "correlation",
                lambda: correlation_module.correlate(trending, twitter_events),
            )
            feature_module = FeatureCreationModule(
                min_event_records=cfg.min_event_records,
                related_word_coverage=cfg.related_word_coverage,
            )
            records = self._timed(
                timings,
                "feature_creation",
                lambda: feature_module.extract(
                    correlation.pairs, self.tweet_records
                ),
            )
            datasets: Dict[str, Dataset] = {}
            if records:
                datasets = self._timed(
                    timings,
                    "dataset_building",
                    lambda: build_all_datasets(
                        records, embeddings, VARIANT_NAMES, cfg.workers or None
                    ),
                )

            self._cycle += 1
            if self._store is not None:
                self._timed(timings, "checkpoint", self._checkpoint)

            cycle_span.annotate(
                cycle=self._cycle,
                n_new_news=n_new_news,
                n_new_tweets=n_new_tweets,
                n_documents=len(self.news_ed) + len(self.twitter_ed),
                n_topics=len(nmf.topics),
                n_news_events=len(news_events),
                n_twitter_events=len(twitter_events),
                n_event_tweets=len(records),
            )
            return PipelineResult(
                topics=nmf.topics,
                nmf=nmf,
                news_events=news_events,
                twitter_events=twitter_events,
                trending=trending,
                correlation=correlation,
                event_tweets=records,
                datasets=datasets,
                embeddings=embeddings,
                timings_seconds=timings,
            )

    @property
    def cycles_completed(self) -> int:
        """Number of :meth:`cycle` calls completed (including restored)."""
        return self._cycle

    # -- persistence -------------------------------------------------------

    def _checkpoint(self) -> None:
        assert self._store is not None
        manifest: Dict[str, Any] = {
            "last_ids": dict(self._last_ids),
            "cycle": self._cycle,
        }
        arrays: Dict[str, np.ndarray] = {}
        if self._nmf_state is not None:
            manifest["nmf_terms"] = list(self._nmf_state["terms"])
            arrays["nmf_W"] = np.asarray(self._nmf_state["W"])
            arrays["nmf_H"] = np.asarray(self._nmf_state["H"])
        if self._w2v is not None and self._w2v.W_in is not None:
            manifest["w2v"] = {
                "words": list(self._w2v.index_to_word),
                "raw_counts": dict(self._w2v._raw_counts),
                "sessions": self._w2v._sessions,
            }
            arrays["w2v_W_in"] = self._w2v.W_in
            arrays["w2v_W_out"] = self._w2v.W_out
        stages = {
            "preprocess_news_tm": self.news_tm,
            "preprocess_news_ed": self.news_ed,
            "preprocess_twitter_ed": self.twitter_ed,
            "tweet_records": self.tweet_records,
        }
        self._store.save(manifest, stages, arrays)

    def _try_restore(self) -> None:
        """Adopt a valid checkpoint; silently rebuild from scratch if not.

        A checkpoint is adopted only when it *lags or matches* the store
        (derived state must never lead the acknowledged data — the store
        WAL is the source of truth after a crash).  The fold at the next
        :meth:`cycle` replays whatever documents the checkpoint missed.
        """
        assert self._store is not None
        bundle = self._store.load()
        if bundle is None:
            return
        manifest, stages, arrays = bundle
        last_ids = {
            str(k): int(v)
            for k, v in dict(manifest.get("last_ids", {})).items()
        }
        news_tm = stages.get("preprocess_news_tm", [])
        news_ed = stages.get("preprocess_news_ed", [])
        twitter_ed = stages.get("preprocess_twitter_ed", [])
        tweet_records = stages.get("tweet_records", [])
        consistent = (
            len(news_tm) == len(news_ed)
            and len(tweet_records) == len(twitter_ed)
            and last_ids.get("news", 0) == len(news_ed)
            and last_ids.get("tweets", 0) == len(twitter_ed)
        )
        if consistent:
            for name, folded in (
                ("news", len(news_ed)),
                ("tweets", len(twitter_ed)),
            ):
                stored = (
                    len(self.database[name]) if name in self.database else 0
                )
                if folded > stored:
                    consistent = False
                    break
        if not consistent:
            obs.counter("streaming.checkpoint.discarded").inc()
            return

        self.news_tm = list(news_tm)
        self.news_ed = list(news_ed)
        self.twitter_ed = list(twitter_ed)
        self.tweet_records = list(tweet_records)
        self._last_ids.update(last_ids)
        self._cycle = int(manifest.get("cycle", 0))

        # Replay the derived per-document state in arrival order — the
        # same fold the live run performed, so windows, indexes, and
        # segment counters come back identical.
        self._tm_seg.extend(self.news_tm)
        self._bg_news_ed.extend(doc.tokens for doc in self.news_ed)
        self._bg_twitter_ed.extend(doc.tokens for doc in self.twitter_ed)
        self._bg_news_tm.extend(self.news_tm)
        self.mabed_news.extend(self.news_ed)
        self.mabed_twitter.extend(self.twitter_ed)

        if "nmf_terms" in manifest and "nmf_W" in arrays:
            self._nmf_state = {
                "W": np.asarray(arrays["nmf_W"], dtype=np.float64),
                "H": np.asarray(arrays["nmf_H"], dtype=np.float64),
                "terms": [str(term) for term in manifest["nmf_terms"]],
            }
        spec = manifest.get("w2v")
        if spec is not None and "w2v_W_in" in arrays:
            model = Word2Vec(
                vector_size=self.config.embedding_dim,
                min_count=2,
                epochs=self.streaming.w2v_epochs,
                seed=self.config.seed,
                sg=True,
            )
            words = [str(word) for word in spec["words"]]
            model.index_to_word = words
            model.word_to_index = {w: i for i, w in enumerate(words)}
            model._raw_counts = Counter(
                {str(w): int(c) for w, c in dict(spec["raw_counts"]).items()}
            )
            model.word_counts = Counter(
                {w: model._raw_counts[w] for w in words}
            )
            model.W_in = np.asarray(arrays["w2v_W_in"], dtype=np.float64)
            model.W_out = np.asarray(arrays["w2v_W_out"], dtype=np.float64)
            model._sessions = int(spec.get("sessions", 0))
            model._build_noise_table()
            model._build_keep_probs()
            self._w2v = model
        obs.counter("streaming.checkpoint.restored").inc()
