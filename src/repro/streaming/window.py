"""Incremental time-slice window — streaming twin of ``events.timeslice``.

:class:`SliceWindow` maintains exactly the state a batch
:class:`~repro.events.timeslice.TimeSlicer` would build over the same
documents — slice totals, per-term slice counts, doc ids per slice —
but folds documents in as they arrive instead of re-scanning history.
Slice assignment goes through the shared
:func:`~repro.events.timeslice.slice_index` helper, so batch and
streaming agree bitwise on every record, including records exactly on a
slice edge.

Two cases force a full rebuild:

* the first fold (establishes the window anchor), and
* a **re-anchor**: a document older than the current window start
  arrives (possible when the ingest watermark allows lateness).  The
  window start is the corpus minimum, so every slice boundary moves and
  all derived counts are replayed from the retained document list — in
  arrival order, which is the order a batch oracle over the same store
  would see (store ids are monotonically assigned at append).

Parity note: the fold loop iterates ``set(doc.tokens)`` exactly like
``TimeSlicer.slice`` does.  Within one process, identical token lists
produce identical set-iteration order, so the ``term_counts`` dict is
built with the same key insertion order as the batch slicer — which
keeps every downstream ``dict``-order-dependent iteration (candidate
scans, term listings) bitwise comparable in the differential harness.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Dict, Iterable, List, Optional, Set

from ..events.timeslice import SlicedCorpus, TimestampedDocument, slice_index


class SliceWindow:
    """Grow-only sliced-corpus state with dirty-slice tracking."""

    def __init__(self, slice_width: timedelta) -> None:
        if slice_width <= timedelta(0):
            raise ValueError("slice_width must be positive")
        self.slice_width = slice_width
        self.start: Optional[datetime] = None
        self._end: Optional[datetime] = None
        self.n_slices = 0
        self.slice_totals: List[int] = []
        self.term_counts: Dict[str, Dict[int, int]] = {}
        self.doc_ids_by_slice: List[List[object]] = []
        self._docs: List[TimestampedDocument] = []
        self._dirty: Set[int] = set()

    def __len__(self) -> int:
        return len(self._docs)

    @property
    def documents(self) -> List[TimestampedDocument]:
        """Every folded document, in arrival order (do not mutate)."""
        return self._docs

    # -- folding -----------------------------------------------------------

    def extend(self, documents: Iterable[TimestampedDocument]) -> bool:
        """Fold *documents* into the window; True when it re-anchored.

        A re-anchor (a document before the current window start) moves
        every slice boundary, so callers must treat **all** cached
        per-slice state as invalid, not just the dirty set.
        """
        docs = list(documents)
        if not docs:
            return False
        self._docs.extend(docs)
        batch_min = min(d.created_at for d in docs)
        batch_max = max(d.created_at for d in docs)
        if self.start is None:
            self.start = batch_min
            self._end = batch_max
            self._rebuild()
            return False
        if batch_min < self.start:
            self.start = batch_min
            self._end = max(self._end, batch_max)
            self._rebuild()
            return True
        self._end = max(self._end, batch_max)
        self._grow_to(slice_index(self._end, self.start, self.slice_width) + 1)
        self._fold(docs)
        return False

    def _grow_to(self, n_slices: int) -> None:
        # Fresh empty slices are not marked dirty: every term series is
        # zero there, so no cached correlation value changes — only
        # window *clamping* can move, and the cache compares windows.
        while self.n_slices < n_slices:
            self.slice_totals.append(0)
            self.doc_ids_by_slice.append([])
            self.n_slices += 1

    def _fold(self, docs: List[TimestampedDocument]) -> None:
        # Mirrors TimeSlicer.slice's per-document loop exactly (shared
        # slice_index, same set(doc.tokens) iteration) — see module
        # docstring for why that matters.
        for doc in docs:
            index = slice_index(doc.created_at, self.start, self.slice_width)
            self.slice_totals[index] += 1
            self.doc_ids_by_slice[index].append(doc.doc_id)
            self._dirty.add(index)
            for term in set(doc.tokens):
                bucket = self.term_counts.get(term)
                if bucket is None:
                    bucket = self.term_counts[term] = {}
                bucket[index] = bucket.get(index, 0) + 1

    def _rebuild(self) -> None:
        self.n_slices = 0
        self.slice_totals = []
        self.term_counts = {}
        self.doc_ids_by_slice = []
        self._grow_to(slice_index(self._end, self.start, self.slice_width) + 1)
        self._dirty = set(range(self.n_slices))
        self._fold(self._docs)

    # -- consumption -------------------------------------------------------

    def consume_dirty(self) -> Set[int]:
        """Slice indexes changed since the last call; clears the set."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def as_sliced_corpus(self) -> SlicedCorpus:
        """The current window as a batch-identical :class:`SlicedCorpus`.

        Shares the live internal dicts/lists — valid until the next
        :meth:`extend`; detection runs between folds, never across one.
        """
        if not self._docs:
            raise ValueError("cannot slice an empty corpus")
        return SlicedCorpus(
            start=self.start,
            slice_width=self.slice_width,
            n_slices=self.n_slices,
            slice_totals=self.slice_totals,
            term_counts=self.term_counts,
            doc_ids_by_slice=self.doc_ids_by_slice,
        )
