"""Incremental MABED: per-cycle event detection in O(new data).

MABED's anomaly measure normalizes every term's series by the global
document total, so candidate magnitudes shift whenever *any* document
arrives — the candidate scan must rerun for exactness, but it is the
cheap, fully vectorized part.  The expensive part is per-candidate
related-word selection (co-occurrence ranking + Erdem correlation),
and its inputs are strictly local: the correlation reads only the
slices of the widened interval window, and the co-occurrence scan only
the documents inside the interval.  :class:`RelatedWordsCache`
therefore caches ``(related_words, support)`` per ``(main_word,
interval)`` together with the window it was computed over, and an entry
stays valid exactly while (a) no slice inside that window changed and
(b) the recomputed window equals the stored one (the right edge can
move when the corpus grows past a previous clamp).  Cached or
recomputed, the detected events are bitwise identical to a batch
detection over the same documents.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import obs
from ..events.event import Event
from ..events.mabed import MABED, _CorpusIndex
from ..events.timeslice import TimestampedDocument
from .window import SliceWindow

Interval = Tuple[int, int]


class RelatedWordsCache:
    """``(main_word, interval) -> (window, related_words, support)``."""

    def __init__(self) -> None:
        self._entries: Dict[
            Tuple[str, Interval],
            Tuple[Interval, List[Tuple[str, float]], int],
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, main_word: str, interval: Interval, window: Interval
    ) -> Optional[Tuple[List[Tuple[str, float]], int]]:
        """Cached (related, support), or None on miss/stale window."""
        entry = self._entries.get((main_word, interval))
        if entry is not None and entry[0] == window:
            obs.counter("streaming.related_cache.hits").inc()
            return entry[1], entry[2]
        obs.counter("streaming.related_cache.misses").inc()
        return None

    def store(
        self,
        main_word: str,
        interval: Interval,
        window: Interval,
        related: List[Tuple[str, float]],
        support: int,
    ) -> None:
        """Cache the related words computed for ``(main_word, interval)``."""
        self._entries[(main_word, interval)] = (window, related, support)

    def invalidate(self, dirty_slices: Set[int]) -> int:
        """Drop entries whose window contains a dirty slice; returns count."""
        if not dirty_slices or not self._entries:
            return 0
        dirty = sorted(dirty_slices)
        stale = []
        for key, (window, _related, _support) in self._entries.items():
            pos = bisect_left(dirty, window[0])
            if pos < len(dirty) and dirty[pos] <= window[1]:
                stale.append(key)
        for key in stale:
            del self._entries[key]
        obs.counter("streaming.related_cache.invalidated").inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        """Drop every cached entry (used on window re-anchor)."""
        self._entries.clear()


class IncrementalMABED:
    """A MABED detector over an incrementally folded corpus.

    Wraps one :class:`~repro.events.mabed.MABED` configuration with the
    three pieces of reusable state: the :class:`SliceWindow`, the
    inverted :class:`_CorpusIndex` (extended, never rebuilt), and the
    :class:`RelatedWordsCache`.
    """

    def __init__(self, detector: MABED) -> None:
        self.detector = detector
        self.window = SliceWindow(detector.slice_width)
        self.index = _CorpusIndex([])
        self.cache = RelatedWordsCache()

    def __len__(self) -> int:
        return len(self.window)

    def extend(self, documents: Iterable[TimestampedDocument]) -> None:
        """Fold new documents into the window and index."""
        docs = list(documents)
        if not docs:
            return
        re_anchored = self.window.extend(docs)
        self.index.extend(docs)
        if re_anchored:
            # Every slice boundary moved: cached intervals/windows no
            # longer name the same time ranges.  Flush wholesale.
            self.cache.clear()
            obs.counter("streaming.related_cache.reanchors").inc()

    def detect(self, n_events: int) -> List[Event]:
        """Detect over everything folded so far (batch-bitwise)."""
        if len(self.window) == 0:
            return []
        self.cache.invalidate(self.window.consume_dirty())
        sliced = self.window.as_sliced_corpus()
        with obs.span("streaming.mabed.detect") as det_span:
            events = self.detector.detect_on_sliced(
                sliced,
                self.window.documents,
                n_events,
                index=self.index,
                related_cache=self.cache,
            )
            det_span.annotate(
                n_documents=len(self.window),
                n_slices=sliced.n_slices,
                n_events=len(events),
                cache_entries=len(self.cache),
            )
        return events
