"""Time-series analytics over the generated corpora.

Small helpers for the examples and notebooks a downstream user would
write: per-topic volume curves, engagement-by-weekday profiles, and the
like/retweet correlation the paper's engagement discussion assumes.
"""

from __future__ import annotations

from collections import defaultdict
from datetime import datetime, timedelta
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def volume_series(
    timestamps: Sequence[datetime],
    bucket: timedelta = timedelta(days=1),
    start: Optional[datetime] = None,
    end: Optional[datetime] = None,
) -> Tuple[List[datetime], np.ndarray]:
    """Counts per time bucket; returns (bucket_starts, counts)."""
    if bucket <= timedelta(0):
        raise ValueError("bucket must be positive")
    stamps = sorted(timestamps)
    if not stamps:
        return [], np.zeros(0)
    start = start or stamps[0]
    end = end or stamps[-1]
    n_buckets = int((end - start) / bucket) + 1
    counts = np.zeros(n_buckets)
    for moment in stamps:
        index = int((moment - start) / bucket)
        if 0 <= index < n_buckets:
            counts[index] += 1
    starts = [start + i * bucket for i in range(n_buckets)]
    return starts, counts


def engagement_by_weekday(
    tweets: Iterable[dict], field: str = "likes"
) -> Dict[int, float]:
    """Mean engagement per weekday (0 = Monday), the Bentley-et-al. curve
    the metadata feature encodes."""
    buckets: Dict[int, List[float]] = defaultdict(list)
    for tweet in tweets:
        buckets[tweet["created_at"].weekday()].append(float(tweet[field]))
    return {
        day: float(np.mean(values)) for day, values in sorted(buckets.items())
    }


def like_retweet_correlation(tweets: Iterable[dict]) -> float:
    """Pearson correlation between likes and retweets across tweets."""
    likes, retweets = [], []
    for tweet in tweets:
        likes.append(float(tweet["likes"]))
        retweets.append(float(tweet["retweets"]))
    if len(likes) < 2:
        raise ValueError("need at least two tweets")
    matrix = np.corrcoef(likes, retweets)
    return float(matrix[0, 1])


def topic_share_series(
    documents: Iterable[dict],
    bucket: timedelta = timedelta(days=7),
) -> Dict[str, np.ndarray]:
    """Per-topic share of volume per bucket (uses ground-truth labels)."""
    docs = sorted(documents, key=lambda d: d["created_at"])
    if not docs:
        return {}
    start = docs[0]["created_at"]
    end = docs[-1]["created_at"]
    n_buckets = int((end - start) / bucket) + 1
    totals = np.zeros(n_buckets)
    per_topic: Dict[str, np.ndarray] = defaultdict(lambda: np.zeros(n_buckets))
    for doc in docs:
        index = int((doc["created_at"] - start) / bucket)
        totals[index] += 1
        per_topic[doc["topic"]][index] += 1
    safe_totals = np.maximum(totals, 1)
    return {topic: counts / safe_totals for topic, counts in per_topic.items()}
