"""Burst-recovery scoring: MABED output vs the world's planted bursts.

The synthetic world plants its ground truth — every topic's bursts are
known intervals with known vocabularies — so the event detector can be
scored like a retrieval system:

* a detected event *recovers* a planted burst when their time intervals
  overlap and the event's vocabulary hits the topic's keywords;
* recall  = recovered bursts / planted bursts,
* precision = detected events that recover some burst / all detected.

This is the evaluation the paper could not run (its crawl has no ground
truth); the reproduction uses it to validate the MABED implementation
beyond eyeballing Tables 4–5.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import List, Optional, Sequence, Tuple

from ..datagen.world import TopicSpec, WorldConfig
from ..events import Event


@dataclass(frozen=True)
class PlantedBurst:
    """One ground-truth burst: its topic, interval, and vocabulary."""

    topic: str
    start: datetime
    end: datetime
    keywords: Tuple[str, ...]

    def overlaps(self, event: Event) -> bool:
        return self.start <= event.end and event.start <= self.end


def planted_bursts(
    config: WorldConfig, medium: str = "twitter"
) -> List[PlantedBurst]:
    """All ground-truth bursts of the world for one medium."""
    if medium == "twitter":
        topics: Sequence[TopicSpec] = config.twitter_topics()
    elif medium == "news":
        topics = config.news_topics()
    else:
        raise ValueError("medium must be 'twitter' or 'news'")
    bursts: List[PlantedBurst] = []
    for topic in topics:
        for burst in topic.bursts:
            bursts.append(
                PlantedBurst(
                    topic=topic.name,
                    start=config.start + timedelta(days=burst.start_day),
                    end=config.start
                    + timedelta(days=burst.start_day + burst.duration_days),
                    keywords=tuple(topic.keywords),
                )
            )
    return bursts


def event_recovers_burst(
    event: Event,
    burst: PlantedBurst,
    min_keyword_hits: int = 2,
) -> bool:
    """Does *event* recover *burst*? (time overlap + vocabulary hits)."""
    if not burst.overlaps(event):
        return False
    vocabulary = set(event.vocabulary)
    hits = sum(1 for keyword in burst.keywords if keyword in vocabulary)
    return hits >= min_keyword_hits


@dataclass
class RecoveryReport:
    """Precision/recall of detected events against planted bursts."""

    recovered: List[PlantedBurst]
    missed: List[PlantedBurst]
    matched_events: int
    spurious_events: int

    @property
    def recall(self) -> float:
        """Fraction of planted bursts recovered by some detected event."""
        total = len(self.recovered) + len(self.missed)
        return len(self.recovered) / total if total else 0.0

    @property
    def precision(self) -> float:
        """Fraction of detected events that match a planted burst."""
        total = self.matched_events + self.spurious_events
        return self.matched_events / total if total else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def summary(self) -> str:
        return (
            f"bursts recovered {len(self.recovered)}/"
            f"{len(self.recovered) + len(self.missed)} (recall {self.recall:.2f}); "
            f"events matching {self.matched_events}/"
            f"{self.matched_events + self.spurious_events} "
            f"(precision {self.precision:.2f}); F1 {self.f1:.2f}"
        )


def score_burst_recovery(
    events: Sequence[Event],
    config: WorldConfig,
    medium: str = "twitter",
    min_keyword_hits: int = 2,
) -> RecoveryReport:
    """Score a detector's events against the world's planted bursts."""
    bursts = planted_bursts(config, medium)
    recovered: List[PlantedBurst] = []
    missed: List[PlantedBurst] = []
    for burst in bursts:
        if any(event_recovers_burst(e, burst, min_keyword_hits) for e in events):
            recovered.append(burst)
        else:
            missed.append(burst)
    matched_events = sum(
        1
        for e in events
        if any(event_recovers_burst(e, b, min_keyword_hits) for b in bursts)
    )
    return RecoveryReport(
        recovered=recovered,
        missed=missed,
        matched_events=matched_events,
        spurious_events=len(events) - matched_events,
    )
