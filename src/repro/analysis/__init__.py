"""Analytics over generated corpora and detector output: burst-recovery
scoring (MABED vs the world's planted ground truth) and time-series
helpers."""

from .burst_recovery import (
    PlantedBurst,
    RecoveryReport,
    event_recovers_burst,
    planted_bursts,
    score_burst_recovery,
)
from .timeseries import (
    engagement_by_weekday,
    like_retweet_correlation,
    topic_share_series,
    volume_series,
)

__all__ = [
    "PlantedBurst",
    "RecoveryReport",
    "planted_bursts",
    "event_recovers_burst",
    "score_burst_recovery",
    "volume_series",
    "engagement_by_weekday",
    "like_retweet_correlation",
    "topic_share_series",
]
