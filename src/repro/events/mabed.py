"""MABED — Mention-Anomaly-Based Event Detection (§3.3, §4.4).

Pipeline, following Guille & Favre (2014) and the paper's usage:

1. Partition the corpus into fixed-width time slices (60 min for news,
   30 min for tweets in the paper's experiments).
2. For every sufficiently frequent term, compute the mention-anomaly series
   and find the contiguous interval I = [a, b] maximizing the summed
   anomaly; the maximum is the event's magnitude of impact.
3. Rank candidate events by magnitude; greedily keep the top *k*, merging
   duplicates (overlapping interval + same main word, or high vocabulary
   overlap).
4. For each kept event, select related words: candidate terms co-occurring
   with the main word inside I, weighted by the first-order
   auto-correlation measure (Eqs 9–10); keep those with weight above
   *theta*, at most *p* words.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from datetime import timedelta
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..parallel import parallel_map
import numpy as np

from .anomaly import anomaly_series, candidate_weights, max_anomaly_interval
from .event import Event
from .timeslice import SlicedCorpus, TimeSlicer, TimestampedDocument


class MABED:
    """Configurable MABED detector.

    Parameters
    ----------
    slice_width:
        Time-slice width (paper: 60 min news, 30 min tweets).
    min_term_support:
        Minimum number of records a term must appear in to be considered
        a candidate main word (filters noise and spam, §3.3).
    n_related_words:
        p — maximum related words per event.
    theta:
        Minimum Eq-9 weight for a related word (in [0, 1]).
    sigma:
        Vocabulary-overlap ratio above which two overlapping events are
        considered duplicates and merged.
    stopword_filter:
        Optional predicate; terms matching it are never main words.
    workers:
        Worker count for the per-term candidate scan (None defers to
        ``REPRO_WORKERS``; results are order-stable either way).
    """

    def __init__(
        self,
        slice_width: timedelta,
        min_term_support: int = 10,
        n_related_words: int = 10,
        theta: float = 0.6,
        sigma: float = 0.5,
        max_support_ratio: float = 0.25,
        stopword_filter=None,
        workers: Optional[int] = None,
    ) -> None:
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must lie in [0, 1]")
        if not 0.0 <= sigma <= 1.0:
            raise ValueError("sigma must lie in [0, 1]")
        if not 0.0 < max_support_ratio <= 1.0:
            raise ValueError("max_support_ratio must lie in (0, 1]")
        self.slice_width = slice_width
        self.min_term_support = min_term_support
        self.n_related_words = n_related_words
        self.theta = theta
        self.sigma = sigma
        self.max_support_ratio = max_support_ratio
        self.stopword_filter = stopword_filter
        self.workers = workers

    # -- public API -----------------------------------------------------------

    def detect(
        self,
        documents: Iterable[TimestampedDocument],
        n_events: int,
    ) -> List[Event]:
        """Detect the top *n_events* events in *documents*."""
        with obs.span("events.mabed.detect") as detect_span:
            docs = list(documents)
            if not docs:
                return []
            with obs.span("events.mabed.slice"):
                sliced = TimeSlicer(self.slice_width).slice(docs)
            events = self.detect_on_sliced(sliced, docs, n_events)
            detect_span.annotate(
                n_documents=len(docs),
                n_slices=sliced.n_slices,
                n_events=len(events),
            )
        return events

    def detect_on_sliced(
        self,
        sliced: SlicedCorpus,
        documents: Sequence[TimestampedDocument],
        n_events: int,
        index: Optional["_CorpusIndex"] = None,
        related_cache=None,
    ) -> List[Event]:
        """Detection over an already-sliced corpus (reusable across runs).

        Candidates are processed in decreasing magnitude order; each gets
        its related words computed, then is checked for redundancy against
        already-kept events (overlapping interval + shared vocabulary) and
        either merged away or kept, until *n_events* are selected — the
        same greedy scheme as pyMABED.

        The streaming pipeline passes a pre-built (incrementally
        extended) *index* and a *related_cache* carrying
        ``lookup(main_word, interval, window)`` /
        ``store(main_word, interval, window, related, support)`` — the
        per-candidate related-word selection dominates detection cost
        and its inputs only change when a slice inside the correlation
        window changes.
        """
        with obs.span("events.mabed.candidates"):
            candidates = self._candidate_events(sliced)
        obs.counter("events.mabed.candidates").inc(len(candidates))
        if index is None:
            with obs.span("events.mabed.index"):
                index = _CorpusIndex(documents)
        events: List[Event] = []
        with obs.span("events.mabed.selection") as selection_span:
            considered = 0
            for main_word, interval, magnitude in candidates:
                if len(events) >= n_events:
                    break
                considered += 1
                window = self._correlation_window(sliced, interval)
                cached = (
                    related_cache.lookup(main_word, interval, window)
                    if related_cache is not None
                    else None
                )
                if cached is not None:
                    related, support = cached
                else:
                    related = self._related_words(sliced, index, main_word, interval)
                    support = index.support(
                        main_word,
                        sliced.slice_start(interval[0]),
                        sliced.slice_end(interval[1]),
                    )
                    if related_cache is not None:
                        related_cache.store(
                            main_word, interval, window, related, support
                        )
                candidate = Event(
                    main_word=main_word,
                    related_words=related,
                    start=sliced.slice_start(interval[0]),
                    end=sliced.slice_end(interval[1]),
                    magnitude=magnitude,
                    slice_interval=interval,
                    support=support,
                )
                if any(self._redundant(candidate, kept) for kept in events):
                    continue
                events.append(candidate)
            selection_span.annotate(considered=considered, kept=len(events))
        obs.counter("events.mabed.events_kept").inc(len(events))
        return events

    def _redundant(self, candidate: Event, kept: Event) -> bool:
        """Is *candidate* a duplicate of an already-kept event?

        Duplicates overlap in time and share vocabulary: the candidate's
        main word appears in the kept event's term set (or vice versa), or
        their keyword Jaccard similarity exceeds *sigma*.
        """
        if not self._intervals_overlap(candidate.slice_interval, kept.slice_interval):
            return False
        kept_vocab = set(kept.vocabulary)
        cand_vocab = set(candidate.vocabulary)
        if candidate.main_word in kept_vocab or kept.main_word in cand_vocab:
            return True
        union = kept_vocab | cand_vocab
        if not union:
            return False
        jaccard = len(kept_vocab & cand_vocab) / len(union)
        return jaccard >= self.sigma

    # -- stage 1+2: candidate events --------------------------------------------

    def _candidate_events(
        self, sliced: SlicedCorpus
    ) -> List[Tuple[str, Tuple[int, int], float]]:
        """(main_word, interval, magnitude) for every eligible term.

        The per-term anomaly scans are independent, so they fan out over
        :func:`repro.parallel.parallel_map`, which preserves input order
        — the stable magnitude sort therefore breaks ties exactly as the
        sequential scan did, whatever the worker count.
        """
        max_support = self.max_support_ratio * sliced.total_documents
        eligible = [
            term
            for term in sliced.terms_with_min_support(self.min_term_support)
            if not (self.stopword_filter is not None and self.stopword_filter(term))
            # Terms present in a large share of all records are background
            # vocabulary, not events (MABED's spam/noise immunity, §3.3).
            and sliced.term_total(term) <= max_support
        ]

        def scan(term: str) -> Optional[Tuple[str, Tuple[int, int], float]]:
            series = sliced.term_series(term)
            anomaly = anomaly_series(series, sliced.slice_totals)
            a, b, magnitude = max_anomaly_interval(anomaly)
            if magnitude <= 0:
                return None
            return (term, (a, b), magnitude)

        scanned = parallel_map(
            scan,
            eligible,
            workers=self.workers,
            allow_process=False,
            span_name="events.mabed.candidate_scan",
        )
        out = [item for item in scanned if item is not None]
        out.sort(key=lambda item: -item[2])
        return out

    @staticmethod
    def _intervals_overlap(x: Tuple[int, int], y: Tuple[int, int]) -> bool:
        return x[0] <= y[1] and y[0] <= x[1]

    # -- stage 4: related-word selection ---------------------------------------------

    @staticmethod
    def _correlation_window(
        sliced: SlicedCorpus, interval: Tuple[int, int]
    ) -> Tuple[int, int]:
        """The slice range related-word correlation actually reads.

        The interval widened by one slice per side: the burst's rise and
        fall are where co-movement is measurable (a perfectly flat
        plateau has zero variance and carries no signal).  Cache
        invalidation keys off this window — a cached entry is stale iff
        a slice inside it changed, or the window itself moved (e.g. the
        corpus grew past a previously clamped right edge).
        """
        return (max(0, interval[0] - 1), min(sliced.n_slices - 1, interval[1] + 1))

    def _related_words(
        self,
        sliced: SlicedCorpus,
        index: "_CorpusIndex",
        main_word: str,
        interval: Tuple[int, int],
        max_candidates: int = 50,
    ) -> List[Tuple[str, float]]:
        start = sliced.slice_start(interval[0])
        end = sliced.slice_end(interval[1])
        cooccurring = index.cooccurring_terms(
            main_word, start, end, max_candidates * 3
        )
        if self.stopword_filter is not None:
            cooccurring = [t for t in cooccurring if not self.stopword_filter(t)]
        main_series = sliced.term_series(main_word)
        window = self._correlation_window(sliced, interval)
        terms = cooccurring[:max_candidates]
        if not terms:
            return []
        # One vectorized Eq-9 pass over all candidates — this loop runs
        # for every kept event and dominates detection cost.
        matrix = np.stack([sliced.term_series(term) for term in terms])
        weights = candidate_weights(main_series, matrix, window)
        weighted = [
            (term, float(weight))
            for term, weight in zip(terms, weights)
            if weight > self.theta
        ]
        weighted.sort(key=lambda item: -item[1])
        return weighted[: self.n_related_words]


class _CorpusIndex:
    """Inverted index over a document list for MABED's per-event scans.

    Without this, related-word selection re-scans the entire corpus for
    every candidate event — quadratic once the Twitter corpus reaches
    benchmark scale.
    """

    def __init__(self, documents: Sequence[TimestampedDocument]) -> None:
        self._docs: List[TimestampedDocument] = []
        self._token_sets: List[frozenset] = []
        self._postings: Dict[str, List[int]] = {}
        self.extend(documents)

    def extend(self, documents: Sequence[TimestampedDocument]) -> None:
        """Append *documents*, updating postings incrementally.

        Posting lists stay in append order, so an index grown across
        streaming cycles is byte-identical to one built over the full
        document list at once (documents arrive in the same order).
        """
        base = len(self._docs)
        new_docs = list(documents)
        self._docs.extend(new_docs)
        new_sets = [frozenset(d.tokens) for d in new_docs]
        self._token_sets.extend(new_sets)
        postings = defaultdict(list)
        for i, tokens in enumerate(new_sets):
            for term in tokens:
                postings[term].append(base + i)
        for term, ids in postings.items():
            existing = self._postings.get(term)
            if existing is None:
                self._postings[term] = ids
            else:
                existing.extend(ids)

    def __len__(self) -> int:
        return len(self._docs)

    def _doc_ids_in(self, term: str, start, end) -> List[int]:
        return [
            i
            for i in self._postings.get(term, ())
            if start <= self._docs[i].created_at < end
        ]

    def support(self, term: str, start, end) -> int:
        """Records containing *term* inside [start, end)."""
        return len(self._doc_ids_in(term, start, end))

    def cooccurring_terms(
        self, main_word: str, start, end, limit: int
    ) -> List[str]:
        """Most frequent co-occurring terms with *main_word* in the window.

        Ties are broken alphabetically — ``Counter.most_common`` alone
        inherits set-iteration order, which varies with the interpreter's
        hash seed and would make event vocabularies differ across runs.
        """
        counts: Counter = Counter()
        for i in self._doc_ids_in(main_word, start, end):
            counts.update(self._token_sets[i])
        counts.pop(main_word, None)
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [term for term, _count in ranked[:limit]]


def detect_events(
    documents: Iterable[TimestampedDocument],
    n_events: int,
    slice_minutes: int = 30,
    min_term_support: int = 10,
    theta: float = 0.6,
    n_related_words: int = 10,
    stopword_filter=None,
) -> List[Event]:
    """One-call MABED, mirroring the paper's usage (§5.3–§5.4)."""
    detector = MABED(
        slice_width=timedelta(minutes=slice_minutes),
        min_term_support=min_term_support,
        theta=theta,
        n_related_words=n_related_words,
        stopword_filter=stopword_filter,
    )
    return detector.detect(documents, n_events)
