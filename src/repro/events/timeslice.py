"""Time slicing: partition timestamped records into fixed-width slices.

§5.3–§5.4: the paper partitions the news corpus into 60-minute slices and
the Twitter corpus into 30-minute slices before running MABED.  A
:class:`SlicedCorpus` carries, per slice, the total record count and the
per-term record counts N_t^i that the anomaly measure consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, Iterable, List, Sequence

import numpy as np


def slice_index(moment: datetime, start: datetime, slice_width: timedelta) -> int:
    """Exact index of the slice containing *moment* (half-open slices).

    Slice *i* covers ``[start + i*width, start + (i+1)*width)``: a record
    landing exactly on a slice edge opens the *next* slice.  Computed
    with integer floor division on timedeltas (microsecond-exact), never
    float division — ``int((moment - start) / width)`` is correctly
    *rounded*, so once the offset outgrows float precision a record one
    microsecond before an edge could round up into the wrong slice, and
    negative offsets would truncate toward zero instead of flooring.
    Both batch slicing and the streaming window must use this helper so
    they agree bitwise on every assignment.
    """
    return (moment - start) // slice_width


@dataclass
class TimestampedDocument:
    """A tokenized record with its creation time (tweet or article)."""

    tokens: Sequence[str]
    created_at: datetime
    doc_id: object = None


class SlicedCorpus:
    """A corpus partitioned into contiguous, fixed-width time slices."""

    def __init__(
        self,
        start: datetime,
        slice_width: timedelta,
        n_slices: int,
        slice_totals: List[int],
        term_counts: Dict[str, Dict[int, int]],
        doc_ids_by_slice: List[List[object]],
    ) -> None:
        self.start = start
        self.slice_width = slice_width
        self.n_slices = n_slices
        self.slice_totals = slice_totals
        self._term_counts = term_counts
        self.doc_ids_by_slice = doc_ids_by_slice
        self.total_documents = sum(slice_totals)
        self._series_memo: Dict[str, np.ndarray] = {}

    # -- time mapping ------------------------------------------------------

    def slice_start(self, index: int) -> datetime:
        """Wall-clock start of slice *index*."""
        return self.start + index * self.slice_width

    def slice_end(self, index: int) -> datetime:
        """Wall-clock end of slice *index* (exclusive)."""
        return self.start + (index + 1) * self.slice_width

    def slice_of(self, moment: datetime) -> int:
        """Index of the slice containing *moment* (clamped to range)."""
        index = slice_index(moment, self.start, self.slice_width)
        return max(0, min(self.n_slices - 1, index))

    # -- counts --------------------------------------------------------------

    def term_series(self, term: str) -> np.ndarray:
        """N_t^i for every slice i — the term's mention time series.

        Memoized per instance (treat the result as read-only): MABED's
        related-word stage requests the same popular terms' series for
        event after event, and with thousands of slices the rebuild
        dominates detection.  A corpus is immutable once sliced — the
        streaming window hands out a *fresh* ``SlicedCorpus`` per cycle
        — so the memo can never serve a stale series.
        """
        cached = self._series_memo.get(term)
        if cached is not None:
            return cached
        counts = self._term_counts.get(term, {})
        series = np.zeros(self.n_slices, dtype=np.float64)
        if counts:
            series[np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))] = (
                np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
            )
        self._series_memo[term] = series
        return series

    def term_total(self, term: str) -> int:
        """Total records containing *term* across all slices."""
        return sum(self._term_counts.get(term, {}).values())

    def terms(self) -> List[str]:
        """All terms observed in the corpus."""
        return list(self._term_counts.keys())

    def terms_with_min_support(self, min_total: int) -> List[str]:
        """Terms appearing in at least *min_total* records."""
        return [
            term
            for term, counts in self._term_counts.items()
            if sum(counts.values()) >= min_total
        ]


class TimeSlicer:
    """Builds a :class:`SlicedCorpus` from timestamped documents.

    >>> slicer = TimeSlicer(timedelta(minutes=30))
    >>> corpus = slicer.slice(docs)          # doctest: +SKIP
    """

    def __init__(self, slice_width: timedelta) -> None:
        if slice_width <= timedelta(0):
            raise ValueError("slice_width must be positive")
        self.slice_width = slice_width

    def slice(self, documents: Iterable[TimestampedDocument]) -> SlicedCorpus:
        """Partition *documents*; raises ValueError on an empty corpus."""
        docs = list(documents)
        if not docs:
            raise ValueError("cannot slice an empty corpus")
        start = min(d.created_at for d in docs)
        end = max(d.created_at for d in docs)
        n_slices = slice_index(end, start, self.slice_width) + 1

        slice_totals = [0] * n_slices
        term_counts: Dict[str, Dict[int, int]] = defaultdict(dict)
        doc_ids_by_slice: List[List[object]] = [[] for _ in range(n_slices)]

        for doc in docs:
            index = slice_index(doc.created_at, start, self.slice_width)
            slice_totals[index] += 1
            doc_ids_by_slice[index].append(doc.doc_id)
            for term in set(doc.tokens):
                bucket = term_counts[term]
                bucket[index] = bucket.get(index, 0) + 1

        return SlicedCorpus(
            start=start,
            slice_width=self.slice_width,
            n_slices=n_slices,
            slice_totals=slice_totals,
            term_counts=dict(term_counts),
            doc_ids_by_slice=doc_ids_by_slice,
        )
