"""Event detection (§3.3, §4.4) — MABED over time-sliced corpora."""

from .anomaly import (
    anomaly_series,
    candidate_weight,
    erdem_correlation,
    expected_counts,
    max_anomaly_interval,
)
from .event import Event
from .mabed import MABED, detect_events
from .timeslice import SlicedCorpus, TimeSlicer, TimestampedDocument, slice_index

__all__ = [
    "Event",
    "MABED",
    "detect_events",
    "TimeSlicer",
    "TimestampedDocument",
    "SlicedCorpus",
    "slice_index",
    "anomaly_series",
    "expected_counts",
    "max_anomaly_interval",
    "erdem_correlation",
    "candidate_weight",
]
