"""Mention-anomaly measure and maximum-anomaly interval detection.

The heart of MABED (§3.3): for each term t and slice i, the anomaly is the
observed mention count N_t^i minus the expected count under a homogeneous
spreading of the term's mentions across the corpus timeline,

    anomaly(t, i) = N_t^i - E[N_t^i],   E[N_t^i] = total_t * (V_i / V),

where V_i is the slice's total record volume and V the corpus volume.  The
event interval I = [a, b] is the contiguous slice range maximizing the
summed anomaly — a maximum-contiguous-subsequence problem solved with
Kadane's algorithm.  The maximum value is the event's magnitude of impact.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def expected_counts(
    term_total: int, slice_totals: Sequence[int]
) -> np.ndarray:
    """E[N_t^i] for every slice under homogeneous term spreading."""
    totals = np.asarray(slice_totals, dtype=np.float64)
    volume = totals.sum()
    if volume == 0:
        return np.zeros_like(totals)
    return term_total * totals / volume


def anomaly_series(
    term_series: Sequence[int], slice_totals: Sequence[int]
) -> np.ndarray:
    """anomaly(t, i) = N_t^i - E[N_t^i] for every slice i."""
    observed = np.asarray(term_series, dtype=np.float64)
    return observed - expected_counts(int(observed.sum()), slice_totals)


def max_anomaly_interval(anomaly: Sequence[float]) -> Tuple[int, int, float]:
    """Contiguous interval [a, b] maximizing the summed anomaly (Kadane).

    Returns ``(a, b, magnitude)`` with a <= b (slice indexes, inclusive).
    When every anomaly is non-positive the single largest slice is
    returned with its (non-positive) value, so callers can filter on
    magnitude > 0.
    """
    values = np.asarray(anomaly, dtype=np.float64)
    if values.size == 0:
        raise ValueError("anomaly series is empty")
    # Vectorized Kadane via prefix sums: the best interval ending at b has
    # sum csum[b+1] - min(csum[0..b]); the global optimum is the max over b.
    csum = np.concatenate(([0.0], np.cumsum(values)))
    min_prefix = np.minimum.accumulate(csum[:-1])
    gains = csum[1:] - min_prefix
    b = int(np.argmax(gains))
    a = int(np.argmin(csum[: b + 1]))
    return a, b, float(gains[b])


def erdem_correlation(
    main_series: Sequence[int],
    candidate_series: Sequence[int],
    interval: Tuple[int, int],
) -> float:
    """First-order auto-correlation coefficient rho (Eq 10).

    Measures how the *changes* of the candidate word's time series follow
    the changes of the main word's series over I = [a, b]:

        rho = sum_{i=a+1}^{b} A_{t,t'} / ((b - a - 1) * A_t * A_t')

    with A_{t,t'} = (N_t^i - N_t^{i-1})(N_t'^i - N_t'^{i-1}) and A_t, A_t'
    the RMS slice-to-slice changes of each series.  Degenerate cases (flat
    series, interval shorter than 3 slices) return 0 — no measurable
    co-movement.

    Note: Eq 10 in the paper prints the second difference as
    ``N_{t'}^i - N_t^i``; we follow the cited Erdem et al. (2014)
    coefficient (and pyMABED), where both differences are first-order
    changes of their own series — the printed form is a typo, as the
    normalization by A_t' (RMS of the candidate's own changes) confirms.
    """
    a, b = interval
    if b - a < 2:
        return 0.0
    main = np.asarray(main_series, dtype=np.float64)
    cand = np.asarray(candidate_series, dtype=np.float64)
    d_main = main[a + 1: b + 1] - main[a: b]
    d_cand = cand[a + 1: b + 1] - cand[a: b]
    n = b - a - 1
    a_main = np.sqrt(np.sum(d_main * d_main) / n)
    a_cand = np.sqrt(np.sum(d_cand * d_cand) / n)
    if a_main == 0.0 or a_cand == 0.0:
        return 0.0
    rho = np.sum(d_main * d_cand) / (n * a_main * a_cand)
    # Guard numerical drift outside [-1, 1].
    return float(np.clip(rho, -1.0, 1.0))


def candidate_weight(
    main_series: Sequence[int],
    candidate_series: Sequence[int],
    interval: Tuple[int, int],
) -> float:
    """w_{t'} = (rho + 1) / 2 ∈ [0, 1] (Eq 9)."""
    return (erdem_correlation(main_series, candidate_series, interval) + 1.0) / 2.0


def candidate_weights(
    main_series: Sequence[int],
    candidate_matrix: np.ndarray,
    interval: Tuple[int, int],
) -> np.ndarray:
    """Eq-9 weights of many candidates against one main word, vectorized.

    ``candidate_matrix`` holds one candidate series per row.  Every
    arithmetic step mirrors :func:`erdem_correlation` element for
    element (same operation order, same dtype), so each row's weight is
    bitwise identical to the scalar call — the related-word selection
    loop is the hot spot of MABED's per-event stage, and replacing its
    per-candidate Python calls with one matrix pass must not perturb
    which words clear the theta threshold.
    """
    n_candidates = candidate_matrix.shape[0]
    a, b = interval
    if n_candidates == 0:
        return np.zeros(0, dtype=np.float64)
    if b - a < 2:
        return np.full(n_candidates, 0.5, dtype=np.float64)
    main = np.asarray(main_series, dtype=np.float64)
    cands = np.ascontiguousarray(candidate_matrix, dtype=np.float64)
    d_main = main[a + 1: b + 1] - main[a: b]
    d_cands = cands[:, a + 1: b + 1] - cands[:, a: b]
    n = b - a - 1
    a_main = np.sqrt(np.sum(d_main * d_main) / n)
    a_cands = np.sqrt(np.sum(d_cands * d_cands, axis=1) / n)
    if a_main == 0.0:
        return np.full(n_candidates, 0.5, dtype=np.float64)
    flat = a_cands == 0.0
    denom = n * a_main * np.where(flat, 1.0, a_cands)
    rho = np.sum(d_cands * d_main[np.newaxis, :], axis=1) / denom
    rho = np.where(flat, 0.0, np.clip(rho, -1.0, 1.0))
    return (rho + 1.0) / 2.0
