"""Event data model for MABED output.

§4.4: "MABED detects events defined by three characteristics: (1) a set of
main words, (2) a set of related words, and (3) the period of time when the
topic is of interest."  Tables 4 and 5 present each event as a label (main
word), keywords, and a start/end date; :class:`Event` carries exactly that
plus the magnitude-of-impact score MABED ranks by.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import List, Tuple


@dataclass
class Event:
    """One detected event.

    Attributes
    ----------
    main_word:
        The bursty term anchoring the event (the "Label" column of
        Tables 4–5).
    related_words:
        (word, weight) pairs; weights come from Eq 9 and lie in [0, 1].
    start / end:
        The interval I = [a, b] maximizing the anomaly, as datetimes.
    magnitude:
        Sum of the positive anomaly over I — MABED's ranking score.
    slice_interval:
        (a, b) as time-slice indexes, kept for debugging/inspection.
    """

    main_word: str
    related_words: List[Tuple[str, float]]
    start: datetime
    end: datetime
    magnitude: float
    slice_interval: Tuple[int, int] = (0, 0)
    support: int = 0  # number of records mentioning the main word inside I

    @property
    def keywords(self) -> List[str]:
        """Related words without weights (Tables 4–5 presentation)."""
        return [word for word, _weight in self.related_words]

    @property
    def vocabulary(self) -> List[str]:
        """Main word plus related words — the event's full term set."""
        return [self.main_word] + self.keywords

    @property
    def duration_seconds(self) -> float:
        """Event span from start to end, in seconds."""
        return (self.end - self.start).total_seconds()

    def overlaps(self, other: "Event") -> bool:
        """True when the two events' time intervals intersect."""
        return self.start <= other.end and other.start <= self.end

    def describe(self) -> str:
        """One-line description in the style of the paper's tables."""
        kw = " ".join(self.keywords[:8])
        return (
            f"{self.start:%Y-%m-%d %H:%M:%S} — {self.end:%Y-%m-%d %H:%M:%S} "
            f"[{self.main_word}] {kw}"
        )
