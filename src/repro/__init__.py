"""repro — reproduction of "A Deep Learning Architecture for Audience
Interest Prediction of News Topic on Social Media" (Truică et al.,
EDBT 2021).

Subpackages
-----------
``repro.core``
    The paper's pipeline: trending-topic extraction, news↔Twitter event
    correlation, feature creation, and audience-interest prediction.
``repro.store``
    Embedded document store (MongoDB substitute).
``repro.text``
    Preprocessing substrate (tokenizer, lemmatizer, NER, stopwords).
``repro.weighting``
    TF/IDF/TFIDF/TFIDF_N and document-term matrices (Eqs 1–5).
``repro.topics``
    NMF (Eqs 6–8) plus LDA/LSA baselines and coherence metrics.
``repro.events``
    MABED event detection (Eqs 9–10).
``repro.embeddings``
    Word2Vec, pretrained-embedding stand-in, Doc2Vec variants, cosine.
``repro.nn``
    Numpy deep-learning framework (layers, Eqs 12–17, Figures 2–3).
``repro.datagen``
    Synthetic news+Twitter world generator (the data substitute).
``repro.datasets``
    Table-2 encodings, metadata vector, the A1..D2 datasets.
``repro.parallel``
    Seeded, order-preserving thread/process maps for the fan-out stages.
``repro.serving``
    Online inference: model registry with hot-swap, micro-batching
    scheduler, feature cache, stdlib HTTP endpoints (``repro serve``).

Quickstart
----------
>>> from repro import build_world, NewsDiffusionPipeline, small_config
>>> world = build_world()                          # doctest: +SKIP
>>> result = NewsDiffusionPipeline(small_config()).run(world)  # doctest: +SKIP
>>> print(result.summary())                        # doctest: +SKIP
"""

from .core import (
    AudienceInterestPredictor,
    NewsDiffusionPipeline,
    PipelineConfig,
    PipelineResult,
    small_config,
)
from .datagen import World, WorldConfig, build_world
from .parallel import parallel_map

__version__ = "1.0.0"

__all__ = [
    "parallel_map",
    "NewsDiffusionPipeline",
    "PipelineResult",
    "PipelineConfig",
    "small_config",
    "AudienceInterestPredictor",
    "World",
    "WorldConfig",
    "build_world",
    "__version__",
]
