"""Sequential model: the Keras-like training loop of the reproduction.

Ties layers, loss, and optimizer together with mini-batch training, early
stopping, validation tracking, and epoch timing (the Table-10 scalability
study reports milliseconds per epoch).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from .callbacks import EarlyStopping, History
from .contracts import check_fit, check_predict
from .layers import Layer
from .losses import Loss, get_loss
from .metrics import accuracy
from .optimizers import Optimizer, get_optimizer


class Sequential:
    """A stack of layers trained end-to-end.

    >>> model = Sequential([Dense(16, activation="relu"),
    ...                     Dense(3, activation="softmax")])
    >>> model.compile(optimizer=SGD(0.5), loss="categorical_crossentropy")
    >>> model.fit(X, Y, epochs=100, batch_size=32)      # doctest: +SKIP
    """

    def __init__(self, layers: Optional[Sequence[Layer]] = None, seed: int = 0) -> None:
        self.layers: List[Layer] = list(layers) if layers else []
        self.seed = seed
        self.loss: Optional[Loss] = None
        self.optimizer: Optional[Optimizer] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        return self

    # -- lifecycle -----------------------------------------------------------

    def compile(self, optimizer="sgd", loss="categorical_crossentropy") -> "Sequential":
        """Attach the optimizer and loss (names or instances)."""
        self.optimizer = get_optimizer(optimizer)
        self.loss = get_loss(loss)
        return self

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate every layer's parameters for per-sample *input_shape*."""
        rng = np.random.default_rng(self.seed)
        shape = tuple(input_shape)
        for layer in self.layers:
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self._input_shape = tuple(input_shape)

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.layers)

    # -- forward / backward ------------------------------------------------------

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a per-sample *input_shape*."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = tuple(layer.output_shape(shape))
        return shape

    @check_predict
    def predict(
        self,
        X: np.ndarray,
        batch_size: int = 1024,
        pad_to: Optional[int] = None,
    ) -> np.ndarray:
        """Forward pass in inference mode (dropout disabled).

        With ``pad_to=m`` every forward pass runs on exactly *m* rows:
        each chunk of up to *m* samples is padded (repeating its last
        row) to *m* before the layer stack and trimmed afterwards.  BLAS
        matmul kernels differ by row count, so the same sample can
        produce ULP-different outputs depending on how many neighbours
        share its batch; a fixed shape makes ``predict`` bitwise
        invariant to request batching — the serving layer relies on this
        for online/offline parity (``batch_size`` is forced to *m*).
        """
        X = np.asarray(X, dtype=np.float64)
        obs.counter("nn.predict_calls").inc()
        obs.counter("nn.predict_rows").inc(len(X))
        if pad_to is not None:
            if pad_to < 1:
                raise ValueError("pad_to must be >= 1")
            batch_size = pad_to
        if len(X) == 0:
            # Empty input: no forward pass, but the output must still
            # carry the model's per-sample shape (e.g. (0, n_classes))
            # so downstream concatenation/argmax code stays total.
            return np.zeros((0,) + self.output_shape(X.shape[1:]))
        outputs = []
        for start in range(0, len(X), batch_size):
            batch = X[start:start + batch_size]
            n_rows = len(batch)
            if pad_to is not None and n_rows < pad_to:
                batch = np.concatenate(
                    [batch, np.repeat(batch[-1:], pad_to - n_rows, axis=0)]
                )
            for layer in self.layers:
                batch = layer.forward(batch, training=False)
            outputs.append(batch[:n_rows])
        return np.concatenate(outputs, axis=0)

    def predict_classes(self, X: np.ndarray) -> np.ndarray:
        """Argmax class labels."""
        return np.argmax(self.predict(X), axis=1)

    def _forward(self, X: np.ndarray) -> np.ndarray:
        out = X
        for layer in self.layers:
            out = layer.forward(out, training=True)
        return out

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def train_on_batch(self, X: np.ndarray, Y: np.ndarray) -> float:
        """One optimization step on a batch; returns the batch loss."""
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("model not compiled")
        obs.counter("nn.train_batches").inc()
        predicted = self._forward(X)
        loss_value = self.loss.value(predicted, Y)
        self._backward(self.loss.gradient(predicted, Y))
        for layer in self.layers:
            params = layer.parameters()
            if params:
                self.optimizer.step(params)
        return loss_value

    # -- fit ----------------------------------------------------------------------

    @check_fit
    def fit(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        early_stopping: Optional[EarlyStopping] = None,
        shuffle: bool = True,
        verbose: bool = False,
        track_accuracy: bool = True,
    ) -> History:
        """Mini-batch training with optional validation and early stopping.

        The returned :class:`History` records per-epoch ``loss``,
        ``accuracy``, ``epoch_ms``, and (when validation data is given)
        ``val_loss`` / ``val_accuracy``.  Pass ``track_accuracy=False``
        to skip the per-epoch full-train accuracy pass — the scalability
        benchmarks do this so ``epoch_ms`` measures training alone.
        """
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if len(X) != len(Y):
            raise ValueError("X and Y lengths differ")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self._input_shape is None:
            self.build(X.shape[1:])

        rng = np.random.default_rng(self.seed + 7)
        history = History()
        indices = np.arange(len(X))
        with obs.span("nn.fit") as fit_span:
            for epoch in range(epochs):
                started = time.perf_counter()
                if shuffle:
                    rng.shuffle(indices)
                epoch_loss = 0.0
                n_batches = 0
                for start in range(0, len(X), batch_size):
                    batch_idx = indices[start:start + batch_size]
                    epoch_loss += self.train_on_batch(X[batch_idx], Y[batch_idx])
                    n_batches += 1
                elapsed_ms = (time.perf_counter() - started) * 1000.0

                record = {
                    "loss": epoch_loss / max(n_batches, 1),
                    "epoch_ms": elapsed_ms,
                }
                if track_accuracy:
                    record["accuracy"] = accuracy(Y, self.predict(X))
                if validation_data is not None:
                    vx, vy = validation_data
                    vp = self.predict(np.asarray(vx, dtype=np.float64))
                    record["val_loss"] = self.loss.value(vp, np.asarray(vy, dtype=np.float64))
                    record["val_accuracy"] = accuracy(vy, vp)
                history.record(**record)
                if verbose:
                    msg = ", ".join(f"{k}={v:.4f}" for k, v in record.items())
                    print(f"epoch {epoch + 1}/{epochs}: {msg}")
                if early_stopping is not None and early_stopping.update(history):
                    break
            fit_span.annotate(
                epochs=history.epochs,
                samples=len(X),
                batch_size=batch_size,
                parameters=self.num_parameters,
                final_loss=history.last("loss"),
            )
        return history

    def evaluate(self, X: np.ndarray, Y: np.ndarray) -> Tuple[float, float]:
        """(loss, accuracy) on a dataset."""
        if self.loss is None:
            raise RuntimeError("model not compiled")
        predicted = self.predict(np.asarray(X, dtype=np.float64))
        Y = np.asarray(Y, dtype=np.float64)
        return self.loss.value(predicted, Y), accuracy(Y, predicted)

    # -- checkpointing (§4.9: training continues from checkpoints) -----------------

    def get_weights(self) -> List[np.ndarray]:
        """Copies of every parameter array, in layer order."""
        weights: List[np.ndarray] = []
        for layer in self.layers:
            for _name, param, _grad in layer.parameters():
                weights.append(param.copy())
        return weights

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        flat = [param for layer in self.layers for _n, param, _g in layer.parameters()]
        if len(flat) != len(weights):
            raise ValueError(
                f"weight count mismatch: model has {len(flat)}, got {len(weights)}"
            )
        for param, value in zip(flat, weights):
            if param.shape != value.shape:
                raise ValueError(
                    f"shape mismatch: {param.shape} vs {value.shape}"
                )
            param[...] = value

    def save_checkpoint(self, path: str) -> None:
        """Persist weights to an ``.npz`` checkpoint."""
        arrays = {f"w{i}": w for i, w in enumerate(self.get_weights())}
        np.savez(path, **arrays)

    def load_checkpoint(self, path: str) -> None:
        """Restore weights saved by :meth:`save_checkpoint`.

        The model must already be built with matching layer shapes.
        """
        data = np.load(path)
        weights = [data[f"w{i}"] for i in range(len(data.files))]
        self.set_weights(weights)
