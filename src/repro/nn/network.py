"""Sequential model: the Keras-like training loop of the reproduction.

Ties layers, loss, and optimizer together with mini-batch training, early
stopping, validation tracking, and epoch timing (the Table-10 scalability
study reports milliseconds per epoch).

Three training paths share the same weights and contracts:

* the default single-worker float64 path — the bitwise-deterministic
  reference every pin is stated against;
* the opt-in float32 path (``Sequential(dtype="float32")`` or
  ``REPRO_NN_DTYPE=float32``) — tolerance-comparable, roughly 2-3x
  faster on the Table-8/9 models (see ``benchmarks/training_bench.py``);
* data-parallel ``fit(workers=k)`` — each mini-batch is split into a
  *fixed* number of gradient chunks (``grad_chunks``, independent of
  worker count), per-chunk gradients are computed on thread-local
  replicas sharing the parameter arrays, and combined in chunk order
  with weights ``n_chunk / n_batch`` before a single optimizer step.
  Because the chunking, the combination order, and the per-chunk
  Dropout streams depend only on (batch, step, chunk index), results
  are **worker-count invariant**: workers ∈ {1, 2, 4} produce bitwise
  identical float64 weights (mirroring the ``repro.parallel``
  contract).  The chunked sum is a different floating-point association
  than the single-batch path, so ``workers=None`` (the default) keeps
  the legacy whole-batch reference behaviour.
"""

from __future__ import annotations

import copy
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..parallel import chunked
from .callbacks import EarlyStopping, History
from .contracts import check_fit, check_predict
from .dtypes import resolve_dtype
from .layers import Dropout, Layer
from .losses import Loss, get_loss
from .metrics import accuracy
from .optimizers import Optimizer, get_optimizer

#: Gradient chunks per mini-batch in data-parallel fit.  Fixed (rather
#: than derived from the worker count) so the combined update is
#: invariant to how many workers execute the chunks.
DEFAULT_GRAD_CHUNKS = 4


def _clone_layer(layer: Layer) -> Layer:
    """A shallow training replica of *layer*.

    Parameters are **shared** (same arrays, so optimizer updates are
    visible everywhere); gradients and forward/backward caches are
    private so concurrent backward passes cannot race.
    """
    clone = copy.copy(layer)
    clone.reset_transient()
    for name, _param, grad in layer.parameters():
        setattr(clone, "d" + name, np.zeros_like(grad))
    return clone


class _DataParallelTrainer:
    """Per-chunk gradient computation behind ``Sequential.fit(workers=k)``.

    One replica model per worker; each mini-batch is split into
    ``grad_chunks`` contiguous chunks (``repro.parallel.chunked``, so
    the split depends only on the batch size), chunks are processed in
    fixed contiguous groups by the replicas, and the resulting per-chunk
    gradients are averaged **centrally in chunk order** — the floating
    point sum never depends on thread scheduling or worker count.
    """

    def __init__(self, model: "Sequential", workers: int, grad_chunks: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if grad_chunks < 1:
            raise ValueError("grad_chunks must be >= 1")
        self.model = model
        self.grad_chunks = grad_chunks
        n_replicas = min(workers, grad_chunks)
        self._replicas = [self._replicate(model) for _ in range(n_replicas)]
        self._pool = (
            ThreadPoolExecutor(max_workers=n_replicas) if n_replicas > 1 else None
        )
        self._step = 0

    @staticmethod
    def _replicate(model: "Sequential") -> "Sequential":
        """A forward/backward-capable clone sharing the model's weights."""
        replica = copy.copy(model)
        replica.optimizer = None
        replica.layers = [_clone_layer(layer) for layer in model.layers]
        return replica

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _seed_dropouts(self, replica: "Sequential", step: int, chunk: int) -> None:
        """Give every Dropout a stream derived from (seed, step, chunk, layer).

        The stream is a pure function of the chunk's position in the
        training schedule, never of which worker runs it — the mask a
        chunk sees is therefore worker-count invariant.
        """
        for index, layer in enumerate(replica.layers):
            if isinstance(layer, Dropout) and layer.rate > 0.0:
                layer.reseed(
                    np.random.SeedSequence(
                        entropy=self.model.seed, spawn_key=(step, chunk, index)
                    )
                )

    def _run_group(
        self,
        replica: "Sequential",
        chunk_ids: Sequence[int],
        chunks: List[np.ndarray],
        X: np.ndarray,
        Y: np.ndarray,
        step: int,
    ) -> List[Tuple[int, int, float, List[np.ndarray]]]:
        """Gradients for one replica's contiguous group of chunks."""
        loss = self.model.loss
        results = []
        for chunk_id in chunk_ids:
            rows = chunks[chunk_id]
            self._seed_dropouts(replica, step, chunk_id)
            predicted = replica._forward(X[rows])
            loss_value = loss.value(predicted, Y[rows])
            replica._backward(loss.gradient(predicted, Y[rows]))
            grads = [
                grad.copy()
                for layer in replica.layers
                for _name, _param, grad in layer.parameters()
            ]
            results.append((chunk_id, len(rows), loss_value, grads))
        return results

    def train_on_batch(self, X: np.ndarray, Y: np.ndarray) -> float:
        """One deterministic averaged optimizer step over the batch."""
        model = self.model
        if model.loss is None or model.optimizer is None:
            raise RuntimeError("model not compiled")
        obs.counter("nn.train_batches").inc()
        step = self._step
        self._step += 1
        n = len(X)
        chunks = chunked(np.arange(n), self.grad_chunks)
        groups = chunked(list(range(len(chunks))), len(self._replicas))
        if self._pool is None or len(groups) == 1:
            grouped = [
                self._run_group(self._replicas[gi], group, chunks, X, Y, step)
                for gi, group in enumerate(groups)
            ]
        else:
            futures = [
                self._pool.submit(
                    self._run_group, self._replicas[gi], group, chunks, X, Y, step
                )
                for gi, group in enumerate(groups)
            ]
            grouped = [future.result() for future in futures]

        flat = sorted(
            (result for group in grouped for result in group),
            key=lambda item: item[0],
        )
        accumulators = [
            grad
            for layer in model.layers
            for _name, _param, grad in layer.parameters()
        ]
        for grad in accumulators:
            grad.fill(0.0)
        total_loss = 0.0
        for _chunk_id, n_rows, loss_value, grads in flat:
            weight = n_rows / n
            total_loss += loss_value * n_rows
            for accumulator, chunk_grad in zip(accumulators, grads):
                accumulator += weight * chunk_grad
        for layer in model.layers:
            params = layer.parameters()
            if params:
                model.optimizer.step(params, owner=layer.handle)
        return total_loss / n


class Sequential:
    """A stack of layers trained end-to-end.

    >>> model = Sequential([Dense(16, activation="relu"),
    ...                     Dense(3, activation="softmax")])
    >>> model.compile(optimizer=SGD(0.5), loss="categorical_crossentropy")
    >>> model.fit(X, Y, epochs=100, batch_size=32)      # doctest: +SKIP
    """

    _uids = itertools.count()

    def __init__(
        self,
        layers: Optional[Sequence[Layer]] = None,
        seed: int = 0,
        dtype=None,
    ) -> None:
        self.layers: List[Layer] = list(layers) if layers else []
        self.seed = seed
        self.dtype = resolve_dtype(dtype)
        self.loss: Optional[Loss] = None
        self.optimizer: Optional[Optimizer] = None
        self._input_shape: Optional[Tuple[int, ...]] = None
        self._uid = next(Sequential._uids)
        self._build_generation = 0

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        return self

    # -- lifecycle -----------------------------------------------------------

    def compile(self, optimizer="sgd", loss="categorical_crossentropy") -> "Sequential":
        """Attach the optimizer and loss (names or instances)."""
        self.optimizer = get_optimizer(optimizer)
        self.loss = get_loss(loss)
        return self

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate every layer's parameters for per-sample *input_shape*.

        Rebuilding reallocates the parameter arrays, so any optimizer
        state attached to this model's previous build is pruned — stale
        momentum must never apply to freshly initialised weights.
        """
        if self.optimizer is not None:
            self.optimizer.forget(f"m{self._uid}.")
        self._build_generation += 1
        rng = np.random.default_rng(self.seed)
        shape = tuple(input_shape)
        params_below = False
        for index, layer in enumerate(self.layers):
            layer.handle = f"m{self._uid}.g{self._build_generation}.L{index}"
            layer.dtype = self.dtype
            # A layer only has to produce an input gradient if some
            # trainable layer below it will consume it; the bottom of
            # the stack skips that work (fused path only).
            layer.need_input_grad = params_below
            layer.build(shape, rng)
            shape = layer.output_shape(shape)
            params_below = params_below or layer.num_parameters > 0
        self._input_shape = tuple(input_shape)

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.layers)

    # -- forward / backward ------------------------------------------------------

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape for a per-sample *input_shape*."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = tuple(layer.output_shape(shape))
        return shape

    @check_predict
    def predict(
        self,
        X: np.ndarray,
        batch_size: int = 1024,
        pad_to: Optional[int] = None,
    ) -> np.ndarray:
        """Forward pass in inference mode (dropout disabled).

        With ``pad_to=m`` every forward pass runs on exactly *m* rows:
        each chunk of up to *m* samples is padded (repeating its last
        row) to *m* before the layer stack and trimmed afterwards.  BLAS
        matmul kernels differ by row count, so the same sample can
        produce ULP-different outputs depending on how many neighbours
        share its batch; a fixed shape makes ``predict`` bitwise
        invariant to request batching — the serving layer relies on this
        for online/offline parity (``batch_size`` is forced to *m*).
        """
        X = np.asarray(X, dtype=self.dtype)
        obs.counter("nn.predict_calls").inc()
        obs.counter("nn.predict_rows").inc(len(X))
        if pad_to is not None:
            if pad_to < 1:
                raise ValueError("pad_to must be >= 1")
            batch_size = pad_to
        if len(X) == 0:
            # Empty input: no forward pass, but the output must still
            # carry the model's per-sample shape (e.g. (0, n_classes))
            # so downstream concatenation/argmax code stays total.
            return np.zeros((0,) + self.output_shape(X.shape[1:]), dtype=self.dtype)
        outputs = []
        for start in range(0, len(X), batch_size):
            batch = X[start:start + batch_size]
            n_rows = len(batch)
            if pad_to is not None and n_rows < pad_to:
                batch = np.concatenate(
                    [batch, np.repeat(batch[-1:], pad_to - n_rows, axis=0)]
                )
            for layer in self.layers:
                batch = layer.forward(batch, training=False)
            # Copy: the fused layers return views of reusable buffers
            # that the next chunk's forward pass overwrites.
            outputs.append(batch[:n_rows].copy())
        return np.concatenate(outputs, axis=0)

    def predict_classes(self, X: np.ndarray) -> np.ndarray:
        """Argmax class labels."""
        return np.argmax(self.predict(X), axis=1)

    def _forward(self, X: np.ndarray) -> np.ndarray:
        out = X
        for layer in self.layers:
            out = layer.forward(out, training=True)
        return out

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
            if grad is None:
                # The layer skipped its input gradient (no trainable
                # layer below it) — nothing left to propagate.
                break

    def train_on_batch(self, X: np.ndarray, Y: np.ndarray) -> float:
        """One optimization step on a batch; returns the batch loss."""
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("model not compiled")
        obs.counter("nn.train_batches").inc()
        predicted = self._forward(X)
        loss_value = self.loss.value(predicted, Y)
        self._backward(self.loss.gradient(predicted, Y))
        for layer in self.layers:
            params = layer.parameters()
            if params:
                self.optimizer.step(params, owner=layer.handle)
        return loss_value

    # -- fit ----------------------------------------------------------------------

    @check_fit
    def fit(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        early_stopping: Optional[EarlyStopping] = None,
        shuffle: bool = True,
        verbose: bool = False,
        track_accuracy: bool = True,
        workers: Optional[int] = None,
        grad_chunks: Optional[int] = None,
    ) -> History:
        """Mini-batch training with optional validation and early stopping.

        The returned :class:`History` records per-epoch ``loss``,
        ``accuracy``, ``epoch_ms``, and (when validation data is given)
        ``val_loss`` / ``val_accuracy``.  The reported ``loss`` is the
        sample-weighted epoch mean, so a ragged final batch contributes
        in proportion to its size.  Pass ``track_accuracy=False`` to
        skip the per-epoch full-train accuracy pass — the scalability
        benchmarks do this so ``epoch_ms`` measures training alone.

        ``workers=k`` enables data-parallel gradient computation: each
        batch is split into ``grad_chunks`` fixed chunks (default
        ``DEFAULT_GRAD_CHUNKS``) whose gradients are averaged in
        deterministic chunk order before one optimizer step, so any
        worker count produces identical results (see the module
        docstring).  ``workers=None`` keeps the whole-batch reference
        path.
        """
        X = np.asarray(X, dtype=self.dtype)
        Y = np.asarray(Y, dtype=self.dtype)
        if len(X) != len(Y):
            raise ValueError("X and Y lengths differ")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self._input_shape is None:
            self.build(X.shape[1:])

        trainer: Optional[_DataParallelTrainer] = None
        if workers is not None:
            trainer = _DataParallelTrainer(
                self, workers, grad_chunks or DEFAULT_GRAD_CHUNKS
            )

        rng = np.random.default_rng(self.seed + 7)
        history = History()
        indices = np.arange(len(X))
        try:
            with obs.span("nn.fit") as fit_span:
                for epoch in range(epochs):
                    started = time.perf_counter()
                    if shuffle:
                        rng.shuffle(indices)
                    epoch_loss = 0.0
                    for start in range(0, len(X), batch_size):
                        batch_idx = indices[start:start + batch_size]
                        if trainer is not None:
                            batch_loss = trainer.train_on_batch(
                                X[batch_idx], Y[batch_idx]
                            )
                        else:
                            batch_loss = self.train_on_batch(
                                X[batch_idx], Y[batch_idx]
                            )
                        epoch_loss += batch_loss * len(batch_idx)
                    elapsed_ms = (time.perf_counter() - started) * 1000.0

                    record = {
                        "loss": epoch_loss / len(X),
                        "epoch_ms": elapsed_ms,
                    }
                    if track_accuracy:
                        record["accuracy"] = accuracy(Y, self.predict(X))
                    if validation_data is not None:
                        vx, vy = validation_data
                        vp = self.predict(np.asarray(vx, dtype=self.dtype))
                        record["val_loss"] = self.loss.value(
                            vp, np.asarray(vy, dtype=self.dtype)
                        )
                        record["val_accuracy"] = accuracy(vy, vp)
                    history.record(**record)
                    if verbose:
                        msg = ", ".join(f"{k}={v:.4f}" for k, v in record.items())
                        print(f"epoch {epoch + 1}/{epochs}: {msg}")
                    if early_stopping is not None and early_stopping.update(history):
                        break
                fit_span.annotate(
                    epochs=history.epochs,
                    samples=len(X),
                    batch_size=batch_size,
                    parameters=self.num_parameters,
                    final_loss=history.last("loss"),
                    workers=workers or 0,
                )
        finally:
            if trainer is not None:
                trainer.close()
        return history

    def evaluate(self, X: np.ndarray, Y: np.ndarray) -> Tuple[float, float]:
        """(loss, accuracy) on a dataset."""
        if self.loss is None:
            raise RuntimeError("model not compiled")
        predicted = self.predict(np.asarray(X, dtype=self.dtype))
        Y = np.asarray(Y, dtype=self.dtype)
        return self.loss.value(predicted, Y), accuracy(Y, predicted)

    # -- checkpointing (§4.9: training continues from checkpoints) -----------------

    def get_weights(self) -> List[np.ndarray]:
        """Copies of every parameter array, in layer order."""
        weights: List[np.ndarray] = []
        for layer in self.layers:
            for _name, param, _grad in layer.parameters():
                weights.append(param.copy())
        return weights

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        flat = [param for layer in self.layers for _n, param, _g in layer.parameters()]
        if len(flat) != len(weights):
            raise ValueError(
                f"weight count mismatch: model has {len(flat)}, got {len(weights)}"
            )
        for param, value in zip(flat, weights):
            if param.shape != value.shape:
                raise ValueError(
                    f"shape mismatch: {param.shape} vs {value.shape}"
                )
            param[...] = value

    def save_checkpoint(self, path: str) -> None:
        """Persist weights — and optimizer state, if any — to ``.npz``.

        Optimizer slots are stored under position-based keys
        (``opt.L<layer>.<param>.<entry>``) plus scalar extras under
        ``optx.<name>``, so a resumed run continues with the exact
        momentum/accumulator state of the interrupted one.
        """
        arrays = {f"w{i}": w for i, w in enumerate(self.get_weights())}
        if self.optimizer is not None:
            for index, layer in enumerate(self.layers):
                if layer.handle is None:
                    continue
                for name, _param, _grad in layer.parameters():
                    for entry, value in self.optimizer.peek(
                        layer.handle, name
                    ).items():
                        arrays[f"opt.L{index}.{name}.{entry}"] = value
            for name, value in self.optimizer.extra_state().items():
                arrays[f"optx.{name}"] = np.asarray(value)
        np.savez(path, **arrays)

    def load_checkpoint(self, path: str) -> None:
        """Restore weights (and optimizer state) from :meth:`save_checkpoint`.

        The model must already be built with matching layer shapes.
        Checkpoints written before optimizer state was persisted load
        fine — they simply leave the optimizer state untouched.
        """
        data = np.load(path)
        n_weights = sum(
            1 for f in data.files if f.startswith("w") and f[1:].isdigit()
        )
        weights = [data[f"w{i}"] for i in range(n_weights)]
        self.set_weights(weights)
        if self.optimizer is None:
            return
        for index, layer in enumerate(self.layers):
            if layer.handle is None:
                continue
            for name, param, _grad in layer.parameters():
                prefix = f"opt.L{index}.{name}."
                entries: Dict[str, np.ndarray] = {
                    f[len(prefix):]: data[f]
                    for f in data.files
                    if f.startswith(prefix)
                }
                if entries:
                    self.optimizer.restore(layer.handle, name, param, entries)
        extras = {
            f[len("optx."):]: data[f] for f in data.files if f.startswith("optx.")
        }
        if extras:
            self.optimizer.load_extra_state(extras)
