"""Optimizers: SGD with momentum (Eqs 13–14), ADAGRAD (Eq 15),
ADADELTA (Eq 16) and Adam.

The paper's best configurations are SGD(lr=0.5) and ADADELTA(lr=2) —
Keras's ADADELTA applies the learning rate as a multiplier on the Eq-16
update, which we replicate so those hyperparameters transfer.

Per-parameter state (momentum, accumulators) is keyed by a stable
``(owner handle, parameter name)`` pair supplied by the caller
(``Sequential`` passes each layer's build handle).  Keying by
``id(param)`` — the original scheme — is unsound: ids are reused after
garbage collection and ``Sequential.build()`` reallocates parameter
arrays, so state could silently attach to the wrong parameter and stale
slots leaked forever.  Callers without a handle (direct ``step`` calls
in tests) fall back to identity keys whose slot pins a strong reference
to the array, which both prevents id reuse and lets the slot detect a
mismatched array.

All updates run **in place** through per-slot scratch buffers: the op
sequence mirrors the original expression evaluation exactly, so results
are bitwise identical to the allocating implementation — only the
per-step temporaries disappear.  ``REPRO_NN_FUSED=0`` switches every
``_update`` back to the original allocating expressions (the pre-fusion
implementation, kept verbatim as the training bench's reference and as
a bitwise differential check).  Slot entries whose name starts with an
underscore (scratch, the pinned ``__param__`` ref) are transient and
excluded from checkpoints.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from .dtypes import fused_enabled

_EPS = 1e-7


class Optimizer:
    """Base optimizer: per-parameter state keyed by stable handles."""

    def __init__(self) -> None:
        self._state: Dict[Tuple[Hashable, str], Dict[str, np.ndarray]] = {}

    def _slot(
        self, key: Tuple[Hashable, str], param: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """The state dict for *key*, reset if it no longer matches *param*.

        Every slot pins the array it belongs to under ``__param__``; if
        the same key comes back with a *different* array (an identity
        key whose id was reused, or a rebuilt layer reusing a handle),
        the stale state is discarded rather than silently applied.
        """
        slot = self._state.get(key)
        if slot is None or slot.get("__param__") is not param:
            slot = {"__param__": param}
            self._state[key] = slot
        return slot

    @staticmethod
    def _slot_state(
        slot: Dict[str, np.ndarray], name: str, param: np.ndarray
    ) -> np.ndarray:
        """Persistent state array *name* in *slot*, zero-initialised."""
        arr = slot.get(name)
        if arr is None or arr.shape != param.shape or arr.dtype != param.dtype:
            arr = np.zeros_like(param)
            slot[name] = arr
        return arr

    @staticmethod
    def _slot_buffer(
        slot: Dict[str, np.ndarray], name: str, param: np.ndarray
    ) -> np.ndarray:
        """Transient scratch array *name* in *slot* (uninitialised)."""
        buf = slot.get(name)
        if buf is None or buf.shape != param.shape or buf.dtype != param.dtype:
            buf = np.empty_like(param)
            slot[name] = buf
        return buf

    def step(
        self,
        parameters: Iterable[Tuple[str, np.ndarray, np.ndarray]],
        owner: Optional[str] = None,
    ) -> None:
        """Update every (name, param, grad) triple in place.

        *owner* is the stable handle of the layer that owns the
        parameters; without one, state falls back to identity keys.
        """
        for name, param, grad in parameters:
            if owner is not None:
                key: Tuple[Hashable, str] = (owner, name)
            else:
                key = (id(param), name)
            self._update(self._slot(key, param), param, grad)

    def forget(self, owner_prefix: str) -> int:
        """Drop state for owners whose handle starts with *owner_prefix*.

        ``Sequential.build`` calls this on rebuild so slots belonging to
        the replaced parameter arrays are pruned instead of leaking.
        Returns the number of slots dropped.
        """
        stale = [
            key
            for key in self._state
            if isinstance(key[0], str) and key[0].startswith(owner_prefix)
        ]
        for key in stale:
            del self._state[key]
        return len(stale)

    def peek(self, owner: str, name: str) -> Dict[str, np.ndarray]:
        """The persistable state entries for (*owner*, *name*), if any.

        Transient entries (leading underscore, the ``__param__`` pin)
        are excluded — this is the checkpoint view of the slot.
        """
        slot = self._state.get((owner, name), {})
        return {
            entry: value
            for entry, value in slot.items()
            if not entry.startswith("_")
        }

    def restore(
        self,
        owner: str,
        name: str,
        param: np.ndarray,
        entries: Dict[str, np.ndarray],
    ) -> None:
        """Install checkpointed state *entries* for (*owner*, *name*)."""
        slot = {"__param__": param}
        for entry, value in entries.items():
            value = np.asarray(value)
            if value.shape != param.shape:
                raise ValueError(
                    f"optimizer state {entry!r} for {owner}.{name} has shape "
                    f"{value.shape}, parameter has {param.shape}"
                )
            slot[entry] = np.array(value, dtype=param.dtype)
        self._state[(owner, name)] = slot

    def extra_state(self) -> Dict[str, float]:
        """Scalar optimizer state to checkpoint (e.g. Adam's step count)."""
        return {}

    def load_extra_state(self, extra: Dict[str, np.ndarray]) -> None:
        """Restore scalars produced by :meth:`extra_state`."""

    def _update(
        self, slot: Dict[str, np.ndarray], param: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with exponential-decay momentum.

    Eq 14: Δw(t) = α Δw(t-1) - η γ_t, with α the decay factor and η the
    global learning rate.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum

    def _update(self, slot, param, grad):
        if not fused_enabled():  # pre-fusion reference, bitwise identical
            if self.momentum > 0.0:
                velocity = slot.setdefault("velocity", np.zeros_like(param))
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad
            return
        scratch = self._slot_buffer(slot, "_scratch", param)
        np.multiply(grad, self.learning_rate, out=scratch)
        if self.momentum > 0.0:
            velocity = self._slot_state(slot, "velocity", param)
            velocity *= self.momentum
            velocity -= scratch
            param += velocity
        else:
            param -= scratch


class Adagrad(Optimizer):
    """ADAGRAD (Eq 15): per-dimension step scaled by accumulated grad norm."""

    def __init__(self, learning_rate: float = 0.01) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def _update(self, slot, param, grad):
        if not fused_enabled():  # pre-fusion reference, bitwise identical
            accum = slot.setdefault("accumulator", np.zeros_like(param))
            accum += grad * grad
            param -= self.learning_rate * grad / (np.sqrt(accum) + _EPS)
            return
        accum = self._slot_state(slot, "accumulator", param)
        s1 = self._slot_buffer(slot, "_scratch", param)
        s2 = self._slot_buffer(slot, "_scratch2", param)
        np.multiply(grad, grad, out=s1)
        accum += s1
        np.sqrt(accum, out=s1)
        s1 += _EPS
        np.multiply(grad, self.learning_rate, out=s2)
        s2 /= s1
        param -= s2


class Adadelta(Optimizer):
    """ADADELTA (Eq 16): RMS-ratio update, no hand-tuned base rate needed.

    Δw(t) = -(RMS[Δw]_{t-1} / RMS[γ]_t) γ_t.  The *learning_rate* is a
    final multiplier (Keras semantics), enabling the paper's lr=2 setting.
    """

    def __init__(self, learning_rate: float = 1.0, rho: float = 0.95) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must lie in (0, 1)")
        self.learning_rate = learning_rate
        self.rho = rho

    def _update(self, slot, param, grad):
        if not fused_enabled():  # pre-fusion reference, bitwise identical
            accum_grad = slot.setdefault("accum_grad", np.zeros_like(param))
            accum_update = slot.setdefault(
                "accum_update", np.zeros_like(param)
            )
            accum_grad *= self.rho
            accum_grad += (1.0 - self.rho) * grad * grad
            update = (
                np.sqrt(accum_update + _EPS) / np.sqrt(accum_grad + _EPS)
            ) * grad
            accum_update *= self.rho
            accum_update += (1.0 - self.rho) * update * update
            param -= self.learning_rate * update
            return
        accum_grad = self._slot_state(slot, "accum_grad", param)
        accum_update = self._slot_state(slot, "accum_update", param)
        s1 = self._slot_buffer(slot, "_scratch", param)
        s2 = self._slot_buffer(slot, "_scratch2", param)
        accum_grad *= self.rho
        np.multiply(grad, 1.0 - self.rho, out=s1)
        s1 *= grad
        accum_grad += s1
        np.add(accum_update, _EPS, out=s1)
        np.sqrt(s1, out=s1)
        np.add(accum_grad, _EPS, out=s2)
        np.sqrt(s2, out=s2)
        s1 /= s2
        s1 *= grad  # s1 is now the Eq-16 update
        accum_update *= self.rho
        np.multiply(s1, 1.0 - self.rho, out=s2)
        s2 *= s1
        accum_update += s2
        np.multiply(s1, self.learning_rate, out=s2)
        param -= s2


class Adam(Optimizer):
    """Adam — not in the paper, included as the modern reference point
    for the optimizer ablation bench."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self._t = 0

    def step(self, parameters, owner=None):
        self._t += 1
        super().step(list(parameters), owner=owner)

    def extra_state(self):
        return {"t": float(self._t)}

    def load_extra_state(self, extra):
        if "t" in extra:
            self._t = int(np.asarray(extra["t"]).item())

    def _update(self, slot, param, grad):
        if not fused_enabled():  # pre-fusion reference, bitwise identical
            m = slot.setdefault("m", np.zeros_like(param))
            v = slot.setdefault("v", np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1 ** self._t)
            v_hat = v / (1.0 - self.beta2 ** self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + _EPS)
            return
        m = self._slot_state(slot, "m", param)
        v = self._slot_state(slot, "v", param)
        s1 = self._slot_buffer(slot, "_scratch", param)
        s2 = self._slot_buffer(slot, "_scratch2", param)
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        m += s1
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=s1)
        s1 *= grad
        v += s1
        np.divide(m, 1.0 - self.beta1 ** self._t, out=s1)  # m_hat
        np.divide(v, 1.0 - self.beta2 ** self._t, out=s2)  # v_hat
        np.sqrt(s2, out=s2)
        s2 += _EPS
        np.multiply(s1, self.learning_rate, out=s1)
        s1 /= s2
        param -= s1


OPTIMIZERS = {
    "sgd": SGD,
    "adagrad": Adagrad,
    "adadelta": Adadelta,
    "adam": Adam,
}


def get_optimizer(name, **kwargs) -> Optimizer:
    """Resolve an optimizer by name (instances pass through)."""
    if isinstance(name, Optimizer):
        return name
    if name not in OPTIMIZERS:
        raise KeyError(f"unknown optimizer: {name!r}")
    return OPTIMIZERS[name](**kwargs)
