"""Optimizers: SGD with momentum (Eqs 13–14), ADAGRAD (Eq 15),
ADADELTA (Eq 16) and Adam.

The paper's best configurations are SGD(lr=0.5) and ADADELTA(lr=2) —
Keras's ADADELTA applies the learning rate as a multiplier on the Eq-16
update, which we replicate so those hyperparameters transfer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

_EPS = 1e-7


class Optimizer:
    """Base optimizer: per-parameter state keyed by object identity."""

    def __init__(self) -> None:
        self._state: Dict[int, Dict[str, np.ndarray]] = {}

    def _slot(self, param: np.ndarray) -> Dict[str, np.ndarray]:
        key = id(param)
        if key not in self._state:
            self._state[key] = {}
        return self._state[key]

    def step(self, parameters: Iterable[Tuple[str, np.ndarray, np.ndarray]]) -> None:
        """Update every (name, param, grad) triple in place."""
        for _name, param, grad in parameters:
            self._update(param, grad)

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with exponential-decay momentum.

    Eq 14: Δw(t) = α Δw(t-1) - η γ_t, with α the decay factor and η the
    global learning rate.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum

    def _update(self, param, grad):
        slot = self._slot(param)
        if self.momentum > 0.0:
            velocity = slot.setdefault("velocity", np.zeros_like(param))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
        else:
            param -= self.learning_rate * grad


class Adagrad(Optimizer):
    """ADAGRAD (Eq 15): per-dimension step scaled by accumulated grad norm."""

    def __init__(self, learning_rate: float = 0.01) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def _update(self, param, grad):
        slot = self._slot(param)
        accum = slot.setdefault("accumulator", np.zeros_like(param))
        accum += grad * grad
        param -= self.learning_rate * grad / (np.sqrt(accum) + _EPS)


class Adadelta(Optimizer):
    """ADADELTA (Eq 16): RMS-ratio update, no hand-tuned base rate needed.

    Δw(t) = -(RMS[Δw]_{t-1} / RMS[γ]_t) γ_t.  The *learning_rate* is a
    final multiplier (Keras semantics), enabling the paper's lr=2 setting.
    """

    def __init__(self, learning_rate: float = 1.0, rho: float = 0.95) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must lie in (0, 1)")
        self.learning_rate = learning_rate
        self.rho = rho

    def _update(self, param, grad):
        slot = self._slot(param)
        accum_grad = slot.setdefault("accum_grad", np.zeros_like(param))
        accum_update = slot.setdefault("accum_update", np.zeros_like(param))
        accum_grad *= self.rho
        accum_grad += (1.0 - self.rho) * grad * grad
        update = (
            np.sqrt(accum_update + _EPS) / np.sqrt(accum_grad + _EPS)
        ) * grad
        accum_update *= self.rho
        accum_update += (1.0 - self.rho) * update * update
        param -= self.learning_rate * update


class Adam(Optimizer):
    """Adam — not in the paper, included as the modern reference point
    for the optimizer ablation bench."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self._t = 0

    def step(self, parameters):
        self._t += 1
        super().step(list(parameters))

    def _update(self, param, grad):
        slot = self._slot(param)
        m = slot.setdefault("m", np.zeros_like(param))
        v = slot.setdefault("v", np.zeros_like(param))
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1 ** self._t)
        v_hat = v / (1.0 - self.beta2 ** self._t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + _EPS)


OPTIMIZERS = {
    "sgd": SGD,
    "adagrad": Adagrad,
    "adadelta": Adadelta,
    "adam": Adam,
}


def get_optimizer(name, **kwargs) -> Optimizer:
    """Resolve an optimizer by name (instances pass through)."""
    if isinstance(name, Optimizer):
        return name
    if name not in OPTIMIZERS:
        raise KeyError(f"unknown optimizer: {name!r}")
    return OPTIMIZERS[name](**kwargs)
