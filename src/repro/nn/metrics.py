"""Evaluation metrics (§3.6): average accuracy (Eq 17) and companions.

The paper evaluates its 3-class likes/retweets predictors with the average
accuracy of Eq 17 — the mean over classes of (TP_i + TN_i) / total — and
notes ErrorRate = 1 - Accuracy.  We also provide the plain "fraction
correct" accuracy (which the headline Tables 8–9 numbers correspond to),
the confusion matrix, and macro precision/recall/F1 for the per-class
breakdowns in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


def _as_labels(y: np.ndarray) -> np.ndarray:
    """Accept one-hot or integer labels; return integer labels."""
    y = np.asarray(y)
    if y.ndim == 2:
        return np.argmax(y, axis=1)
    return y.astype(int)


def accuracy(y_true, y_pred) -> float:
    """Plain classification accuracy: fraction of exact matches."""
    t = _as_labels(y_true)
    p = _as_labels(y_pred)
    if t.shape != p.shape:
        raise ValueError("label shapes differ")
    if t.size == 0:
        raise ValueError("cannot compute accuracy of empty labels")
    return float(np.mean(t == p))


def confusion_matrix(y_true, y_pred, n_classes: Optional[int] = None) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    t = _as_labels(y_true)
    p = _as_labels(y_pred)
    if n_classes is None:
        n_classes = int(max(t.max(initial=0), p.max(initial=0))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for ti, pi in zip(t, p):
        matrix[ti, pi] += 1
    return matrix


def average_accuracy(y_true, y_pred, n_classes: Optional[int] = None) -> float:
    """Eq 17: A = (1/k) * sum_i (TP_i + TN_i) / (TP_i + FN_i + FP_i + TN_i).

    For each class i treated one-vs-rest, the per-class binary accuracy is
    averaged over the k classes.
    """
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    k = matrix.shape[0]
    total = matrix.sum()
    if total == 0:
        raise ValueError("cannot compute average accuracy of empty labels")
    score = 0.0
    for i in range(k):
        tp = matrix[i, i]
        fn = matrix[i].sum() - tp
        fp = matrix[:, i].sum() - tp
        tn = total - tp - fn - fp
        score += (tp + tn) / total
    return float(score / k)


def error_rate(y_true, y_pred) -> float:
    """1 - accuracy, as the paper notes below Tables 8–9."""
    return 1.0 - accuracy(y_true, y_pred)


@dataclass
class ClassReport:
    """Per-class precision/recall/F1 plus support."""

    precision: float
    recall: float
    f1: float
    support: int


def classification_report(y_true, y_pred, n_classes: Optional[int] = None) -> Dict[int, ClassReport]:
    """Per-class precision/recall/F1 (zero-division maps to 0.0)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    report: Dict[int, ClassReport] = {}
    for i in range(matrix.shape[0]):
        tp = matrix[i, i]
        fn = matrix[i].sum() - tp
        fp = matrix[:, i].sum() - tp
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        report[i] = ClassReport(
            precision=float(precision),
            recall=float(recall),
            f1=float(f1),
            support=int(matrix[i].sum()),
        )
    return report


def macro_f1(y_true, y_pred, n_classes: Optional[int] = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    report = classification_report(y_true, y_pred, n_classes)
    if not report:
        return 0.0
    return sum(r.f1 for r in report.values()) / len(report)


def msle(y_true, y_pred) -> float:
    """Mean squared log-transformed error.

    The metric the related-work diffusion models (FOREST, CasCN — §2)
    report for cascade-size prediction; included so the reproduction's
    predictions can be compared on their scale as well.
    """
    t = np.asarray(y_true, dtype=np.float64)
    p = np.asarray(y_pred, dtype=np.float64)
    if t.shape != p.shape:
        raise ValueError("shapes differ")
    if t.size == 0:
        raise ValueError("cannot compute MSLE of empty arrays")
    if (t < 0).any() or (p < 0).any():
        raise ValueError("MSLE requires non-negative values")
    diff = np.log1p(t) - np.log1p(p)
    return float(np.mean(diff * diff))


def one_hot(labels: Sequence[int], n_classes: int) -> np.ndarray:
    """Integer labels -> one-hot matrix (validates label range)."""
    arr = np.asarray(labels, dtype=int)
    if arr.size and (arr.min() < 0 or arr.max() >= n_classes):
        raise ValueError("label outside [0, n_classes)")
    out = np.zeros((arr.size, n_classes))
    out[np.arange(arr.size), arr] = 1.0
    return out
