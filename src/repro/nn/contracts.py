"""Runtime shape/dtype contracts for the NN stack.

The static analyzer (``repro.tools.staticcheck``) guards conventions the
AST can see; this module guards what it cannot — the actual arrays that
flow through ``Layer.forward``/``backward`` and ``Sequential.fit``/
``predict`` at run time.  Together they cover each other's blind spots.

Contracts are **off by default** in production.  They switch on when

* the environment variable ``REPRO_CONTRACTS`` is ``1`` (or any value
  other than ``0``/``false``/empty), or
* the code runs under pytest (detected via ``PYTEST_CURRENT_TEST``) and
  ``REPRO_CONTRACTS`` is unset.

``REPRO_CONTRACTS=0`` force-disables them everywhere, including tests;
a disabled wrapper is a single dict lookup and one branch per call.

Wiring: ``Layer.__init_subclass__`` (see ``layers.py``) calls
:func:`instrument_layer` so every layer subclass — current and future —
is contract-checked without per-class boilerplate; ``Sequential.fit`` /
``predict`` use the :func:`check_fit` / :func:`check_predict`
decorators directly.
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Tuple

import numpy as np


class ContractError(AssertionError, ValueError):
    """A runtime shape/dtype contract was violated.

    Subclasses both :class:`AssertionError` (it is a failed invariant)
    and :class:`ValueError` (the offending argument is an invalid
    value), so callers that guarded against either keep working when
    contracts are enabled.
    """


def contracts_enabled() -> bool:
    """Resolve the current on/off state from the environment."""
    flag = os.environ.get("REPRO_CONTRACTS")
    if flag is not None:
        return flag.strip().lower() not in ("0", "false", "")
    return "PYTEST_CURRENT_TEST" in os.environ


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ContractError` with *message* unless *condition*."""
    if not condition:
        raise ContractError(message)


def _check_batched_array(value: Any, owner: str, role: str) -> np.ndarray:
    """Common layer-boundary checks: ndarray, batch axis, numeric dtype."""
    _require(
        isinstance(value, np.ndarray),
        f"{owner}: {role} must be an np.ndarray, got {type(value).__name__}",
    )
    _require(
        value.ndim >= 2,
        f"{owner}: {role} must have a batch axis plus at least one feature "
        f"axis, got shape {value.shape}",
    )
    _require(
        value.dtype.kind in "fiu",
        f"{owner}: {role} must be numeric, got dtype {value.dtype}",
    )
    return value


def wrap_forward(forward: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    """Contract-check a layer ``forward``: valid input, batch preserved.

    The output shape is stashed on the layer so the paired ``backward``
    can verify the incoming gradient against it.
    """

    @functools.wraps(forward)
    def checked(self: Any, x: Any, training: bool = False) -> np.ndarray:
        if not contracts_enabled():
            return forward(self, x, training=training)
        owner = type(self).__name__
        _check_batched_array(x, owner, "forward input")
        out = forward(self, x, training=training)
        _require(
            isinstance(out, np.ndarray),
            f"{owner}: forward must return an np.ndarray, "
            f"got {type(out).__name__}",
        )
        _require(
            out.shape[0] == x.shape[0],
            f"{owner}: forward changed the batch size "
            f"({x.shape[0]} -> {out.shape[0]})",
        )
        self._contract_forward_shape = out.shape
        return out

    checked.__contract_wrapped__ = True  # type: ignore[attr-defined]
    return checked


def wrap_backward(backward: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    """Contract-check a layer ``backward``: gradient matches last output."""

    @functools.wraps(backward)
    def checked(self: Any, grad: Any) -> np.ndarray:
        if not contracts_enabled():
            return backward(self, grad)
        owner = type(self).__name__
        _check_batched_array(grad, owner, "backward gradient")
        expected: Tuple[int, ...] = getattr(self, "_contract_forward_shape", ())
        if expected:
            _require(
                grad.shape == expected,
                f"{owner}: backward gradient shape {grad.shape} does not "
                f"match the last forward output shape {expected}",
            )
        return backward(self, grad)

    checked.__contract_wrapped__ = True  # type: ignore[attr-defined]
    return checked


def instrument_layer(cls: type) -> type:
    """Wrap the ``forward``/``backward`` a class defines *itself*.

    Called from ``Layer.__init_subclass__``; inherited methods are left
    alone (the defining class already wrapped them), and double-wrapping
    is prevented by the ``__contract_wrapped__`` marker.
    """
    for name, wrapper in (("forward", wrap_forward), ("backward", wrap_backward)):
        method = cls.__dict__.get(name)
        if method is not None and not getattr(method, "__contract_wrapped__", False):
            setattr(cls, name, wrapper(method))
    return cls


def check_fit(fit: Callable[..., Any]) -> Callable[..., Any]:
    """Contract-check ``Sequential.fit``: aligned, non-empty X/Y arrays."""

    @functools.wraps(fit)
    def checked(self: Any, X: Any, Y: Any, *args: Any, **kwargs: Any) -> Any:
        if not contracts_enabled():
            return fit(self, X, Y, *args, **kwargs)
        X = np.asarray(X)
        Y = np.asarray(Y)
        _require(
            X.ndim >= 2,
            f"fit: X must be (batch, features...), got shape {X.shape}",
        )
        _require(Y.ndim in (1, 2), f"fit: Y must be 1-D or 2-D, got shape {Y.shape}")
        _require(
            len(X) == len(Y),
            f"fit: X and Y lengths differ ({len(X)} vs {len(Y)})",
        )
        _require(len(X) > 0, "fit: cannot fit on an empty dataset")
        _require(
            X.dtype.kind in "fiu",
            f"fit: X must be numeric, got dtype {X.dtype}",
        )
        batch_size = kwargs.get("batch_size", 32)
        _require(batch_size >= 1, f"fit: batch_size must be >= 1, got {batch_size}")
        return fit(self, X, Y, *args, **kwargs)

    return checked


def check_predict(predict: Callable[..., Any]) -> Callable[..., Any]:
    """Contract-check ``Sequential.predict``: batched numeric input.

    Once the model is built, the per-sample shape must also match the
    shape the network was built with.
    """

    @functools.wraps(predict)
    def checked(self: Any, X: Any, *args: Any, **kwargs: Any) -> Any:
        if not contracts_enabled():
            return predict(self, X, *args, **kwargs)
        X = np.asarray(X)
        _require(
            X.ndim >= 2,
            f"predict: X must be (batch, features...), got shape {X.shape}",
        )
        _require(
            X.dtype.kind in "fiu",
            f"predict: X must be numeric, got dtype {X.dtype}",
        )
        built_shape = getattr(self, "_input_shape", None)
        if built_shape is not None:
            _require(
                tuple(X.shape[1:]) == tuple(built_shape),
                f"predict: per-sample shape {tuple(X.shape[1:])} does not "
                f"match the built input shape {tuple(built_shape)}",
            )
        return predict(self, X, *args, **kwargs)

    return checked
