"""Loss functions — cross-entropy (Eq 12) and friends.

``CategoricalCrossEntropy`` fuses with a final softmax layer: its gradient
is ``probs - targets``, which the Dense layer passes through unchanged when
its activation is softmax (see :mod:`repro.nn.activations`).

Losses are dtype-preserving: every scalar constant is a Python float
(weak under NEP 50), so float32 predictions/targets produce float32
gradients and the opt-in float32 compute path never silently upcasts in
the backward seed.  ``value`` always returns a Python float.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


class Loss:
    """Base loss: value + gradient w.r.t. predictions."""

    name = "loss"

    def value(self, predicted: np.ndarray, target: np.ndarray) -> float:
        """Scalar loss of *predicted* against *target*."""
        raise NotImplementedError

    def gradient(self, predicted: np.ndarray, target: np.ndarray) -> np.ndarray:
        """dLoss/dPredicted for the backward pass."""
        raise NotImplementedError


class BinaryCrossEntropy(Loss):
    """L(ŷ, y) = -(y log ŷ + (1 - y) log(1 - ŷ)) — Eq 12, mean-reduced."""

    name = "binary_crossentropy"

    def value(self, predicted, target):
        p = np.clip(predicted, _EPS, 1.0 - _EPS)
        losses = -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p))
        return float(np.mean(losses))

    def gradient(self, predicted, target):
        p = np.clip(predicted, _EPS, 1.0 - _EPS)
        return (p - target) / (p * (1.0 - p)) / target.shape[0]


class CategoricalCrossEntropy(Loss):
    """Multi-class cross-entropy over softmax outputs (one-hot targets).

    ``gradient`` returns the *fused* softmax+CE derivative
    (probs - targets) / batch, so the final softmax Dense layer must pass
    it through unchanged — which it does (see ``Dense.backward``).
    """

    name = "categorical_crossentropy"

    def value(self, predicted, target):
        p = np.clip(predicted, _EPS, 1.0)
        return float(-np.sum(target * np.log(p)) / target.shape[0])

    def gradient(self, predicted, target):
        return (predicted - target) / target.shape[0]


class MeanSquaredError(Loss):
    """Mean squared error, for regression-style smoke tests."""

    name = "mse"

    def value(self, predicted, target):
        diff = predicted - target
        return float(np.mean(diff * diff))

    def gradient(self, predicted, target):
        return 2.0 * (predicted - target) / predicted.size


LOSSES = {
    "binary_crossentropy": BinaryCrossEntropy,
    "categorical_crossentropy": CategoricalCrossEntropy,
    "mse": MeanSquaredError,
}


def get_loss(name) -> Loss:
    """Resolve a loss by name (instances pass through)."""
    if isinstance(name, Loss):
        return name
    if name not in LOSSES:
        raise KeyError(f"unknown loss: {name!r}")
    return LOSSES[name]()
