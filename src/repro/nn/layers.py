"""Layers for the numpy NN framework (Dense, Conv1D, MaxPool1D, ...).

The paper's two architectures (Figures 2–3) need: fully connected layers
with the Table-1 activations, a 1-D convolution + max-pooling pair, flatten
and dropout.  Each layer implements ``forward(x, training)`` and
``backward(grad)`` (returning the gradient w.r.t. its input and stashing
parameter gradients), and exposes ``parameters()`` as (name, param, grad)
triples for the optimizer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import contracts
from .activations import Activation, Softmax, get_activation
from .initializers import get_initializer


class Layer:
    """Base layer.

    Every subclass is automatically instrumented with the runtime
    shape/dtype contracts of :mod:`repro.nn.contracts` (active under
    pytest, toggleable via ``REPRO_CONTRACTS``).
    """

    def __init__(self) -> None:
        self.built = False

    def __init_subclass__(cls, **kwargs) -> None:
        """Contract-wrap the ``forward``/``backward`` the subclass defines."""
        super().__init_subclass__(**kwargs)
        contracts.instrument_layer(cls)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters given the per-sample *input_shape*."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given the per-sample input shape."""
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Batched forward pass; *training* toggles train-time behaviour."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        """(name, parameter, gradient) triples; empty for stateless layers."""
        return []

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return sum(p.size for _n, p, _g in self.parameters())


class Dense(Layer):
    """Fully connected layer: y = activation(x W + b).

    This is the perceptron stack of §3.5: ``units`` processing units, each
    computing delta(sum_j w_ij x_ij + b).
    """

    def __init__(
        self,
        units: int,
        activation=None,
        initializer: str = "glorot_uniform",
    ) -> None:
        super().__init__()
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = units
        self.activation: Activation = get_activation(activation)
        self.initializer = initializer
        self.W: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self.dW: Optional[np.ndarray] = None
        self.db: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    def build(self, input_shape, rng) -> None:
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat input, got shape {input_shape}")
        init = get_initializer(self.initializer)
        self.W = init((input_shape[0], self.units), rng)
        self.b = np.zeros(self.units)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.built = True

    def output_shape(self, input_shape):
        return (self.units,)

    def forward(self, x, training=False):
        self._x = x
        z = x @ self.W + self.b
        self._out = self.activation.forward(z)
        return self._out

    def backward(self, grad):
        if not isinstance(self.activation, Softmax):
            grad = self.activation.backward(grad, self._out)
        # else: grad already includes the fused softmax+CE derivative.
        self.dW[...] = self._x.T @ grad
        self.db[...] = grad.sum(axis=0)
        return grad @ self.W.T

    def parameters(self):
        return [("W", self.W, self.dW), ("b", self.b, self.db)]


class Conv1D(Layer):
    """1-D convolution over (length, channels) inputs, 'valid' padding.

    Implemented with an im2col unroll so the heavy lifting is one matmul —
    important for the Table-10 scalability bench where CNN epoch time must
    scale smoothly with input size.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        activation=None,
        stride: int = 1,
        initializer: str = "glorot_uniform",
    ) -> None:
        super().__init__()
        if filters < 1 or kernel_size < 1 or stride < 1:
            raise ValueError("filters, kernel_size and stride must be >= 1")
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.activation: Activation = get_activation(activation)
        self.initializer = initializer
        self.W: Optional[np.ndarray] = None  # (kernel, in_ch, filters)
        self.b: Optional[np.ndarray] = None
        self.dW: Optional[np.ndarray] = None
        self.db: Optional[np.ndarray] = None
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._out: Optional[np.ndarray] = None

    def build(self, input_shape, rng) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"Conv1D expects (length, channels) input, got {input_shape}"
            )
        length, channels = input_shape
        if length < self.kernel_size:
            raise ValueError("input shorter than kernel")
        init = get_initializer(self.initializer)
        self.W = init((self.kernel_size, channels, self.filters), rng)
        self.b = np.zeros(self.filters)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.built = True

    def _out_length(self, length: int) -> int:
        return (length - self.kernel_size) // self.stride + 1

    def output_shape(self, input_shape):
        return (self._out_length(input_shape[0]), self.filters)

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(batch, length, ch) -> (batch, out_len, kernel*ch) window unroll."""
        batch, length, channels = x.shape
        out_len = self._out_length(length)
        strides = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, out_len, self.kernel_size, channels),
            strides=(strides[0], strides[1] * self.stride, strides[1], strides[2]),
            writeable=False,
        )
        return windows.reshape(batch, out_len, self.kernel_size * channels)

    def forward(self, x, training=False):
        self._x_shape = x.shape
        cols = self._im2col(np.ascontiguousarray(x))
        self._cols = cols
        kernel = self.W.reshape(self.kernel_size * x.shape[2], self.filters)
        z = cols @ kernel + self.b
        self._out = self.activation.forward(z)
        return self._out

    def backward(self, grad):
        grad = self.activation.backward(grad, self._out)
        batch, length, channels = self._x_shape
        out_len = grad.shape[1]
        kernel = self.W.reshape(self.kernel_size * channels, self.filters)

        # Parameter gradients from the unrolled windows.
        cols_flat = self._cols.reshape(-1, self.kernel_size * channels)
        grad_flat = grad.reshape(-1, self.filters)
        self.dW[...] = (cols_flat.T @ grad_flat).reshape(self.W.shape)
        self.db[...] = grad_flat.sum(axis=0)

        # Input gradient: scatter each window's contribution back.  For a
        # fixed kernel offset k the target positions are unique, so plain
        # fancy-index addition applies (np.add.at would be ~50x slower).
        dcols = grad @ kernel.T  # (batch, out_len, kernel*ch)
        dcols = dcols.reshape(batch, out_len, self.kernel_size, channels)
        dx = np.zeros((batch, length, channels))
        positions = np.arange(out_len) * self.stride
        for k in range(self.kernel_size):
            dx[:, positions + k] += dcols[:, :, k]
        return dx

    def parameters(self):
        return [("W", self.W, self.dW), ("b", self.b, self.db)]


class MaxPool1D(Layer):
    """Max pooling over the length axis (pool_size == stride)."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._argmax: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        length, channels = input_shape
        return (length // self.pool_size, channels)

    def forward(self, x, training=False):
        self._x_shape = x.shape
        batch, length, channels = x.shape
        out_len = length // self.pool_size
        trimmed = x[:, : out_len * self.pool_size]
        windows = trimmed.reshape(batch, out_len, self.pool_size, channels)
        self._argmax = windows.argmax(axis=2)
        return windows.max(axis=2)

    def backward(self, grad):
        batch, length, channels = self._x_shape
        out_len = length // self.pool_size
        dx = np.zeros((batch, out_len, self.pool_size, channels))
        np.put_along_axis(
            dx, self._argmax[:, :, np.newaxis, :], grad[:, :, np.newaxis, :], axis=2
        )
        dx = dx.reshape(batch, out_len * self.pool_size, channels)
        if out_len * self.pool_size < length:
            pad = np.zeros((batch, length - out_len * self.pool_size, channels))
            dx = np.concatenate([dx, pad], axis=1)
        return dx


class Flatten(Layer):
    """Collapse all per-sample axes into one."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def forward(self, x, training=False):
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._x_shape)


class Reshape(Layer):
    """Reshape per-sample data, e.g. (308,) -> (308, 1) for Conv1D input."""

    def __init__(self, target_shape: Tuple[int, ...]) -> None:
        super().__init__()
        self.target_shape = tuple(target_shape)
        self._x_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        in_size = 1
        for dim in input_shape:
            in_size *= dim
        out_size = 1
        for dim in self.target_shape:
            out_size *= dim
        if in_size != out_size:
            raise ValueError(
                f"cannot reshape {input_shape} (size {in_size}) "
                f"to {self.target_shape} (size {out_size})"
            )
        return self.target_shape

    def forward(self, x, training=False):
        self._x_shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad):
        return grad.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must lie in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask
