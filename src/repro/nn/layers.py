"""Layers for the numpy NN framework (Dense, Conv1D, MaxPool1D, ...).

The paper's two architectures (Figures 2–3) need: fully connected layers
with the Table-1 activations, a 1-D convolution + max-pooling pair, flatten
and dropout.  Each layer implements ``forward(x, training)`` and
``backward(grad)`` (returning the gradient w.r.t. its input and stashing
parameter gradients), and exposes ``parameters()`` as (name, param, grad)
triples for the optimizer.

Two compute paths share each layer:

* the **legacy dispatch** (``REPRO_NN_FUSED=0``) allocates fresh arrays
  per batch — simple, and the baseline the training bench measures
  against;
* the **fused path** (default) replays the exact same matmul/ufunc
  sequence into per-layer buffers reused across batches, so it is
  bitwise identical to the legacy path while eliminating the per-batch
  allocation churn that dominates small-batch training.

Parameters are allocated in the dtype ``Sequential.build`` threads in
(``layer.dtype``, float64 by default; see :mod:`repro.nn.dtypes`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from . import contracts
from .activations import Activation, Softmax, get_activation
from .dtypes import FAST_DTYPE, fused_enabled
from .initializers import get_initializer


class Layer:
    """Base layer.

    Every subclass is automatically instrumented with the runtime
    shape/dtype contracts of :mod:`repro.nn.contracts` (active under
    pytest, toggleable via ``REPRO_CONTRACTS``).

    ``handle`` is the stable identity ``Sequential.build`` assigns
    (``m<uid>.g<generation>.L<index>``); optimizers key per-parameter
    state by it so state cannot silently attach to the wrong array when
    ``id()`` values are reused.  ``dtype`` is the compute dtype build
    threads in.  ``_buffers`` holds the fused path's reusable scratch
    arrays, keyed by role and reallocated only on shape/dtype change.
    ``need_input_grad`` (set by ``Sequential.build``) is False when no
    trainable layer sits below this one, letting the fused backward skip
    producing an input gradient nothing will consume; it defaults to
    True so standalone layers keep full behaviour.
    """

    def __init__(self) -> None:
        self.built = False
        self.handle: Optional[str] = None
        self.dtype: np.dtype = np.dtype(np.float64)
        self.need_input_grad = True
        self._buffers: Dict[str, np.ndarray] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        """Contract-wrap the ``forward``/``backward`` the subclass defines."""
        super().__init_subclass__(**kwargs)
        contracts.instrument_layer(cls)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters given the per-sample *input_shape*."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given the per-sample input shape."""
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Batched forward pass; *training* toggles train-time behaviour."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Tuple[str, np.ndarray, np.ndarray]]:
        """(name, parameter, gradient) triples; empty for stateless layers."""
        return []

    @property
    def num_parameters(self) -> int:
        """Total number of trainable scalars in this layer."""
        return sum(p.size for _n, p, _g in self.parameters())

    def _buffer(self, role: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A reusable scratch array for *role*, reallocated on shape change."""
        buf = self._buffers.get(role)
        if buf is None or buf.shape != tuple(shape) or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[role] = buf
        return buf

    def reset_transient(self) -> None:
        """Drop cached activations and scratch buffers.

        Used when cloning thread-local replicas for data-parallel fit:
        a replica must share parameters but never forward/backward
        caches with its source layer.
        """
        self._buffers = {}
        for attr in ("_x", "_out", "_cols", "_argmax", "_mask", "_cache"):
            if hasattr(self, attr):
                setattr(self, attr, None)


class Dense(Layer):
    """Fully connected layer: y = activation(x W + b).

    This is the perceptron stack of §3.5: ``units`` processing units, each
    computing delta(sum_j w_ij x_ij + b).
    """

    def __init__(
        self,
        units: int,
        activation=None,
        initializer: str = "glorot_uniform",
    ) -> None:
        super().__init__()
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = units
        self.activation: Activation = get_activation(activation)
        self.initializer = initializer
        self.W: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self.dW: Optional[np.ndarray] = None
        self.db: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    def build(self, input_shape, rng) -> None:
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat input, got shape {input_shape}")
        init = get_initializer(self.initializer)
        self.W = init((input_shape[0], self.units), rng, dtype=self.dtype)
        self.b = np.zeros(self.units, dtype=self.dtype)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.built = True

    def output_shape(self, input_shape):
        return (self.units,)

    def forward(self, x, training=False):
        self._x = x
        if not fused_enabled():
            z = x @ self.W + self.b
            self._out = self.activation.forward(z)
            return self._out
        # Fused: matmul into the reusable pre-activation buffer, add the
        # bias and activate in place — the identical op sequence, minus
        # the two intermediate temporaries.
        z = self._buffer("z", (x.shape[0], self.units), self.W.dtype)
        np.matmul(x, self.W, out=z)
        z += self.b
        self._out = self.activation.forward_inplace(z)
        return self._out

    def backward(self, grad):
        if not fused_enabled():
            if not isinstance(self.activation, Softmax):
                grad = self.activation.backward(grad, self._out)
            # else: grad already includes the fused softmax+CE derivative.
            self.dW[...] = self._x.T @ grad
            self.db[...] = grad.sum(axis=0)
            return grad @ self.W.T
        if not isinstance(self.activation, Softmax):
            grad = self.activation.backward_inplace(
                grad, self._out, buffer=self._buffer
            )
        np.matmul(self._x.T, grad, out=self.dW)
        grad.sum(axis=0, out=self.db)
        if not self.need_input_grad:
            # Bottom of the trainable stack: dx = grad @ W.T would be
            # discarded, and it is the same-size matmul as dW.
            return None
        dx = self._buffer("dx", self._x.shape, self.W.dtype)
        np.matmul(grad, self.W.T, out=dx)
        return dx

    def parameters(self):
        return [("W", self.W, self.dW), ("b", self.b, self.db)]


class Conv1D(Layer):
    """1-D convolution over (length, channels) inputs, 'valid' padding.

    Implemented with an im2col unroll so the heavy lifting is one matmul —
    important for the Table-10 scalability bench where CNN epoch time must
    scale smoothly with input size.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        activation=None,
        stride: int = 1,
        initializer: str = "glorot_uniform",
    ) -> None:
        super().__init__()
        if filters < 1 or kernel_size < 1 or stride < 1:
            raise ValueError("filters, kernel_size and stride must be >= 1")
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.activation: Activation = get_activation(activation)
        self.initializer = initializer
        self.W: Optional[np.ndarray] = None  # (kernel, in_ch, filters)
        self.b: Optional[np.ndarray] = None
        self.dW: Optional[np.ndarray] = None
        self.db: Optional[np.ndarray] = None
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._out: Optional[np.ndarray] = None

    def build(self, input_shape, rng) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"Conv1D expects (length, channels) input, got {input_shape}"
            )
        length, channels = input_shape
        if length < self.kernel_size:
            raise ValueError("input shorter than kernel")
        init = get_initializer(self.initializer)
        self.W = init(
            (self.kernel_size, channels, self.filters), rng, dtype=self.dtype
        )
        self.b = np.zeros(self.filters, dtype=self.dtype)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self.built = True

    def _out_length(self, length: int) -> int:
        return (length - self.kernel_size) // self.stride + 1

    def output_shape(self, input_shape):
        return (self._out_length(input_shape[0]), self.filters)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """(batch, out_len, kernel, ch) sliding-window view of contiguous *x*."""
        batch, length, channels = x.shape
        out_len = self._out_length(length)
        strides = x.strides
        return np.lib.stride_tricks.as_strided(
            x,
            shape=(batch, out_len, self.kernel_size, channels),
            strides=(strides[0], strides[1] * self.stride, strides[1], strides[2]),
            writeable=False,
        )

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(batch, length, ch) -> (batch, out_len, kernel*ch) window unroll."""
        batch, length, channels = x.shape
        out_len = self._out_length(length)
        return self._windows(x).reshape(batch, out_len, self.kernel_size * channels)

    def forward(self, x, training=False):
        self._x_shape = x.shape
        if not fused_enabled():
            cols = self._im2col(np.ascontiguousarray(x))
            self._cols = cols
            kernel = self.W.reshape(self.kernel_size * x.shape[2], self.filters)
            z = cols @ kernel + self.b
            self._out = self.activation.forward(z)
            return self._out
        x = np.ascontiguousarray(x)
        batch, length, channels = x.shape
        out_len = self._out_length(length)
        # im2col into the reusable unroll buffer instead of a fresh
        # reshape-copy every batch.  One big slice copy per kernel offset
        # beats a single 4D strided copyto, whose innermost loop is only
        # ``channels`` elements wide.
        cols = self._buffer(
            "cols", (batch, out_len, self.kernel_size * channels), self.W.dtype
        )
        cols4 = cols.reshape(batch, out_len, self.kernel_size, channels)
        span = (out_len - 1) * self.stride + 1
        for k in range(self.kernel_size):
            cols4[:, :, k] = x[:, k : k + span : self.stride]
        self._cols = cols
        kernel = self.W.reshape(self.kernel_size * channels, self.filters)
        z = self._buffer("z", (batch, out_len, self.filters), self.W.dtype)
        # One flat GEMM over (batch*out_len) rows; each output element is
        # the same kernel_size*channels-term dot product the batched 3D
        # matmul computes, in the same order.
        np.matmul(
            cols.reshape(-1, self.kernel_size * channels),
            kernel,
            out=z.reshape(-1, self.filters),
        )
        z += self.b
        self._out = self.activation.forward_inplace(z)
        return self._out

    def backward(self, grad):
        batch, length, channels = self._x_shape
        out_len = grad.shape[1]
        kernel = self.W.reshape(self.kernel_size * channels, self.filters)
        positions = np.arange(out_len) * self.stride

        if not fused_enabled():
            grad = self.activation.backward(grad, self._out)
            # Parameter gradients from the unrolled windows.
            cols_flat = self._cols.reshape(-1, self.kernel_size * channels)
            grad_flat = grad.reshape(-1, self.filters)
            self.dW[...] = (cols_flat.T @ grad_flat).reshape(self.W.shape)
            self.db[...] = grad_flat.sum(axis=0)
            # Input gradient: scatter each window's contribution back.
            # For a fixed kernel offset k the target positions are
            # unique, so plain fancy-index addition applies (np.add.at
            # would be ~50x slower).
            dcols = grad @ kernel.T  # (batch, out_len, kernel*ch)
            dcols = dcols.reshape(batch, out_len, self.kernel_size, channels)
            dx = np.zeros((batch, length, channels))
            for k in range(self.kernel_size):
                dx[:, positions + k] += dcols[:, :, k]
            return dx

        grad = self.activation.backward_inplace(
            grad, self._out, buffer=self._buffer
        )
        cols_flat = self._cols.reshape(-1, self.kernel_size * channels)
        grad_flat = grad.reshape(-1, self.filters)
        np.matmul(
            cols_flat.T, grad_flat,
            out=self.dW.reshape(self.kernel_size * channels, self.filters),
        )
        grad_flat.sum(axis=0, out=self.db)
        if not self.need_input_grad:
            # No trainable layer below: skip the dcols matmul and the
            # whole window scatter (the most expensive part of backward).
            return None
        dcols = self._buffer(
            "dcols", (batch, out_len, self.kernel_size * channels), self.W.dtype
        )
        np.matmul(grad, kernel.T, out=dcols)
        dcols4 = dcols.reshape(batch, out_len, self.kernel_size, channels)
        dx = self._buffer("dx", (batch, length, channels), self.W.dtype)
        dx.fill(0.0)
        for k in range(self.kernel_size):
            dx[:, positions + k] += dcols4[:, :, k]
        return dx

    def parameters(self):
        return [("W", self.W, self.dW), ("b", self.b, self.db)]


class MaxPool1D(Layer):
    """Max pooling over the length axis (pool_size == stride)."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._argmax: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        length, channels = input_shape
        return (length // self.pool_size, channels)

    def forward(self, x, training=False):
        self._x_shape = x.shape
        batch, length, channels = x.shape
        out_len = length // self.pool_size
        trimmed = x[:, : out_len * self.pool_size]
        windows = trimmed.reshape(batch, out_len, self.pool_size, channels)
        if not fused_enabled():
            self._argmax = windows.argmax(axis=2)
            return windows.max(axis=2)
        out = self._buffer("out", (batch, out_len, channels), x.dtype)
        if self.pool_size == 2:
            # argmax over a size-2 strided axis is one of numpy's worst
            # code paths (an elementwise reduce over a non-contiguous
            # middle axis dominated the whole CNN epoch); a single
            # comparison computes the same thing.  ``w1 > w0`` matches
            # argmax's first-max-on-ties rule exactly: ties pick index 0.
            w0 = windows[:, :, 0]
            w1 = windows[:, :, 1]
            winner = self._buffer("winner", (batch, out_len, channels), np.bool_)
            np.greater(w1, w0, out=winner)
            self._argmax = winner
            np.maximum(w0, w1, out=out)
            return out
        argmax = self._buffer("argmax", (batch, out_len, channels), np.intp)
        windows.argmax(axis=2, out=argmax)
        self._argmax = argmax
        windows.max(axis=2, out=out)
        return out

    def backward(self, grad):
        batch, length, channels = self._x_shape
        out_len = length // self.pool_size
        if not fused_enabled():
            dx = np.zeros((batch, out_len, self.pool_size, channels))
        else:
            dx = self._buffer(
                "dx", (batch, out_len, self.pool_size, channels), grad.dtype
            )
            if self._argmax.dtype != np.bool_:
                dx.fill(0.0)  # the scatter only writes the winning slots
        if self._argmax.dtype == np.bool_:
            # pool_size == 2 fused path: route grad to the winning slot
            # with three elementwise passes instead of the (much slower)
            # put_along_axis scatter.  ``grad * winner`` parks ``-0.0``
            # in losing slots when grad is negative, so ``+ 0.0``
            # normalises every zero to ``+0.0`` — after which the result
            # is bitwise identical to the scatter (verified down to the
            # uint32 view), including the untouched-slot zeros.
            winner = self._argmax
            dx0 = dx[:, :, 0]
            dx1 = dx[:, :, 1]
            np.multiply(grad, winner, out=dx1)
            np.subtract(grad, dx1, out=dx0)  # winners: grad-grad = +0.0
            np.add(dx1, 0.0, out=dx1)
        else:
            np.put_along_axis(
                dx,
                self._argmax[:, :, np.newaxis, :],
                grad[:, :, np.newaxis, :],
                axis=2,
            )
        dx = dx.reshape(batch, out_len * self.pool_size, channels)
        if out_len * self.pool_size < length:
            pad = np.zeros(
                (batch, length - out_len * self.pool_size, channels),
                dtype=dx.dtype,
            )
            dx = np.concatenate([dx, pad], axis=1)
        return dx


class Flatten(Layer):
    """Collapse all per-sample axes into one."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def forward(self, x, training=False):
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        return grad.reshape(self._x_shape)


class Reshape(Layer):
    """Reshape per-sample data, e.g. (308,) -> (308, 1) for Conv1D input."""

    def __init__(self, target_shape: Tuple[int, ...]) -> None:
        super().__init__()
        self.target_shape = tuple(target_shape)
        self._x_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape):
        in_size = 1
        for dim in input_shape:
            in_size *= dim
        out_size = 1
        for dim in self.target_shape:
            out_size *= dim
        if in_size != out_size:
            raise ValueError(
                f"cannot reshape {input_shape} (size {in_size}) "
                f"to {self.target_shape} (size {out_size})"
            )
        return self.target_shape

    def forward(self, x, training=False):
        self._x_shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad):
        return grad.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time.

    With ``seed=None`` (the default) the layer derives its mask stream
    from the build-time model rng via ``Generator.spawn`` — every
    Dropout in a stack gets an *independent* stream tied to the model
    seed, and spawning does not advance the parent stream, so the
    weight initialisation of later layers is unaffected.  An explicit
    integer ``seed`` pins the stream directly (legacy behaviour, used
    by tests that exercise a lone layer without a surrounding model).
    """

    def __init__(self, rate: float, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must lie in [0, 1)")
        self.rate = rate
        self.seed = seed
        self._rng = np.random.default_rng(0 if seed is None else seed)
        self._mask: Optional[np.ndarray] = None

    def build(self, input_shape, rng) -> None:
        if self.seed is None:
            self._rng = rng.spawn(1)[0]
        else:
            self._rng = np.random.default_rng(self.seed)
        self.built = True

    def reseed(self, seed_source: Union[int, np.random.SeedSequence]) -> None:
        """Replace the mask stream (data-parallel fit reseeds per chunk)."""
        self._rng = np.random.default_rng(seed_source)

    def forward(self, x, training=False):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        if fused_enabled() and x.dtype == FAST_DTYPE:
            # Single-precision fast path (tolerance-only, never pinned):
            # keep the mask as booleans with a separate 1/keep scale — no
            # float mask materialisation.  The uniforms are still drawn
            # in float64 exactly like the reference path, so the mask
            # stream is *dtype-invariant*: a float32 model drops the same
            # units as its float64 twin and the parity gap stays pure
            # arithmetic, not resampling noise.
            r = self._buffer("rand", x.shape, np.float64)
            self._rng.random(out=r)
            mask = self._buffer("mask", x.shape, np.bool_)
            np.less(r, keep, out=mask)
            self._mask = mask
            out = self._buffer("out", x.shape, x.dtype)
            np.multiply(x, mask, out=out)
            out *= 1.0 / keep
            return out
        # float64 reference: this exact draw/compare/divide sequence is
        # what the determinism pins and worker-invariance are stated
        # against — do not reorder.
        mask = ((self._rng.random(x.shape) < keep) / keep).astype(
            x.dtype, copy=False
        )
        self._mask = mask
        if not fused_enabled():
            return x * mask
        out = self._buffer("out", x.shape, x.dtype)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad):
        if self._mask is None:
            return grad
        if self._mask.dtype == np.bool_:
            np.multiply(grad, self._mask, out=grad)
            grad *= 1.0 / (1.0 - self.rate)
            return grad
        if not fused_enabled():
            return grad * self._mask
        np.multiply(grad, self._mask, out=grad)
        return grad
