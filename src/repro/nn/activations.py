"""Activation functions of Table 1 (sigmoid, tanh, ReLU, softmax).

Each activation exposes ``forward`` and ``backward`` (the local gradient
composed with the incoming upstream gradient).  Softmax's backward assumes
it is paired with categorical cross-entropy, where the combined gradient is
``probs - targets`` and is produced by the loss itself; using softmax
mid-network therefore raises.

The ``*_inplace`` variants back the fused layer kernels: they replay the
exact elementwise op sequence of their out-of-place counterparts into the
caller's buffer, so for any given input the results are bitwise identical
— only the allocations disappear.
"""

from __future__ import annotations

import numpy as np


class Activation:
    """Base class: stateless elementwise nonlinearity."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Elementwise activation of the pre-activations *z*."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        """Upstream *grad* times the local derivative (given the forward output)."""
        raise NotImplementedError

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        """Activate *x* writing into *x* itself; defaults to :meth:`forward`.

        Subclasses override with a buffer-reusing op sequence that is
        bitwise identical to ``forward``; the default fallback simply
        allocates.
        """
        return self.forward(x)

    def backward_inplace(
        self, grad: np.ndarray, output: np.ndarray, buffer=None
    ) -> np.ndarray:
        """Like :meth:`backward` but may overwrite *grad*; defaults to it.

        *buffer*, when given, is the owning layer's ``_buffer`` allocator
        — activations are stateless singletons shared across layers (and
        data-parallel replicas), so any scratch they need must live on
        the layer that calls them.
        """
        return self.backward(grad, output)


class Sigmoid(Activation):
    """delta(z) = 1 / (1 + e^-z)."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad * output * (1.0 - output)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        np.clip(x, -60.0, 60.0, out=x)
        np.negative(x, out=x)
        np.exp(x, out=x)
        x += 1.0
        np.divide(1.0, x, out=x)
        return x

    def backward_inplace(
        self, grad: np.ndarray, output: np.ndarray, buffer=None
    ) -> np.ndarray:
        complement = 1.0 - output
        np.multiply(grad, output, out=grad)
        grad *= complement
        return grad


class Tanh(Activation):
    """delta(z) = tanh(z)."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad * (1.0 - output * output)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        np.tanh(x, out=x)
        return x

    def backward_inplace(
        self, grad: np.ndarray, output: np.ndarray, buffer=None
    ) -> np.ndarray:
        np.multiply(grad, 1.0 - output * output, out=grad)
        return grad


class ReLU(Activation):
    """delta(z) = max(0, z)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, x)

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad * (output > 0.0)

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        np.maximum(x, 0.0, out=x)
        return x

    def backward_inplace(
        self, grad: np.ndarray, output: np.ndarray, buffer=None
    ) -> np.ndarray:
        if buffer is not None:
            # np.multiply(grad, mask) with a preallocated bool mask is
            # bitwise identical to multiplying by a fresh ``output > 0``
            # array — only the per-batch allocation disappears.
            mask = buffer("relu_mask", output.shape, np.bool_)
            np.greater(output, 0.0, out=mask)
            np.multiply(grad, mask, out=grad)
            return grad
        np.multiply(grad, output > 0.0, out=grad)
        return grad


class Softmax(Activation):
    """delta(z)_i = e^{z_i} / sum_j e^{z_j} along the last axis."""

    name = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exps = np.exp(shifted)
        return exps / np.sum(exps, axis=-1, keepdims=True)

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        raise RuntimeError(
            "softmax backward is fused into CategoricalCrossEntropy; "
            "use softmax only as the final activation"
        )

    def forward_inplace(self, x: np.ndarray) -> np.ndarray:
        peak = np.max(x, axis=-1, keepdims=True)
        np.subtract(x, peak, out=x)
        np.exp(x, out=x)
        total = np.sum(x, axis=-1, keepdims=True)
        np.divide(x, total, out=x)
        return x


class Identity(Activation):
    """Linear pass-through."""

    name = "linear"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad


ACTIVATIONS = {
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
    "softmax": Softmax,
    "linear": Identity,
    None: Identity,
}


def get_activation(name) -> Activation:
    """Resolve an activation by name (or pass an instance through)."""
    if isinstance(name, Activation):
        return name
    if name not in ACTIVATIONS:
        raise KeyError(f"unknown activation: {name!r}")
    return ACTIVATIONS[name]()
