"""Activation functions of Table 1 (sigmoid, tanh, ReLU, softmax).

Each activation exposes ``forward`` and ``backward`` (the local gradient
composed with the incoming upstream gradient).  Softmax's backward assumes
it is paired with categorical cross-entropy, where the combined gradient is
``probs - targets`` and is produced by the loss itself; using softmax
mid-network therefore raises.
"""

from __future__ import annotations

import numpy as np


class Activation:
    """Base class: stateless elementwise nonlinearity."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Elementwise activation of the pre-activations *z*."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        """Upstream *grad* times the local derivative (given the forward output)."""
        raise NotImplementedError


class Sigmoid(Activation):
    """delta(z) = 1 / (1 + e^-z)."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad * output * (1.0 - output)


class Tanh(Activation):
    """delta(z) = tanh(z)."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad * (1.0 - output * output)


class ReLU(Activation):
    """delta(z) = max(0, z)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, x)

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad * (output > 0.0)


class Softmax(Activation):
    """delta(z)_i = e^{z_i} / sum_j e^{z_j} along the last axis."""

    name = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - np.max(x, axis=-1, keepdims=True)
        exps = np.exp(shifted)
        return exps / np.sum(exps, axis=-1, keepdims=True)

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        raise RuntimeError(
            "softmax backward is fused into CategoricalCrossEntropy; "
            "use softmax only as the final activation"
        )


class Identity(Activation):
    """Linear pass-through."""

    name = "linear"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad: np.ndarray, output: np.ndarray) -> np.ndarray:
        return grad


ACTIVATIONS = {
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
    "softmax": Softmax,
    "linear": Identity,
    None: Identity,
}


def get_activation(name) -> Activation:
    """Resolve an activation by name (or pass an instance through)."""
    if isinstance(name, Activation):
        return name
    if name not in ACTIVATIONS:
        raise KeyError(f"unknown activation: {name!r}")
    return ACTIVATIONS[name]()
