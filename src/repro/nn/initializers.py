"""Weight initializers for the numpy NN framework.

Every initializer draws in float64 and only then casts to the requested
compute dtype: the random stream (and, for float64, the exact bit
pattern) is therefore identical across dtypes, so a float32 model starts
from the rounded float64 reference weights rather than from a different
draw.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(
    shape, rng: np.random.Generator, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Glorot/Xavier uniform — Keras's default for Dense/Conv layers.

    The fan-in/fan-out are taken from the first/last axis, which matches
    Dense ``(in, out)`` and Conv1D ``(width, in_ch, out_ch)`` kernels.
    """
    fan_in = shape[0] if len(shape) < 3 else shape[0] * shape[1]
    fan_out = shape[-1] if len(shape) < 3 else shape[0] * shape[2]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype, copy=False)


def he_uniform(
    shape, rng: np.random.Generator, dtype: np.dtype = np.float64
) -> np.ndarray:
    """He uniform — suited to ReLU stacks."""
    fan_in = shape[0] if len(shape) < 3 else shape[0] * shape[1]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(dtype, copy=False)


def zeros(
    shape, rng: np.random.Generator, dtype: np.dtype = np.float64
) -> np.ndarray:
    """All-zero initializer (biases).

    ``rng`` is unused but required so every initializer shares the
    ``(shape, rng, dtype)`` signature the determinism rule enforces.
    """
    return np.zeros(shape, dtype=dtype)


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_uniform": he_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Resolve an initializer by name; raises KeyError for unknown names."""
    if name not in INITIALIZERS:
        raise KeyError(f"unknown initializer: {name!r}")
    return INITIALIZERS[name]
