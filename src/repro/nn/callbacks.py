"""Training callbacks: early stopping and history tracking.

§5.6: "Each network is trained until it converges, using an Early Stopping
mechanism that checks if there are any changes in the loss function from
one epoch to the next."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs


@dataclass
class History:
    """Per-epoch metric traces collected during ``Sequential.fit``."""

    epochs: int = 0
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, **values: float) -> None:
        """Append one epoch's metric values.

        Each value is mirrored into the ``nn.history.<name>`` obs
        histogram, so an enabled registry captures the per-epoch
        loss/accuracy/epoch-time series across every ``fit`` of a run.
        """
        self.epochs += 1
        for name, value in values.items():
            value = float(value)
            self.metrics.setdefault(name, []).append(value)
            obs.histogram(f"nn.history.{name}").observe(value)

    def last(self, name: str) -> Optional[float]:
        """Most recent value of metric *name*, or None."""
        series = self.metrics.get(name)
        return series[-1] if series else None


class EarlyStopping:
    """Stop when the monitored loss stops improving.

    Parameters
    ----------
    monitor:
        Metric name in the history (default ``"loss"``).
    min_delta:
        Minimum decrease that counts as an improvement — the paper's
        "any changes in the loss function from one epoch to the next".
    patience:
        Number of non-improving epochs tolerated before stopping.
    """

    def __init__(
        self,
        monitor: str = "loss",
        min_delta: float = 1e-4,
        patience: int = 3,
    ) -> None:
        if patience < 0:
            raise ValueError("patience must be >= 0")
        self.monitor = monitor
        self.min_delta = min_delta
        self.patience = patience
        self.best: Optional[float] = None
        self.wait = 0
        self.stopped_epoch: Optional[int] = None

    def update(self, history: History) -> bool:
        """Record the newest epoch; returns True when training should stop."""
        value = history.last(self.monitor)
        if value is None:
            return False
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.wait = 0
            return False
        self.wait += 1
        if self.wait > self.patience:
            self.stopped_epoch = history.epochs
            return True
        return False

    def reset(self) -> None:
        """Clear the tracked best value and patience counter."""
        self.best = None
        self.wait = 0
        self.stopped_epoch = None
