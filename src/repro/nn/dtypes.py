"""Compute-dtype resolution for the NN stack.

float64 is the default and the *bitwise-deterministic reference*: every
determinism pin in the test suite, the serving online/offline parity
guarantee, and the resilience resume contracts are stated against it.
float32 is the opt-in raw-speed path (roughly 2x memory bandwidth and
SIMD width on the matmul hot loops) and is only tolerance-comparable to
the reference — never pin float32 results bitwise.

Because float32 weakens the determinism story, the static analyzer's
nondeterminism rule forbids hard-coded ``float32`` dtypes anywhere in
result-affecting code (``core``, ``nn``, ``embeddings``) *except* this
module: the only supported ways to get a float32 model are the explicit
``Sequential(dtype="float32")`` / ``PipelineConfig.nn_dtype`` knobs or
the ``REPRO_NN_DTYPE`` environment variable, all of which funnel
through :func:`resolve_dtype` below.

``REPRO_NN_FUSED`` (default on) toggles the fused/buffered forward and
backward kernels; ``REPRO_NN_FUSED=0`` restores the legacy
allocate-per-batch layer dispatch, kept both as the training-bench
baseline and as a bitwise differential check against the fused path.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

#: Environment variable selecting the compute dtype when the model does
#: not pass one explicitly ("float32" or "float64").
DTYPE_ENV = "REPRO_NN_DTYPE"

#: Environment variable toggling the fused/buffered kernels (default on).
FUSED_ENV = "REPRO_NN_FUSED"

#: The bitwise-deterministic reference dtype.
DEFAULT_DTYPE = np.dtype("float64")

#: The opt-in raw-speed dtype.  Layers compare against this constant
#: (never a literal) when they pick a single-precision kernel variant.
FAST_DTYPE = np.dtype("float32")

#: The dtypes the compute path accepts.  float32 is opt-in only.
ALLOWED_DTYPES = (np.dtype("float32"), np.dtype("float64"))


def resolve_dtype(dtype: Optional[Union[str, np.dtype, type]] = None) -> np.dtype:
    """Resolve the compute dtype: explicit argument > ``REPRO_NN_DTYPE`` > float64.

    Only float32 and float64 are accepted; anything else raises
    ``ValueError`` so a typo cannot silently train in an unsupported
    precision.
    """
    if dtype is None:
        raw = os.environ.get(DTYPE_ENV, "").strip()
        if not raw:
            return DEFAULT_DTYPE
        dtype = raw
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ValueError(f"unrecognised nn dtype: {dtype!r}") from exc
    if resolved not in ALLOWED_DTYPES:
        allowed = ", ".join(d.name for d in ALLOWED_DTYPES)
        raise ValueError(
            f"nn dtype must be one of ({allowed}), got {resolved.name!r}"
        )
    return resolved


def fused_enabled() -> bool:
    """True unless ``REPRO_NN_FUSED`` disables the fused/buffered kernels.

    The fused kernels replay the exact ufunc/matmul sequence of the
    legacy dispatch into preallocated buffers, so toggling this flag is
    bitwise-neutral — it exists for the training bench's baseline
    measurement and for differential tests.
    """
    flag = os.environ.get(FUSED_ENV)
    if flag is None:
        return True
    return flag.strip().lower() not in ("0", "false", "")
