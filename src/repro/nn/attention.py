"""Single-head self-attention — the §6 future-work direction, in numpy.

The paper's conclusion plans to adopt transformer encoders (BERT, XLNet,
ALBERT, ELECTRA) "to take advantage of contextual information".  Full
pretrained transformers are out of scope offline, but the mechanism that
powers them is not: this module implements scaled dot-product
self-attention with a complete backward pass, so an attention-based
classifier (`build_attention_network`) can be compared against the
paper's MLP/CNN on the same datasets.

Shapes follow the Conv1D convention: per-sample input is
``(length, channels)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .activations import Softmax
from .initializers import get_initializer
from .layers import Dense, Flatten, Layer, Reshape
from .network import Sequential


class SelfAttention(Layer):
    """Scaled dot-product self-attention with learned Q/K/V projections.

    y = softmax(Q K^T / sqrt(d)) V,  Q = x W_q, K = x W_k, V = x W_v.

    A single head is enough to demonstrate (and test, via finite
    differences) the mechanism; stacking multiple ``SelfAttention``
    layers composes depth the way encoder blocks do.
    """

    def __init__(
        self,
        key_dim: int,
        initializer: str = "glorot_uniform",
    ) -> None:
        super().__init__()
        if key_dim < 1:
            raise ValueError("key_dim must be >= 1")
        self.key_dim = key_dim
        self.initializer = initializer
        self.Wq: Optional[np.ndarray] = None
        self.Wk: Optional[np.ndarray] = None
        self.Wv: Optional[np.ndarray] = None
        self.dWq: Optional[np.ndarray] = None
        self.dWk: Optional[np.ndarray] = None
        self.dWv: Optional[np.ndarray] = None
        self._cache: Optional[Tuple] = None

    def build(self, input_shape, rng) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"SelfAttention expects (length, channels) input, got {input_shape}"
            )
        _length, channels = input_shape
        init = get_initializer(self.initializer)
        self.Wq = init((channels, self.key_dim), rng, dtype=self.dtype)
        self.Wk = init((channels, self.key_dim), rng, dtype=self.dtype)
        self.Wv = init((channels, self.key_dim), rng, dtype=self.dtype)
        self.dWq = np.zeros_like(self.Wq)
        self.dWk = np.zeros_like(self.Wk)
        self.dWv = np.zeros_like(self.Wv)
        self.built = True

    def output_shape(self, input_shape):
        return (input_shape[0], self.key_dim)

    def forward(self, x, training=False):
        Q = x @ self.Wq                       # (b, L, d)
        K = x @ self.Wk
        V = x @ self.Wv
        scale = 1.0 / np.sqrt(self.key_dim)
        scores = np.einsum("bld,bmd->blm", Q, K) * scale   # (b, L, L)
        attn = Softmax().forward(scores)
        out = np.einsum("blm,bmd->bld", attn, V)
        self._cache = (x, Q, K, V, attn, scale)
        return out

    def backward(self, grad):
        x, Q, K, V, attn, scale = self._cache

        # out = attn @ V
        d_attn = np.einsum("bld,bmd->blm", grad, V)          # (b, L, L)
        dV = np.einsum("blm,bld->bmd", attn, grad)           # (b, L, d)

        # Softmax backward along the last axis:
        # d_scores = attn * (d_attn - sum(d_attn * attn, keepdims))
        inner = np.sum(d_attn * attn, axis=-1, keepdims=True)
        d_scores = attn * (d_attn - inner)

        dQ = np.einsum("blm,bmd->bld", d_scores, K) * scale
        dK = np.einsum("blm,bld->bmd", d_scores, Q) * scale

        batch = x.shape[0]
        x_flat = x.reshape(-1, x.shape[2])
        self.dWq[...] = x_flat.T @ dQ.reshape(-1, self.key_dim)
        self.dWk[...] = x_flat.T @ dK.reshape(-1, self.key_dim)
        self.dWv[...] = x_flat.T @ dV.reshape(-1, self.key_dim)

        dx = (
            dQ @ self.Wq.T
            + dK @ self.Wk.T
            + dV @ self.Wv.T
        )
        return dx

    def parameters(self):
        return [
            ("Wq", self.Wq, self.dWq),
            ("Wk", self.Wk, self.dWk),
            ("Wv", self.Wv, self.dWv),
        ]


class MeanPool1D(Layer):
    """Mean over the length axis: (length, channels) -> (channels,).

    The standard pooling for attention encoders feeding a classifier.
    """

    def __init__(self) -> None:
        super().__init__()
        self._length: Optional[int] = None

    def output_shape(self, input_shape):
        return (input_shape[1],)

    def forward(self, x, training=False):
        self._length = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad):
        expanded = np.repeat(grad[:, np.newaxis, :], self._length, axis=1)
        return expanded / self._length


def build_attention_network(
    input_dim: int,
    n_classes: int = 3,
    tokens: int = 20,
    key_dim: int = 32,
    dense_units: int = 64,
    seed: int = 0,
) -> Sequential:
    """An attention-based classifier over a flat feature vector.

    The input vector is reshaped into *tokens* pseudo-tokens of width
    input_dim / tokens (padding is the caller's concern: input_dim must
    be divisible by tokens), passed through self-attention, mean-pooled,
    and classified — the minimal "transformer-flavoured" counterpart of
    the paper's Figure-2/3 networks.
    """
    if input_dim % tokens != 0:
        raise ValueError(
            f"input_dim {input_dim} must be divisible by tokens {tokens}"
        )
    channels = input_dim // tokens
    model = Sequential(seed=seed)
    model.add(Reshape((tokens, channels)))
    model.add(SelfAttention(key_dim))
    model.add(MeanPool1D())
    model.add(Dense(dense_units, activation="relu"))
    model.add(Dense(n_classes, activation="softmax"))
    model.build((input_dim,))
    return model
