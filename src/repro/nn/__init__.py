"""Numpy deep-learning framework (§3.5) — the Keras/TensorFlow substitute.

Layers, Table-1 activations, Eq-12 losses, Eq-13–16 optimizers, the
Sequential training loop with early stopping (§5.6), Eq-17 metrics, and
the paper's MLP/CNN architectures (Figures 2–3).
"""

from .activations import ReLU, Sigmoid, Softmax, Tanh, get_activation
from .attention import MeanPool1D, SelfAttention, build_attention_network
from .architectures import (
    PAPER_CONFIGURATIONS,
    build_cnn,
    build_mlp,
    build_paper_network,
    paper_optimizer,
)
from .callbacks import EarlyStopping, History
from .contracts import ContractError, contracts_enabled
from .dtypes import DEFAULT_DTYPE, fused_enabled, resolve_dtype
from .layers import Conv1D, Dense, Dropout, Flatten, Layer, MaxPool1D, Reshape
from .losses import (
    BinaryCrossEntropy,
    CategoricalCrossEntropy,
    MeanSquaredError,
    get_loss,
)
from .metrics import (
    ClassReport,
    accuracy,
    average_accuracy,
    classification_report,
    confusion_matrix,
    error_rate,
    macro_f1,
    msle,
    one_hot,
)
from .network import Sequential
from .optimizers import SGD, Adadelta, Adagrad, Adam, get_optimizer

__all__ = [
    "ContractError",
    "contracts_enabled",
    "DEFAULT_DTYPE",
    "resolve_dtype",
    "fused_enabled",
    "Layer",
    "Dense",
    "Conv1D",
    "MaxPool1D",
    "Flatten",
    "Reshape",
    "Dropout",
    "Sequential",
    "SGD",
    "Adagrad",
    "Adadelta",
    "Adam",
    "get_optimizer",
    "BinaryCrossEntropy",
    "CategoricalCrossEntropy",
    "MeanSquaredError",
    "get_loss",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Softmax",
    "get_activation",
    "EarlyStopping",
    "History",
    "accuracy",
    "average_accuracy",
    "error_rate",
    "confusion_matrix",
    "classification_report",
    "ClassReport",
    "macro_f1",
    "msle",
    "one_hot",
    "build_mlp",
    "build_cnn",
    "build_paper_network",
    "build_attention_network",
    "SelfAttention",
    "MeanPool1D",
    "paper_optimizer",
    "PAPER_CONFIGURATIONS",
]
