"""The paper's two prediction networks (Figures 2–3) and the four named
configurations of §5.6.

* **MLP** (Figure 2): Dense(512, relu) -> Dropout -> Dense(128, relu) ->
  Dropout -> Dense(3, softmax) over the flat Doc2Vec(+metadata) input.
* **CNN** (Figure 3): reshape the input vector to (dim, 1), Conv1D(64,
  kernel 5, relu) -> MaxPool1D(2) -> Flatten -> Dense(128, relu) ->
  Dense(3, softmax).

The figures in the paper give the layer types but not every width; the
widths here were chosen to match the parameter scale implied by the
reported epoch timings (Table 10) and are centralised so the benchmarks
and examples stay consistent.

The four named configurations:

* ``MLP 1`` — MLP + SGD(lr=0.5)
* ``MLP 2`` — MLP + ADADELTA(lr=2)
* ``CNN 1`` — CNN + SGD(lr=0.5)
* ``CNN 2`` — CNN + ADADELTA(lr=2)
"""

from __future__ import annotations

from typing import Dict, Tuple

from .layers import Conv1D, Dense, Dropout, Flatten, MaxPool1D, Reshape
from .network import Sequential
from .optimizers import SGD, Adadelta, Optimizer


def build_mlp(
    input_dim: int,
    n_classes: int = 3,
    hidden: Tuple[int, int] = (512, 128),
    dropout: float = 0.2,
    seed: int = 0,
    dtype=None,
) -> Sequential:
    """The Figure-2 MLP for a flat *input_dim* feature vector.

    Dropout streams are derived per layer from the model seed at build
    time (``Generator.spawn``), so stacked Dropouts draw independent
    masks.  *dtype* selects the compute dtype (default: the float64
    reference; see :mod:`repro.nn.dtypes`).
    """
    if input_dim < 1:
        raise ValueError("input_dim must be >= 1")
    model = Sequential(seed=seed, dtype=dtype)
    model.add(Dense(hidden[0], activation="relu"))
    if dropout > 0:
        model.add(Dropout(dropout))
    model.add(Dense(hidden[1], activation="relu"))
    if dropout > 0:
        model.add(Dropout(dropout))
    model.add(Dense(n_classes, activation="softmax"))
    model.build((input_dim,))
    return model


def build_cnn(
    input_dim: int,
    n_classes: int = 3,
    filters: int = 32,
    kernel_size: int = 5,
    pool_size: int = 2,
    dense_units: int = 64,
    seed: int = 0,
    dtype=None,
) -> Sequential:
    """The Figure-3 CNN: convolution + max pooling over the input vector."""
    if input_dim < kernel_size:
        raise ValueError("input_dim must be >= kernel_size")
    model = Sequential(seed=seed, dtype=dtype)
    model.add(Reshape((input_dim, 1)))
    model.add(Conv1D(filters, kernel_size, activation="relu"))
    model.add(MaxPool1D(pool_size))
    model.add(Flatten())
    model.add(Dense(dense_units, activation="relu"))
    model.add(Dense(n_classes, activation="softmax"))
    model.build((input_dim,))
    return model


def paper_optimizer(name: str) -> Optimizer:
    """The two optimizer settings of §5.6 by configuration suffix."""
    if name == "sgd":
        return SGD(learning_rate=0.5)
    if name == "adadelta":
        return Adadelta(learning_rate=2.0)
    raise KeyError(f"unknown paper optimizer: {name!r}")


# Configuration name -> (architecture, optimizer) builder arguments.
PAPER_CONFIGURATIONS: Dict[str, Tuple[str, str]] = {
    "MLP 1": ("mlp", "sgd"),
    "MLP 2": ("mlp", "adadelta"),
    "CNN 1": ("cnn", "sgd"),
    "CNN 2": ("cnn", "adadelta"),
}


def build_paper_network(
    name: str,
    input_dim: int,
    n_classes: int = 3,
    seed: int = 0,
    dtype=None,
) -> Sequential:
    """Build and compile one of the four §5.6 configurations by name."""
    if name not in PAPER_CONFIGURATIONS:
        raise KeyError(
            f"unknown configuration {name!r}; expected one of "
            f"{sorted(PAPER_CONFIGURATIONS)}"
        )
    arch, optimizer_name = PAPER_CONFIGURATIONS[name]
    if arch == "mlp":
        model = build_mlp(input_dim, n_classes=n_classes, seed=seed, dtype=dtype)
    else:
        model = build_cnn(input_dim, n_classes=n_classes, seed=seed, dtype=dtype)
    model.compile(
        optimizer=paper_optimizer(optimizer_name),
        loss="categorical_crossentropy",
    )
    return model
