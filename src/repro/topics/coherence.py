"""Topic quality metrics: UMass coherence and topic diversity.

Used by the NMF-vs-LDA design-choice ablation (§4.9): the paper cites [7]
(Chen et al. 2019) for NMF producing comparable topics in less time; these
metrics quantify "comparable" on our synthetic corpora.
"""

from __future__ import annotations

import math
from collections import Counter
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple


def _cooccurrence_counts(
    documents: Sequence[Sequence[str]], terms: FrozenSet[str]
) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Document frequencies and pair co-document frequencies over *terms*."""
    doc_freq: Counter = Counter()
    pair_freq: Counter = Counter()
    for tokens in documents:
        present = sorted(terms.intersection(tokens))
        doc_freq.update(present)
        for a, b in combinations(present, 2):
            pair_freq[(a, b)] += 1
    return dict(doc_freq), dict(pair_freq)


def umass_coherence(
    topic_terms: Sequence[str],
    documents: Sequence[Sequence[str]],
    epsilon: float = 1.0,
) -> float:
    """UMass coherence of one topic's top terms.

    C = sum over ordered pairs (w_i, w_j), i > j, of
    log((D(w_i, w_j) + eps) / D(w_j)).  Higher (closer to 0) is better.
    Terms never appearing in the corpus are skipped.
    """
    terms = [t for t in topic_terms]
    doc_freq, pair_freq = _cooccurrence_counts(documents, frozenset(terms))
    score = 0.0
    count = 0
    for j in range(len(terms)):
        for i in range(j + 1, len(terms)):
            w_j, w_i = terms[j], terms[i]
            d_j = doc_freq.get(w_j, 0)
            if d_j == 0:
                continue
            key = (w_i, w_j) if w_i < w_j else (w_j, w_i)
            co = pair_freq.get(key, 0)
            score += math.log((co + epsilon) / d_j)
            count += 1
    return score / count if count else 0.0


def mean_coherence(
    topics: Sequence[Sequence[str]],
    documents: Sequence[Sequence[str]],
    top_n: int = 10,
) -> float:
    """Mean UMass coherence across topics (each truncated to *top_n* terms)."""
    if not topics:
        return 0.0
    scores = [umass_coherence(list(t)[:top_n], documents) for t in topics]
    return sum(scores) / len(scores)


def topic_diversity(topics: Sequence[Sequence[str]], top_n: int = 10) -> float:
    """Fraction of unique terms among all topics' top-*top_n* terms.

    1.0 means no topic shares a keyword with another; low values indicate
    redundant topics.
    """
    all_terms: List[str] = []
    for topic in topics:
        all_terms.extend(list(topic)[:top_n])
    if not all_terms:
        return 0.0
    return len(set(all_terms)) / len(all_terms)
