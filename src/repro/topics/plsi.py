"""Probabilistic Latent Semantic Indexing via EM (§3.2).

PLSI (Hofmann 2000) is the statistical topic model the paper lists
alongside LDA and the matrix-factorization family.  Included for
completeness of the ablation surface: the aspect model

    P(d, w) = sum_z P(z) P(d|z) P(w|z)

fitted by expectation-maximization on the document-term count matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..text.vocabulary import Vocabulary
from .nmf import Topic

_EPS = 1e-12


@dataclass
class PLSIResult:
    """EM output: the three factor distributions and the topic list."""

    topic_prior: np.ndarray    # P(z), shape (k,)
    doc_given_topic: np.ndarray  # P(d|z), shape (k, n_docs)
    term_given_topic: np.ndarray  # P(w|z), shape (k, vocab)
    topics: List[Topic]
    log_likelihood_history: List[float]

    def dominant_topic(self, doc_index: int) -> int:
        """argmax_z P(z|d) ∝ P(z) P(d|z)."""
        posterior = self.topic_prior * self.doc_given_topic[:, doc_index]
        return int(np.argmax(posterior))


class PLSI:
    """Aspect-model topic extraction with EM."""

    def __init__(
        self,
        n_topics: int,
        n_iterations: int = 50,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.n_topics = n_topics
        self.n_iterations = n_iterations
        self.tol = tol
        self.seed = seed

    def fit(
        self,
        documents: Sequence[Sequence[str]],
        vocabulary: Optional[Vocabulary] = None,
        top_terms: int = 10,
    ) -> PLSIResult:
        """Fit the aspect model on tokenized *documents*."""
        vocabulary = vocabulary or Vocabulary.from_documents(documents)
        n_docs, n_terms = len(documents), len(vocabulary)
        if n_terms == 0:
            raise ValueError("empty vocabulary")
        counts = np.zeros((n_docs, n_terms))
        for d, tokens in enumerate(documents):
            for idx in vocabulary.encode(tokens):
                counts[d, idx] += 1

        rng = np.random.default_rng(self.seed)
        k = min(self.n_topics, n_docs, n_terms)
        p_z = np.full(k, 1.0 / k)
        p_d_z = rng.random((k, n_docs)) + _EPS
        p_d_z /= p_d_z.sum(axis=1, keepdims=True)
        p_w_z = rng.random((k, n_terms)) + _EPS
        p_w_z /= p_w_z.sum(axis=1, keepdims=True)

        history: List[float] = []
        previous = -np.inf
        for _iteration in range(self.n_iterations):
            # E-step folded into the M-step accumulators: for each (d, w),
            # P(z|d,w) ∝ P(z) P(d|z) P(w|z).
            # joint[z, d, w] computed lazily per document to bound memory.
            new_p_z = np.zeros(k)
            new_p_d_z = np.zeros((k, n_docs))
            new_p_w_z = np.zeros((k, n_terms))
            log_likelihood = 0.0
            for d in range(n_docs):
                weights = counts[d]
                nz = np.flatnonzero(weights)
                if nz.size == 0:
                    continue
                # (k, |nz|) responsibility matrix for this document.
                joint = (p_z[:, None] * p_d_z[:, d][:, None]) * p_w_z[:, nz]
                denom = joint.sum(axis=0) + _EPS
                log_likelihood += float(weights[nz] @ np.log(denom))
                resp = joint / denom
                weighted = resp * weights[nz]
                new_p_w_z[:, nz] += weighted
                mass = weighted.sum(axis=1)
                new_p_d_z[:, d] += mass
                new_p_z += mass

            p_z = new_p_z / max(new_p_z.sum(), _EPS)
            p_d_z = new_p_d_z / np.maximum(
                new_p_d_z.sum(axis=1, keepdims=True), _EPS
            )
            p_w_z = new_p_w_z / np.maximum(
                new_p_w_z.sum(axis=1, keepdims=True), _EPS
            )
            history.append(log_likelihood)
            if log_likelihood - previous <= self.tol * abs(previous) and np.isfinite(previous):
                break
            previous = log_likelihood

        topics: List[Topic] = []
        for z in range(k):
            order = np.argsort(-p_w_z[z])[:top_terms]
            topics.append(
                Topic(
                    index=z,
                    terms=[(vocabulary.term(int(c)), float(p_w_z[z, c])) for c in order],
                )
            )
        return PLSIResult(
            topic_prior=p_z,
            doc_given_topic=p_d_z,
            term_given_topic=p_w_z,
            topics=topics,
            log_likelihood_history=history,
        )
