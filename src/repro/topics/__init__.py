"""Topic modeling (§3.2, §4.3): NMF core plus LDA/LSA baselines."""

from .coherence import mean_coherence, topic_diversity, umass_coherence
from .lda import LatentDirichletAllocation, LDAResult
from .lsa import LSA, LSAResult
from .nmf import NMF, NMFResult, Topic, extract_topics
from .plsi import PLSI, PLSIResult

__all__ = [
    "NMF",
    "NMFResult",
    "Topic",
    "extract_topics",
    "LatentDirichletAllocation",
    "LDAResult",
    "LSA",
    "LSAResult",
    "PLSI",
    "PLSIResult",
    "umass_coherence",
    "mean_coherence",
    "topic_diversity",
]
