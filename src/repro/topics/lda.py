"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

The paper's design-choice discussion (§4.9) justifies NMF over LDA by
runtime and comparable quality on short and long texts; this implementation
exists so the `bench_ablation_nmf_vs_lda` benchmark can reproduce that
comparison.  Standard collapsed Gibbs sampler (Griffiths & Steyvers 2004)
with symmetric Dirichlet priors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..text.vocabulary import Vocabulary
from .nmf import Topic


@dataclass
class LDAResult:
    """Sampler output: document-topic and topic-term distributions."""

    doc_topic: np.ndarray  # theta, shape (n_docs, k)
    topic_term: np.ndarray  # phi, shape (k, vocab)
    topics: List[Topic]
    log_likelihood_history: List[float]

    def dominant_topic(self, doc_index: int) -> int:
        return int(np.argmax(self.doc_topic[doc_index]))


class LatentDirichletAllocation:
    """Collapsed Gibbs LDA with symmetric priors alpha and beta."""

    def __init__(
        self,
        n_topics: int,
        alpha: float = 0.1,
        beta: float = 0.01,
        n_iterations: int = 100,
        seed: int = 0,
    ) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.n_topics = n_topics
        self.alpha = alpha
        self.beta = beta
        self.n_iterations = n_iterations
        self.seed = seed

    def fit(
        self,
        documents: Sequence[Sequence[str]],
        vocabulary: Optional[Vocabulary] = None,
        top_terms: int = 10,
    ) -> LDAResult:
        """Run the sampler over tokenized *documents*."""
        vocabulary = vocabulary or Vocabulary.from_documents(documents)
        encoded = [vocabulary.encode(doc) for doc in documents]
        n_docs = len(encoded)
        vocab_size = len(vocabulary)
        k = self.n_topics
        rng = np.random.default_rng(self.seed)

        doc_topic_counts = np.zeros((n_docs, k), dtype=np.int64)
        topic_term_counts = np.zeros((k, vocab_size), dtype=np.int64)
        topic_totals = np.zeros(k, dtype=np.int64)
        assignments: List[np.ndarray] = []

        for d, tokens in enumerate(encoded):
            z = rng.integers(0, k, size=len(tokens))
            assignments.append(z)
            for w, t in zip(tokens, z):
                doc_topic_counts[d, t] += 1
                topic_term_counts[t, w] += 1
                topic_totals[t] += 1

        history: List[float] = []
        for _iteration in range(self.n_iterations):
            for d, tokens in enumerate(encoded):
                z = assignments[d]
                for i, w in enumerate(tokens):
                    t = z[i]
                    doc_topic_counts[d, t] -= 1
                    topic_term_counts[t, w] -= 1
                    topic_totals[t] -= 1
                    # Full conditional p(z=t | rest).
                    weights = (
                        (doc_topic_counts[d] + self.alpha)
                        * (topic_term_counts[:, w] + self.beta)
                        / (topic_totals + self.beta * vocab_size)
                    )
                    weights_sum = weights.sum()
                    t = int(rng.choice(k, p=weights / weights_sum))
                    z[i] = t
                    doc_topic_counts[d, t] += 1
                    topic_term_counts[t, w] += 1
                    topic_totals[t] += 1
            history.append(self._log_likelihood(topic_term_counts, topic_totals, vocab_size))

        theta = (doc_topic_counts + self.alpha).astype(np.float64)
        theta /= theta.sum(axis=1, keepdims=True)
        phi = (topic_term_counts + self.beta).astype(np.float64)
        phi /= phi.sum(axis=1, keepdims=True)

        topics = []
        for t in range(k):
            order = np.argsort(-phi[t])[:top_terms]
            topics.append(
                Topic(
                    index=t,
                    terms=[(vocabulary.term(int(c)), float(phi[t, c])) for c in order],
                )
            )
        return LDAResult(
            doc_topic=theta,
            topic_term=phi,
            topics=topics,
            log_likelihood_history=history,
        )

    def _log_likelihood(
        self, topic_term_counts: np.ndarray, topic_totals: np.ndarray, vocab_size: int
    ) -> float:
        """Collapsed log p(w | z) up to a constant — sampler health metric."""
        from scipy.special import gammaln

        beta = self.beta
        value = 0.0
        for t in range(topic_term_counts.shape[0]):
            value += gammaln(topic_term_counts[t] + beta).sum()
            value -= gammaln(topic_totals[t] + beta * vocab_size)
        return float(value)
