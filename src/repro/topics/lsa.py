"""Latent Semantic Analysis via truncated SVD.

Listed in §3.2 as the other matrix-factorization topic model; included as a
baseline for the topic-quality ablation.  Topics are derived from the right
singular vectors; because LSA components carry sign, the dominant-magnitude
terms define a topic (the standard convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from ..text.vocabulary import Vocabulary
from ..weighting.matrix import DocumentTermMatrix
from .nmf import Topic


@dataclass
class LSAResult:
    """SVD output: document embeddings, components, singular values."""

    doc_embeddings: np.ndarray  # U * S, shape (n_docs, k)
    components: np.ndarray      # V^T, shape (k, vocab)
    singular_values: np.ndarray
    topics: List[Topic]


class LSA:
    """Truncated-SVD topic model over a document-term matrix."""

    def __init__(self, n_topics: int, seed: int = 0) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        self.n_topics = n_topics
        self.seed = seed

    def fit(
        self,
        matrix: Union[np.ndarray, sparse.spmatrix, DocumentTermMatrix],
        top_terms: int = 10,
    ) -> LSAResult:
        vocabulary: Optional[Vocabulary] = None
        if isinstance(matrix, DocumentTermMatrix):
            vocabulary = matrix.vocabulary
            A = matrix.matrix
        else:
            A = matrix
        A = sparse.csr_matrix(A).astype(np.float64)
        k = min(self.n_topics, min(A.shape) - 1)
        if k < 1:
            raise ValueError("matrix too small for truncated SVD")
        rng = np.random.default_rng(self.seed)
        v0 = rng.random(min(A.shape))
        U, S, Vt = svds(A, k=k, v0=v0)
        # svds returns singular values ascending; flip to descending.
        order = np.argsort(-S)
        U, S, Vt = U[:, order], S[order], Vt[order]

        topics: List[Topic] = []
        for t in range(k):
            row = Vt[t]
            cols = np.argsort(-np.abs(row))[:top_terms]
            terms = []
            for col in cols:
                name = vocabulary.term(int(col)) if vocabulary else str(int(col))
                terms.append((name, float(abs(row[col]))))
            topics.append(Topic(index=t, terms=terms))
        return LSAResult(
            doc_embeddings=U * S,
            components=Vt,
            singular_values=S,
            topics=topics,
        )
