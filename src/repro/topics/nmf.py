"""Non-Negative Matrix Factorization with multiplicative updates.

Implements §3.2 of the paper: factorize the document-term matrix
A ∈ R^{n×m} into W ∈ R^{n×k} (document-topic) and H ∈ R^{k×m} (topic-term)
by minimizing the Frobenius objective (Eq 6) with the Lee–Seung
multiplicative update rules (Eq 8), which keep both factors non-negative
and monotonically decrease the objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from .. import obs
from ..text.vocabulary import Vocabulary
from ..weighting.matrix import DocumentTermMatrix

_EPS = 1e-12


@dataclass
class Topic:
    """One extracted topic: its index and ranked (term, weight) pairs."""

    index: int
    terms: List[Tuple[str, float]]

    @property
    def keywords(self) -> List[str]:
        """Top terms without weights (the paper's Table 3 presentation)."""
        return [term for term, _weight in self.terms]

    def __repr__(self) -> str:
        head = " ".join(self.keywords[:8])
        return f"Topic({self.index}: {head})"


@dataclass
class NMFResult:
    """Factorization output: W, H, the objective trace, and topics."""

    W: np.ndarray
    H: np.ndarray
    objective_history: List[float]
    topics: List[Topic] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        """Number of multiplicative-update iterations performed."""
        return len(self.objective_history)

    def document_topics(self, doc_index: int, top: Optional[int] = None) -> List[Tuple[int, float]]:
        """(topic, membership) pairs for one document, strongest first."""
        row = self.W[doc_index]
        order = np.argsort(-row)
        pairs = [(int(i), float(row[i])) for i in order if row[i] > 0]
        return pairs[:top] if top is not None else pairs

    def dominant_topic(self, doc_index: int) -> int:
        """Index of the single strongest topic for one document."""
        return int(np.argmax(self.W[doc_index]))


class NMF:
    """Topic extraction via NMF (Eqs 6–8).

    Parameters
    ----------
    n_topics:
        k — number of latent topics (the paper uses 100).
    max_iter:
        Maximum multiplicative-update iterations.
    tol:
        Relative objective improvement below which updates stop
        ("until they stabilize", Eq 8's convergence condition).
    seed:
        Seed for the random non-negative initialization.
    """

    def __init__(
        self,
        n_topics: int,
        max_iter: int = 200,
        tol: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.n_topics = n_topics
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def fit(
        self,
        matrix: Union[np.ndarray, sparse.spmatrix, DocumentTermMatrix],
        top_terms: int = 10,
        init: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> NMFResult:
        """Factorize *matrix*; returns W, H, objective trace, and topics.

        Accepts a raw array/sparse matrix or a :class:`DocumentTermMatrix`
        (in which case topics carry real term strings).

        *init*, when given, is a ``(W0, H0)`` warm start with shapes
        ``(n, k)`` / ``(k, m)``; entries are clamped to at least the
        update epsilon so multiplicative updates can move every cell
        (a true zero is absorbing under Lee–Seung updates).
        """
        vocabulary: Optional[Vocabulary] = None
        if isinstance(matrix, DocumentTermMatrix):
            vocabulary = matrix.vocabulary
            A = matrix.matrix
        else:
            A = matrix
        if sparse.issparse(A):
            A = sparse.csr_matrix(A).astype(np.float64)
            if (A.data < 0).any():
                raise ValueError("NMF requires a non-negative matrix")
        else:
            A = np.asarray(A, dtype=np.float64)
            if (A < 0).any():
                raise ValueError("NMF requires a non-negative matrix")

        n, m = A.shape
        k = min(self.n_topics, n, m)
        if init is not None:
            W0, H0 = init
            if W0.shape != (n, k) or H0.shape != (k, m):
                raise ValueError(
                    f"init shapes {W0.shape}/{H0.shape} do not match "
                    f"required ({n}, {k})/({k}, {m})"
                )
            W = np.maximum(np.asarray(W0, dtype=np.float64), _EPS)
            H = np.maximum(np.asarray(H0, dtype=np.float64), _EPS)
        else:
            rng = np.random.default_rng(self.seed)
            # Scaled random init keeps the initial WH on the order of A.
            scale = np.sqrt(self._mean(A) / max(k, 1)) or 1.0
            W = rng.random((n, k)) * scale + _EPS
            H = rng.random((k, m)) * scale + _EPS

        history: List[float] = []
        previous = np.inf
        with obs.span("topics.nmf.fit") as fit_span:
            for _iteration in range(self.max_iter):
                # H update: H <- H * (W^T A) / (W^T W H)    (Eq 8, first rule)
                numerator = self._wta(W, A)
                denominator = (W.T @ W) @ H + _EPS
                H *= numerator / denominator
                # W update: W <- W * (A H^T) / (W H H^T)    (Eq 8, second rule)
                numerator = self._aht(A, H)
                denominator = W @ (H @ H.T) + _EPS
                W *= numerator / denominator

                objective = self._objective(A, W, H)
                history.append(objective)
                obs.histogram("topics.nmf.objective").observe(objective)
                if np.isfinite(previous) and (
                    previous - objective <= self.tol * max(previous, _EPS)
                ):
                    break
                previous = objective
            fit_span.annotate(
                shape=[int(n), int(m)],
                n_topics=int(k),
                iterations=len(history),
                final_objective=history[-1] if history else None,
            )

        topics = self._extract_topics(H, vocabulary, top_terms)
        return NMFResult(W=W, H=H, objective_history=history, topics=topics)

    @staticmethod
    def _mean(A) -> float:
        if sparse.issparse(A):
            return float(A.sum()) / (A.shape[0] * A.shape[1])
        return float(np.mean(A))

    @staticmethod
    def _wta(W: np.ndarray, A) -> np.ndarray:
        if sparse.issparse(A):
            return np.asarray((A.T @ W).T)
        return W.T @ A

    @staticmethod
    def _aht(A, H: np.ndarray) -> np.ndarray:
        if sparse.issparse(A):
            return np.asarray(A @ H.T)
        return A @ H.T

    @staticmethod
    def _objective(A, W: np.ndarray, H: np.ndarray) -> float:
        """F(W, H) = ||A - WH||_F^2 (Eq 6), computed without densifying A.

        Uses ||A - WH||² = ||A||² - 2<A, WH> + ||WH||² so sparse A stays
        sparse; ||WH||² = trace((WᵀW)(HHᵀ)) needs only k×k products.
        """
        if sparse.issparse(A):
            a_sq = float((A.multiply(A)).sum())
            cross = float(np.sum(np.asarray(A @ H.T) * W))
            wh_sq = float(np.sum((W.T @ W) * (H @ H.T)))
            return a_sq - 2.0 * cross + wh_sq
        diff = A - W @ H
        return float(np.sum(diff * diff))

    @staticmethod
    def _extract_topics(
        H: np.ndarray, vocabulary: Optional[Vocabulary], top_terms: int
    ) -> List[Topic]:
        topics: List[Topic] = []
        for t in range(H.shape[0]):
            row = H[t]
            order = np.argsort(-row)[:top_terms]
            terms: List[Tuple[str, float]] = []
            for col in order:
                if row[col] <= 0:
                    continue
                name = vocabulary.term(int(col)) if vocabulary else str(int(col))
                terms.append((name, float(row[col])))
            topics.append(Topic(index=t, terms=terms))
        return topics


def extract_topics(
    documents: Sequence[Sequence[str]],
    n_topics: int,
    top_terms: int = 10,
    weighting: str = "tfidf_n",
    max_iter: int = 200,
    seed: int = 0,
    min_df: int = 1,
    max_df_ratio: float = 1.0,
) -> NMFResult:
    """Convenience wrapper: tokenized documents -> topics via TFIDF_N + NMF.

    This is exactly the paper's Topic Modeling module (§4.3): vectorize the
    NewsTM corpus with TFIDF_N, then run NMF.
    """
    dtm = DocumentTermMatrix.from_documents(
        documents, weighting=weighting, min_df=min_df, max_df_ratio=max_df_ratio
    )
    model = NMF(n_topics=n_topics, max_iter=max_iter, seed=seed)
    return model.fit(dtm, top_terms=top_terms)
