"""Deterministic fault injection for the pipeline and deployment loop.

The §4.9 deployment refreshes every two hours over live news/tweet
feeds, and live feeds fail: a fetch times out, a worker dies, a stage
OOMs.  This module is the test substrate for that reality — a
:class:`FaultPlan` decides, deterministically, whether a given *site*
(a named failure point such as ``pipeline.topic_modeling`` or
``pipeline.parallel.news_tm.chunk0``) raises on this check.

Determinism is the whole point: every site draws from its own
``np.random.SeedSequence(seed, spawn_key=(spec_index, site_key))``
stream and keeps a per-site check counter, so a plan triggers the same
faults on the same checks no matter how threads interleave or how many
workers a ``parallel_map`` fan-out uses.  Two fault kinds exist:

* :class:`TransientFault` — retryable; a :class:`~repro.resilience.retry.RetryPolicy`
  absorbs it and the run's results must be bitwise identical to a
  fault-free run (asserted by ``tests/core/test_pipeline_resume.py``);
* :class:`FatalFault` — never retried; kills the run so checkpoint
  resume can be exercised.

Plans come from code (:func:`install_plan` / :func:`overridden`) or the
``REPRO_FAULTS`` environment variable (see :func:`plan_from_env` for the
grammar); an installed plan always wins over the environment.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..tools.annotations import guarded_by

FAULTS_ENV = "REPRO_FAULTS"

KINDS = ("transient", "fatal")


class FaultError(RuntimeError):
    """Base class for injected faults (never raised by real code paths)."""

    def __init__(self, site: str, check: int) -> None:
        super().__init__(f"injected fault at {site!r} (check #{check})")
        self.site = site
        self.check = check


class TransientFault(FaultError):
    """A retryable injected fault (network blip, worker hiccup)."""


class FatalFault(FaultError):
    """A non-retryable injected fault (process kill, poison input)."""


def _site_key(site: str) -> int:
    """Stable 32-bit key for *site* (``hash()`` is salted per process)."""
    digest = hashlib.sha256(site.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule of a :class:`FaultPlan`.

    Attributes
    ----------
    sites:
        ``fnmatch`` pattern the site name must match (case-sensitive).
    rate:
        Per-check trigger probability in [0, 1]; ``1.0`` always fires.
    kind:
        ``"transient"`` (retryable) or ``"fatal"``.
    max_triggers:
        Stop firing after this many triggers (None = unbounded).
    after:
        Let this many *matching* checks pass before arming — e.g.
        ``after=1`` on ``deployment.cycle`` kills the second cycle.
    """

    sites: str = "pipeline.*"
    rate: float = 1.0
    kind: str = "transient"
    max_triggers: Optional[int] = None
    after: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must lie in [0, 1]")
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError("max_triggers must be >= 1 or None")
        if self.after < 0:
            raise ValueError("after must be >= 0")


@dataclass
class FaultRecord:
    """One fired fault, kept for test assertions and reports."""

    site: str
    kind: str
    check: int
    spec_index: int


@guarded_by("_lock", "_streams", "_checks", "_triggers", "records")
class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules with per-site streams.

    Thread-safe: ``parallel_map`` worker chunks check concurrently, and
    each ``(spec, site)`` pair owns an independent RNG stream plus check
    counter, so trigger decisions are a pure function of the plan and
    the per-site check number — never of thread timing.
    """

    def __init__(self, seed: int = 0, specs: Tuple[FaultSpec, ...] = ()) -> None:
        self.seed = int(seed)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._streams: Dict[Tuple[int, str], np.random.Generator] = {}
        self._checks: Dict[Tuple[int, str], int] = {}
        self._triggers: Dict[int, int] = {}
        self.records: List[FaultRecord] = []

    def _stream_locked(self, spec_index: int, site: str) -> np.random.Generator:
        # Caller holds self._lock (a plain, non-reentrant Lock).
        key = (spec_index, site)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(spec_index, _site_key(site))
                )
            )
        return stream

    def check(self, site: str) -> None:
        """Raise an injected fault at *site* if any spec decides to fire."""
        for index, spec in enumerate(self.specs):
            if not fnmatchcase(site, spec.sites):
                continue
            with self._lock:
                key = (index, site)
                self._checks[key] = self._checks.get(key, 0) + 1
                check = self._checks[key]
                draw = float(self._stream_locked(index, site).random())
                if check <= spec.after:
                    continue
                fired = self._triggers.get(index, 0)
                if spec.max_triggers is not None and fired >= spec.max_triggers:
                    continue
                if spec.rate < 1.0 and draw >= spec.rate:
                    continue
                self._triggers[index] = fired + 1
                record = FaultRecord(
                    site=site, kind=spec.kind, check=check, spec_index=index
                )
                self.records.append(record)
            obs.counter(f"resilience.faults.{spec.kind}").inc()
            exc = TransientFault if spec.kind == "transient" else FatalFault
            raise exc(site, check)

    def triggered(self, kind: Optional[str] = None) -> List[FaultRecord]:
        """Fired faults so far, optionally filtered by kind."""
        with self._lock:
            records = list(self.records)
        if kind is None:
            return records
        return [r for r in records if r.kind == kind]


def parse_plan(raw: str) -> Optional[FaultPlan]:
    """Parse a ``REPRO_FAULTS`` value into a :class:`FaultPlan`.

    Grammar (whitespace-insensitive)::

        REPRO_FAULTS=""            -> no plan
        REPRO_FAULTS="0"           -> no plan (explicit off)
        REPRO_FAULTS="7"           -> seed 7, one default spec
                                      (sites=pipeline.*, rate=0.15, transient)
        REPRO_FAULTS="seed=7;sites=pipeline.*;rate=0.25;kind=transient;max=3"
        REPRO_FAULTS="seed=7;sites=pipeline.*;rate=1.0;kind=fatal;max=1;after=2
                      |sites=parallel.*;rate=0.05"

    ``|`` separates specs; ``seed=`` may appear in any segment and is
    global to the plan.
    """
    raw = raw.strip()
    if not raw or raw == "0":
        return None
    if raw.lstrip("-").isdigit():
        return FaultPlan(seed=int(raw), specs=(FaultSpec(rate=0.15),))
    seed = 0
    specs: List[FaultSpec] = []
    for segment in raw.split("|"):
        fields: Dict[str, str] = {}
        for part in segment.split(";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"{FAULTS_ENV} segment {part!r} is not key=value"
                )
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
        if "seed" in fields:
            seed = int(fields.pop("seed"))
        if not fields:
            continue
        try:
            spec = FaultSpec(
                sites=fields.pop("sites", "pipeline.*"),
                rate=float(fields.pop("rate", "1.0")),
                kind=fields.pop("kind", "transient"),
                max_triggers=(
                    int(fields["max"]) if fields.get("max") else None
                ),
                after=int(fields.pop("after", "0")),
            )
        except ValueError as exc:
            raise ValueError(f"invalid {FAULTS_ENV} value {raw!r}: {exc}") from exc
        fields.pop("max", None)
        if fields:
            raise ValueError(
                f"unknown {FAULTS_ENV} keys {sorted(fields)} in {raw!r}"
            )
        specs.append(spec)
    if not specs:
        specs = [FaultSpec(rate=0.15)]
    return FaultPlan(seed=seed, specs=tuple(specs))


_UNSET = object()
_active: object = _UNSET
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
_env_lock = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> object:
    """Install *plan* as the process-wide plan (None = explicitly none).

    An installed plan — including an explicit ``None`` — overrides
    ``REPRO_FAULTS``.  Returns the previous value for restoration (pass
    it back to :func:`restore_plan`).
    """
    global _active
    previous = _active
    _active = plan
    return previous


def restore_plan(previous: object) -> None:
    """Undo an :func:`install_plan` using its return value."""
    global _active
    _active = previous


class overridden:
    """Context manager installing a plan for the duration of a block.

    >>> with overridden(None):      # guarantee a fault-free region
    ...     pass
    """

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self._plan = plan
        self._previous: object = _UNSET

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = install_plan(self._plan)
        return self._plan

    def __exit__(self, exc_type, exc, tb) -> None:
        restore_plan(self._previous)


def plan_from_env() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``, cached per raw value.

    Caching keeps the plan object (and its trigger counters) stable for
    the life of the process, so ``max_triggers`` bounds hold across many
    ``inject`` calls; changing the variable mid-process builds a fresh
    plan.
    """
    global _env_cache
    raw = os.environ.get(FAULTS_ENV)
    with _env_lock:
        cached_raw, cached_plan = _env_cache
        if raw == cached_raw:
            return cached_plan
        plan = parse_plan(raw) if raw is not None else None
        _env_cache = (raw, plan)
        return plan


def active_plan() -> Optional[FaultPlan]:
    """The plan in force: the installed one, else ``REPRO_FAULTS``."""
    if _active is not _UNSET:
        return _active  # type: ignore[return-value]
    return plan_from_env()


def inject(site: str) -> None:
    """Fault-check *site* against the active plan (no-op without one).

    This is the single hook instrumented code calls; when no plan is
    active it costs one global read (plus, lazily, one env lookup).
    """
    plan = active_plan()
    if plan is not None:
        plan.check(site)
