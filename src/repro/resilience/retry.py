"""Retry policies with deterministic backoff for pipeline stages.

§4.9's deployment re-runs every two hours against live feeds, so a
transient stage failure (a feed hiccup, an injected
:class:`~repro.resilience.faults.TransientFault`) must not kill the
refresh cycle.  :class:`RetryPolicy` wraps a stage call with:

* a bounded number of attempts;
* exponential backoff whose jitter is drawn from a **seeded**
  ``np.random.SeedSequence(seed, spawn_key=(site_key,))`` stream — the
  same run sleeps the same amounts, keeping chaos tests reproducible;
* an optional per-attempt timeout (the call runs on a helper thread and
  a hang surfaces as a retryable :class:`StageTimeout`);
* a retryable-exception filter: :class:`~repro.resilience.faults.FatalFault`
  and ordinary programming errors are never retried.

Exhausting the attempts on a retryable error raises :class:`RetryError`
chained to the last failure; non-retryable errors propagate unchanged
on first occurrence.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

import numpy as np

from .faults import TransientFault


class StageTimeout(RuntimeError):
    """A stage attempt exceeded the policy's per-attempt timeout."""

    def __init__(self, site: str, timeout_s: float) -> None:
        super().__init__(f"stage {site!r} timed out after {timeout_s:.3f}s")
        self.site = site
        self.timeout_s = timeout_s


class RetryError(RuntimeError):
    """All attempts failed with retryable errors; chained to the last."""

    def __init__(self, site: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"stage {site!r} failed after {attempts} attempt(s): {last!r}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


#: Exceptions retried by default: injected transient faults, timeouts,
#: and the I/O-flavoured errors a live feed actually produces.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientFault,
    StageTimeout,
    TimeoutError,
    ConnectionError,
    OSError,
)


def _site_entropy(site: str) -> int:
    """Stable 32-bit jitter-stream key for a site name."""
    return int.from_bytes(hashlib.sha256(site.encode("utf-8")).digest()[:4], "little")


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failed stage call is retried.

    ``max_attempts=1`` degrades to a plain call with the retryable
    filter still deciding which exceptions become :class:`RetryError`.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff: float = 2.0
    jitter: float = 0.1
    timeout_s: Optional[float] = None
    seed: int = 0
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive or None")

    def is_retryable(self, exc: BaseException) -> bool:
        """True when *exc* is one of the policy's retryable types."""
        return isinstance(exc, self.retryable)

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before attempt ``attempt + 1`` (1-based failed attempt).

        Exponential in the attempt number, capped at ``max_delay_s``,
        with symmetric seeded jitter of ±``jitter`` of the delay.
        """
        delay = min(
            self.max_delay_s, self.base_delay_s * self.backoff ** (attempt - 1)
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(0.0, delay)

    def _attempt(self, func: Callable[[], Any], site: str) -> Any:
        if self.timeout_s is None:
            return func()
        pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"retry-{site}"
        )
        try:
            future = pool.submit(func)
            try:
                return future.result(timeout=self.timeout_s)
            except _FutureTimeout:
                future.cancel()
                raise StageTimeout(site, self.timeout_s) from None
        finally:
            # Never block on a hung attempt; the worker thread is
            # abandoned (daemonic-by-shutdown) and its result discarded.
            pool.shutdown(wait=False)

    def call(
        self,
        func: Callable[[], Any],
        site: str = "stage",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> Any:
        """Run ``func()`` under this policy.

        *on_retry(attempt, exc, delay)* fires before each backoff sleep,
        letting callers bump obs counters or annotate spans.  *sleep* is
        injectable so tests run with zero wall-clock cost.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(_site_entropy(site),))
        )
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return self._attempt(func, site)
            except Exception as exc:
                if not self.is_retryable(exc):
                    raise
                last = exc
                if attempt >= self.max_attempts:
                    break
                delay = self.delay_s(attempt, rng)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0.0:
                    sleep(delay)
        assert last is not None
        raise RetryError(site, self.max_attempts, last) from last
