"""``repro.resilience`` — fault tolerance for the §4.9 deployment loop.

Three cooperating pieces (see ``docs/resilience.md``):

* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` with seeded
  exponential-backoff jitter, per-attempt timeouts, and a
  retryable-exception filter, applied to every pipeline stage;
* :mod:`~repro.resilience.checkpoint` — :class:`CheckpointStore`,
  versioned per-stage JSON/NPZ checkpoints fingerprinted against the
  :class:`~repro.core.config.PipelineConfig` so stale state is never
  resumed;
* :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness (:class:`FaultPlan`, ``REPRO_FAULTS``) that doubles as the
  test substrate for the other two.

``checkpoint``/``codecs`` are imported lazily (PEP 562): they pull in
the dataset/event model, which itself uses :mod:`repro.parallel`, and
``parallel`` needs :func:`repro.resilience.faults.inject` at chunk
boundaries — eager imports here would complete that cycle.
"""

from typing import TYPE_CHECKING

from .faults import (
    FAULTS_ENV,
    FatalFault,
    FaultError,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    TransientFault,
    active_plan,
    inject,
    install_plan,
    overridden,
    parse_plan,
    plan_from_env,
    restore_plan,
)
from .retry import (
    DEFAULT_RETRYABLE,
    RetryError,
    RetryPolicy,
    StageTimeout,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .checkpoint import CheckpointError, CheckpointStore, config_fingerprint
    from .codecs import CodecError, decode_stage, encode_stage

_LAZY = {
    "CheckpointError": ("repro.resilience.checkpoint", "CheckpointError"),
    "CheckpointStore": ("repro.resilience.checkpoint", "CheckpointStore"),
    "config_fingerprint": ("repro.resilience.checkpoint", "config_fingerprint"),
    "CodecError": ("repro.resilience.codecs", "CodecError"),
    "decode_stage": ("repro.resilience.codecs", "decode_stage"),
    "encode_stage": ("repro.resilience.codecs", "encode_stage"),
}


def __getattr__(name: str):
    """Resolve the lazily exported checkpoint/codec names (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "DEFAULT_RETRYABLE",
    "FAULTS_ENV",
    "CheckpointError",
    "CheckpointStore",
    "CodecError",
    "FatalFault",
    "FaultError",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "RetryError",
    "RetryPolicy",
    "StageTimeout",
    "TransientFault",
    "active_plan",
    "config_fingerprint",
    "decode_stage",
    "encode_stage",
    "inject",
    "install_plan",
    "overridden",
    "parse_plan",
    "plan_from_env",
    "restore_plan",
]
