"""Versioned stage-checkpoint store for the pipeline and deployment loop.

§4.9: after each two-hour dataset refresh the algorithms re-run "from
checkpoints or from scratch".  :class:`CheckpointStore` is the
"from checkpoints" half — after every pipeline stage its output is
serialized (via :mod:`repro.resilience.codecs`) under a run directory::

    <root>/
        manifest.json          # version, fingerprint, completed stages
        stages/<stage>.json    # JSON-able part of the stage output
        stages/<stage>.npz     # numeric arrays (only when present)

Staleness is handled by **content fingerprinting**: the manifest records
a SHA-256 over the serialized :class:`~repro.core.config.PipelineConfig`
(result-neutral knobs such as ``workers`` and the retry settings are
excluded), the store format version, and an optional *world key* (corpus
sizes and time range).  Opening a store whose manifest fingerprint
differs invalidates every stored stage, so a resumed run can never mix
outputs computed under different parameters.

Writes are atomic (temp file + ``os.replace``) and the manifest is
rewritten after every stage, so a run killed mid-stage leaves only
completed stages behind — exactly what resume wants.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

import numpy as np

from .. import obs
from .codecs import decode_stage, encode_stage

CHECKPOINT_VERSION = 1

#: PipelineConfig fields that cannot change stage outputs; excluded from
#: the fingerprint so e.g. raising the worker count or retry budget does
#: not throw away valid checkpoints.
RESULT_NEUTRAL_FIELDS = frozenset(
    {
        "workers",
        "retry_attempts",
        "retry_base_delay_s",
        "retry_max_delay_s",
        "stage_timeout_s",
    }
)


class CheckpointError(RuntimeError):
    """Raised for missing stages or corrupt checkpoint directories."""


def config_fingerprint(config: Any, world_key: Optional[str] = None) -> str:
    """SHA-256 fingerprint of *config* (a dataclass) plus *world_key*.

    Only result-affecting fields participate (see
    :data:`RESULT_NEUTRAL_FIELDS`); the store version is mixed in so a
    format bump invalidates old directories by construction.
    """
    if dataclasses.is_dataclass(config):
        fields = dataclasses.asdict(config)
    elif isinstance(config, dict):
        fields = dict(config)
    else:
        raise TypeError(f"cannot fingerprint {type(config).__name__}")
    fields = {
        k: v for k, v in sorted(fields.items()) if k not in RESULT_NEUTRAL_FIELDS
    }
    payload = json.dumps(
        {"version": CHECKPOINT_VERSION, "config": fields, "world": world_key},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def atomic_write(path: str, data: bytes) -> None:
    """Write *data* to *path* via a same-directory temp file + rename."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class CheckpointStore:
    """One run directory of stage checkpoints, fingerprint-validated."""

    def __init__(
        self,
        root: str,
        config: Optional[Any] = None,
        world_key: Optional[str] = None,
    ) -> None:
        self.root = root
        self.fingerprint = (
            config_fingerprint(config, world_key) if config is not None else None
        )
        self._stage_dir = os.path.join(root, "stages")
        os.makedirs(self._stage_dir, exist_ok=True)
        self._manifest = self._load_manifest()
        if self._is_stale():
            self.invalidate()

    # -- manifest -----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        """Path of the manifest JSON file."""
        return os.path.join(self.root, "manifest.json")

    def _load_manifest(self) -> Dict[str, Any]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return self._fresh_manifest()
        except (json.JSONDecodeError, OSError):
            # A torn manifest (killed mid-write before the atomic rename
            # existed, disk corruption) means the directory cannot be
            # trusted; start over.
            return self._fresh_manifest()
        if not isinstance(manifest, dict) or "stages" not in manifest:
            return self._fresh_manifest()
        return manifest

    def _fresh_manifest(self) -> Dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "stages": {},
            "order": [],
        }

    def _is_stale(self) -> bool:
        has_stages = bool(self._manifest.get("stages"))
        if self._manifest.get("version") != CHECKPOINT_VERSION:
            return has_stages
        if self.fingerprint is None:
            return False
        return self._manifest.get("fingerprint") != self.fingerprint and has_stages

    def _save_manifest(self) -> None:
        self._manifest["fingerprint"] = self.fingerprint
        self._manifest["version"] = CHECKPOINT_VERSION
        atomic_write(
            self.manifest_path,
            (json.dumps(self._manifest, indent=2) + "\n").encode("utf-8"),
        )

    # -- stage I/O ----------------------------------------------------------

    def _paths(self, stage: str) -> Dict[str, str]:
        return {
            "meta": os.path.join(self._stage_dir, f"{stage}.json"),
            "arrays": os.path.join(self._stage_dir, f"{stage}.npz"),
        }

    def has(self, stage: str) -> bool:
        """True when *stage* is recorded complete and its files exist."""
        entry = self._manifest["stages"].get(stage)
        if entry is None:
            return False
        paths = self._paths(stage)
        if not os.path.exists(paths["meta"]):
            return False
        if entry.get("has_arrays") and not os.path.exists(paths["arrays"]):
            return False
        return True

    def completed(self) -> List[str]:
        """Stage names in completion order."""
        return [s for s in self._manifest.get("order", []) if self.has(s)]

    def save(self, stage: str, value: Any) -> str:
        """Checkpoint one stage output; returns the meta-file path."""
        meta, arrays = encode_stage(stage, value)
        paths = self._paths(stage)
        payload = json.dumps({"stage": stage, "meta": meta}).encode("utf-8")
        atomic_write(paths["meta"], payload)
        if arrays:
            fd, tmp = tempfile.mkstemp(dir=self._stage_dir, prefix=".ckpt-")
            os.close(fd)
            try:
                with open(tmp, "wb") as handle:
                    np.savez(handle, **arrays)
                os.replace(tmp, paths["arrays"])
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        elif os.path.exists(paths["arrays"]):
            os.unlink(paths["arrays"])
        self._manifest["stages"][stage] = {"has_arrays": bool(arrays)}
        order = self._manifest.setdefault("order", [])
        if stage in order:
            order.remove(stage)
        order.append(stage)
        self._save_manifest()
        obs.counter("resilience.checkpoint.saved").inc()
        return paths["meta"]

    def load(self, stage: str) -> Any:
        """Rebuild one stage output from disk."""
        if not self.has(stage):
            raise CheckpointError(f"no checkpoint for stage {stage!r} in {self.root}")
        paths = self._paths(stage)
        with open(paths["meta"], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("stage") != stage:
            raise CheckpointError(
                f"checkpoint file {paths['meta']} belongs to stage "
                f"{payload.get('stage')!r}, expected {stage!r}"
            )
        arrays: Dict[str, np.ndarray] = {}
        if self._manifest["stages"][stage].get("has_arrays"):
            with np.load(paths["arrays"]) as data:
                arrays = {name: data[name] for name in data.files}
        obs.counter("resilience.checkpoint.loaded").inc()
        return decode_stage(stage, payload["meta"], arrays)

    def invalidate(self) -> None:
        """Drop every stored stage (stale fingerprint or explicit reset)."""
        for name in os.listdir(self._stage_dir):
            os.unlink(os.path.join(self._stage_dir, name))
        self._manifest = self._fresh_manifest()
        self._save_manifest()
        obs.counter("resilience.checkpoint.invalidated").inc()
