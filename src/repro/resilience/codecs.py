"""Stage-output codecs for the checkpoint store.

Every pipeline stage output is serialized as a ``(meta, arrays)`` pair:
*meta* is a JSON-able dict and *arrays* a name → ``np.ndarray`` mapping
persisted as an ``.npz`` sidecar.  The split keeps the round trip
**bitwise exact** — floats inside JSON survive via ``repr`` round-trip,
``datetime`` via ``isoformat()``, and every numeric bulk payload (NMF
factors, embedding matrices, dataset tensors) goes through NPZ, which
preserves dtype and bits.  That exactness is load-bearing: the
resilience acceptance tests assert a resumed run's ``PipelineResult``
equals an uninterrupted one.

Codecs are looked up by stage name (:data:`STAGE_CODECS`); unknown
stages fail loudly rather than pickling silently.
"""

from __future__ import annotations

from datetime import datetime
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..core.correlation import CorrelatedPair, CorrelationResult
from ..core.features import TweetRecord
from ..core.trending import TrendingNewsTopic
from ..datasets import Dataset, EventTweet
from ..embeddings import PretrainedEmbeddings
from ..events import Event, TimestampedDocument
from ..topics import NMFResult, Topic

Arrays = Dict[str, np.ndarray]
Encoded = Tuple[Dict[str, Any], Arrays]


class CodecError(ValueError):
    """Raised for unknown stages or malformed checkpoint payloads."""


# -- shared scalar helpers ---------------------------------------------------------


def _dt(value: datetime) -> str:
    return value.isoformat()


def _undt(value: str) -> datetime:
    return datetime.fromisoformat(value)


# -- document value codec ----------------------------------------------------------
#
# The store's WAL and shard checkpoints persist raw documents as JSON.
# Plain ``json.dumps(..., default=str)`` is lossy (datetimes come back as
# strings), so documents go through this tagged encoding instead: the
# round trip is exact for every JSON-able value plus ``datetime``, which
# is what the recovery tests assert bitwise equality on.

_DT_TAG = "__dt__"
_PAIRS_TAG = "__pairs__"


def encode_json_value(value: Any) -> Any:
    """Encode a store document value into a JSON-able form.

    ``datetime`` becomes ``{"__dt__": isoformat}``; dicts whose keys are
    non-strings or collide with the tag namespace are escaped as a
    ``{"__pairs__": [[key, value], ...]}`` list so decoding is
    unambiguous.  Tuples flatten to lists (as any JSON round trip does).
    """
    if isinstance(value, datetime):
        return {_DT_TAG: _dt(value)}
    if isinstance(value, dict):
        plain = all(
            isinstance(k, str) and not k.startswith("__") for k in value
        )
        if plain:
            return {k: encode_json_value(v) for k, v in value.items()}
        return {
            _PAIRS_TAG: [
                [encode_json_value(k), encode_json_value(v)]
                for k, v in value.items()
            ]
        }
    if isinstance(value, (list, tuple)):
        return [encode_json_value(v) for v in value]
    return value


def decode_json_value(value: Any) -> Any:
    """Invert :func:`encode_json_value`."""
    if isinstance(value, dict):
        if set(value) == {_DT_TAG}:
            return _undt(value[_DT_TAG])
        if set(value) == {_PAIRS_TAG}:
            return {
                decode_json_value(k): decode_json_value(v)
                for k, v in value[_PAIRS_TAG]
            }
        return {k: decode_json_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_json_value(v) for v in value]
    return value


def _encode_event(event: Event) -> Dict[str, Any]:
    return {
        "main_word": event.main_word,
        "related_words": [[w, float(x)] for w, x in event.related_words],
        "start": _dt(event.start),
        "end": _dt(event.end),
        "magnitude": float(event.magnitude),
        "slice_interval": list(event.slice_interval),
        "support": int(event.support),
    }


def _decode_event(data: Dict[str, Any]) -> Event:
    return Event(
        main_word=data["main_word"],
        related_words=[(w, float(x)) for w, x in data["related_words"]],
        start=_undt(data["start"]),
        end=_undt(data["end"]),
        magnitude=float(data["magnitude"]),
        slice_interval=tuple(data["slice_interval"]),
        support=int(data["support"]),
    )


def _encode_topic(topic: Topic) -> Dict[str, Any]:
    return {
        "index": topic.index,
        "terms": [[t, float(w)] for t, w in topic.terms],
    }


def _decode_topic(data: Dict[str, Any]) -> Topic:
    return Topic(
        index=int(data["index"]),
        terms=[(t, float(w)) for t, w in data["terms"]],
    )


def _encode_trending(item: TrendingNewsTopic) -> Dict[str, Any]:
    return {
        "topic": _encode_topic(item.topic),
        "event": _encode_event(item.event),
        "similarity": float(item.similarity),
    }


def _decode_trending(data: Dict[str, Any]) -> TrendingNewsTopic:
    return TrendingNewsTopic(
        topic=_decode_topic(data["topic"]),
        event=_decode_event(data["event"]),
        similarity=float(data["similarity"]),
    )


# -- per-stage codecs --------------------------------------------------------------


def _encode_token_docs(docs: List[List[str]]) -> Encoded:
    return {"docs": [list(tokens) for tokens in docs]}, {}


def _decode_token_docs(meta: Dict[str, Any], arrays: Arrays) -> List[List[str]]:
    return [list(tokens) for tokens in meta["docs"]]


def _encode_timestamped(docs: List[TimestampedDocument]) -> Encoded:
    return (
        {
            "docs": [
                {
                    "tokens": list(d.tokens),
                    "created_at": _dt(d.created_at),
                    "doc_id": d.doc_id,
                }
                for d in docs
            ]
        },
        {},
    )


def _decode_timestamped(
    meta: Dict[str, Any], arrays: Arrays
) -> List[TimestampedDocument]:
    return [
        TimestampedDocument(
            tokens=list(d["tokens"]),
            created_at=_undt(d["created_at"]),
            doc_id=d["doc_id"],
        )
        for d in meta["docs"]
    ]


def _encode_tweet_records(records: List[TweetRecord]) -> Encoded:
    return (
        {
            "records": [
                {
                    "tokens": list(r.tokens),
                    "created_at": _dt(r.created_at),
                    "author": r.author,
                    "followers": int(r.followers),
                    "likes": int(r.likes),
                    "retweets": int(r.retweets),
                }
                for r in records
            ]
        },
        {},
    )


def _decode_tweet_records(
    meta: Dict[str, Any], arrays: Arrays
) -> List[TweetRecord]:
    return [
        TweetRecord(
            tokens=list(r["tokens"]),
            created_at=_undt(r["created_at"]),
            author=r["author"],
            followers=int(r["followers"]),
            likes=int(r["likes"]),
            retweets=int(r["retweets"]),
        )
        for r in meta["records"]
    ]


def _encode_nmf(result: NMFResult) -> Encoded:
    meta = {
        "objective_history": [float(x) for x in result.objective_history],
        "topics": [_encode_topic(t) for t in result.topics],
    }
    return meta, {"W": result.W, "H": result.H}


def _decode_nmf(meta: Dict[str, Any], arrays: Arrays) -> NMFResult:
    return NMFResult(
        W=arrays["W"],
        H=arrays["H"],
        objective_history=[float(x) for x in meta["objective_history"]],
        topics=[_decode_topic(t) for t in meta["topics"]],
    )


def _encode_events(events: List[Event]) -> Encoded:
    return {"events": [_encode_event(e) for e in events]}, {}


def _decode_events(meta: Dict[str, Any], arrays: Arrays) -> List[Event]:
    return [_decode_event(e) for e in meta["events"]]


def _encode_embeddings(embeddings: PretrainedEmbeddings) -> Encoded:
    words = embeddings.words()
    meta = {"words": words, "dim": embeddings.dim}
    if not words:
        return meta, {}
    return meta, {"matrix": np.vstack([embeddings[w] for w in words])}


def _decode_embeddings(
    meta: Dict[str, Any], arrays: Arrays
) -> PretrainedEmbeddings:
    words = list(meta["words"])
    dim = int(meta["dim"])
    if not words:
        return PretrainedEmbeddings({}, dim)
    matrix = arrays["matrix"]
    return PretrainedEmbeddings(
        {word: matrix[i] for i, word in enumerate(words)}, dim
    )


def _encode_trending_list(items: List[TrendingNewsTopic]) -> Encoded:
    return {"trending": [_encode_trending(t) for t in items]}, {}


def _decode_trending_list(
    meta: Dict[str, Any], arrays: Arrays
) -> List[TrendingNewsTopic]:
    return [_decode_trending(t) for t in meta["trending"]]


def _encode_correlation(result: CorrelationResult) -> Encoded:
    """Index-based encoding so decoded objects keep identity sharing.

    ``CorrelationResult.pairs_for_event`` matches events by ``is``; the
    encoder therefore stores each distinct trending topic / Twitter
    event once and refers to it by index, and the decoder rebuilds the
    same sharing graph.
    """
    trending: List[TrendingNewsTopic] = []
    events: List[Event] = []
    t_index: Dict[int, int] = {}
    e_index: Dict[int, int] = {}

    def t_ref(item: TrendingNewsTopic) -> int:
        key = id(item)
        if key not in t_index:
            t_index[key] = len(trending)
            trending.append(item)
        return t_index[key]

    def e_ref(item: Event) -> int:
        key = id(item)
        if key not in e_index:
            e_index[key] = len(events)
            events.append(item)
        return e_index[key]

    pairs = [
        [t_ref(p.trending), e_ref(p.twitter_event), float(p.similarity)]
        for p in result.pairs
    ]
    unrelated = [e_ref(e) for e in result.unrelated_twitter_events]
    matched = [t_ref(t) for t in result.matched_trending]
    unmatched = [t_ref(t) for t in result.unmatched_trending]
    meta = {
        "trending": [_encode_trending(t) for t in trending],
        "events": [_encode_event(e) for e in events],
        "pairs": pairs,
        "unrelated": unrelated,
        "matched": matched,
        "unmatched": unmatched,
    }
    return meta, {}


def _decode_correlation(
    meta: Dict[str, Any], arrays: Arrays
) -> CorrelationResult:
    trending = [_decode_trending(t) for t in meta["trending"]]
    events = [_decode_event(e) for e in meta["events"]]
    pairs = [
        CorrelatedPair(
            trending=trending[t], twitter_event=events[e], similarity=float(s)
        )
        for t, e, s in meta["pairs"]
    ]
    return CorrelationResult(
        pairs=pairs,
        unrelated_twitter_events=[events[i] for i in meta["unrelated"]],
        matched_trending=[trending[i] for i in meta["matched"]],
        unmatched_trending=[trending[i] for i in meta["unmatched"]],
    )


def _encode_event_tweets(records: List[EventTweet]) -> Encoded:
    return (
        {
            "records": [
                {
                    "tokens": list(r.tokens),
                    "event_vocabulary": sorted(r.event_vocabulary),
                    "magnitudes": {k: float(v) for k, v in r.magnitudes.items()},
                    "author": r.author,
                    "followers": int(r.followers),
                    "likes": int(r.likes),
                    "retweets": int(r.retweets),
                    "created_at": _dt(r.created_at),
                    "event_id": r.event_id,
                }
                for r in records
            ]
        },
        {},
    )


def _decode_event_tweets(
    meta: Dict[str, Any], arrays: Arrays
) -> List[EventTweet]:
    return [
        EventTweet(
            tokens=list(r["tokens"]),
            event_vocabulary=set(r["event_vocabulary"]),
            magnitudes={k: float(v) for k, v in r["magnitudes"].items()},
            author=r["author"],
            followers=int(r["followers"]),
            likes=int(r["likes"]),
            retweets=int(r["retweets"]),
            created_at=_undt(r["created_at"]),
            event_id=r["event_id"],
        )
        for r in meta["records"]
    ]


def _encode_datasets(datasets: Dict[str, Dataset]) -> Encoded:
    meta = {
        "datasets": {
            name: {"feature_names": list(ds.feature_names)}
            for name, ds in datasets.items()
        },
        "order": list(datasets.keys()),
    }
    arrays: Arrays = {}
    for name, ds in datasets.items():
        arrays[f"{name}__X"] = ds.X
        arrays[f"{name}__y_likes"] = ds.y_likes
        arrays[f"{name}__y_retweets"] = ds.y_retweets
    return meta, arrays


def _decode_datasets(meta: Dict[str, Any], arrays: Arrays) -> Dict[str, Dataset]:
    out: Dict[str, Dataset] = {}
    for name in meta["order"]:
        out[name] = Dataset(
            name=name,
            X=arrays[f"{name}__X"],
            y_likes=arrays[f"{name}__y_likes"],
            y_retweets=arrays[f"{name}__y_retweets"],
            feature_names=list(meta["datasets"][name]["feature_names"]),
        )
    return out


#: stage name -> (encode, decode); names match ``pipeline.<stage>`` spans.
STAGE_CODECS: Dict[str, Tuple[Callable[[Any], Encoded], Callable[..., Any]]] = {
    "preprocess_news_tm": (_encode_token_docs, _decode_token_docs),
    "preprocess_news_ed": (_encode_timestamped, _decode_timestamped),
    "preprocess_twitter_ed": (_encode_timestamped, _decode_timestamped),
    "tweet_records": (_encode_tweet_records, _decode_tweet_records),
    "topic_modeling": (_encode_nmf, _decode_nmf),
    "news_event_detection": (_encode_events, _decode_events),
    "twitter_event_detection": (_encode_events, _decode_events),
    "embeddings": (_encode_embeddings, _decode_embeddings),
    "trending_news": (_encode_trending_list, _decode_trending_list),
    "correlation": (_encode_correlation, _decode_correlation),
    "feature_creation": (_encode_event_tweets, _decode_event_tweets),
    "dataset_building": (_encode_datasets, _decode_datasets),
}


def encode_stage(stage: str, value: Any) -> Encoded:
    """Serialize one stage output to a ``(meta, arrays)`` pair."""
    try:
        encode, _decode = STAGE_CODECS[stage]
    except KeyError:
        raise CodecError(
            f"no codec for stage {stage!r}; known: {sorted(STAGE_CODECS)}"
        ) from None
    return encode(value)


def decode_stage(stage: str, meta: Dict[str, Any], arrays: Arrays) -> Any:
    """Rebuild one stage output from its serialized form."""
    try:
        _encode, decode = STAGE_CODECS[stage]
    except KeyError:
        raise CodecError(
            f"no codec for stage {stage!r}; known: {sorted(STAGE_CODECS)}"
        ) from None
    return decode(meta, arrays)
