"""Command-line front end: ``python -m repro.tools.staticcheck [paths]``.

Exit status is 0 when the tree is clean, 1 when violations were found,
and 2 on usage errors — so the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (import registers the rules)
from .core import RULES, Analyzer


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and --help generation)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.staticcheck",
        description="Project-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULE[,RULE...]",
        help="comma-separated rule IDs to skip for this run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, rule_cls in sorted(RULES.items()):
            print(f"{rule_id}: {rule_cls.description}")
        return 0

    disabled: List[str] = [
        part.strip() for part in options.disable.split(",") if part.strip()
    ]
    try:
        analyzer = Analyzer(disabled=disabled)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    try:
        violations = analyzer.run(options.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(json.dumps([violation.as_dict() for violation in violations], indent=2))
    else:
        for violation in violations:
            print(violation.format())
        if violations:
            print(f"{len(violations)} violation(s) found", file=sys.stderr)
    return 1 if violations else 0
