"""Command-line front end: ``python -m repro.tools.staticcheck [paths]``.

Exit status is 0 when the tree is clean, 1 when violations were found,
and 2 on usage errors — so the command slots directly into CI.
Diagnostics (file counts, missing-path and suppression warnings) go to
stderr; stdout carries only violations, so a clean run is silent there.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (import registers the rules)
from .core import RULES, Analyzer

#: The rules run by ``--concurrency`` (the CI concurrency gate).
CONCURRENCY_RULES = ("lock-discipline", "lock-order", "nondeterminism")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and --help generation)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.staticcheck",
        description="Project-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULE[,RULE...]",
        help="comma-separated rule IDs to skip for this run",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help=(
            "run only the concurrency rules "
            f"({', '.join(CONCURRENCY_RULES)})"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule_id, rule_cls in sorted(RULES.items()):
            print(f"{rule_id}: {rule_cls.description}")
        return 0

    disabled: List[str] = [
        part.strip() for part in options.disable.split(",") if part.strip()
    ]
    if options.concurrency:
        disabled.extend(
            rule_id for rule_id in RULES if rule_id not in CONCURRENCY_RULES
        )
        disabled = sorted(set(disabled))
    try:
        analyzer = Analyzer(disabled=disabled)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    violations = analyzer.run(options.paths)
    for missing in analyzer.missing_paths:
        print(
            f"warning: path does not exist, skipping: {missing}",
            file=sys.stderr,
        )
    for warning in sorted(set(analyzer.warnings)):
        print(f"warning: {warning}", file=sys.stderr)
    if options.format == "json":
        print(json.dumps([violation.as_dict() for violation in violations], indent=2))
    else:
        for violation in violations:
            print(violation.format())
        if violations:
            print(f"{len(violations)} violation(s) found", file=sys.stderr)
    print(f"{analyzer.files_checked} file(s) checked", file=sys.stderr)
    return 1 if violations else 0
