"""Project-aware static analysis for the reproduction codebase.

Public surface::

    from repro.tools.staticcheck import analyze_paths, Analyzer, RULES

    violations = analyze_paths(["src/repro"])   # -> List[Violation]

or from the shell::

    python -m repro.tools.staticcheck src

Rules, suppression syntax (``# staticcheck: disable=<rule>``), and the
CI wiring are documented in ``docs/static_analysis.md``.
"""

from . import rules  # noqa: F401  (import registers the built-in rules)
from .cli import main
from .core import RULES, Analyzer, Rule, SourceFile, Violation, analyze_paths, register

__all__ = [
    "Analyzer",
    "RULES",
    "Rule",
    "SourceFile",
    "Violation",
    "analyze_paths",
    "main",
    "register",
]
