"""Project-aware static analysis for the reproduction codebase.

Public surface::

    from repro.tools.staticcheck import analyze_paths, Analyzer, RULES

    violations = analyze_paths(["src/repro"])   # -> List[Violation]

or from the shell::

    python -m repro.tools.staticcheck src

The concurrency suite (``--concurrency``: lock-discipline, lock-order,
nondeterminism) lives in :mod:`repro.tools.staticcheck.concurrency`; its
static lock-order graph is exposed as :func:`build_lock_graph` for the
runtime validator in :mod:`repro.tools.lockwitness`.

Rules, suppression syntax (``# staticcheck: disable=<rule>``), and the
CI wiring are documented in ``docs/static_analysis.md``.
"""

from . import rules  # noqa: F401  (import registers the built-in rules)
from .cli import CONCURRENCY_RULES, main
from .concurrency import LockGraph, build_lock_graph
from .core import RULES, Analyzer, Rule, SourceFile, Violation, analyze_paths, register

__all__ = [
    "Analyzer",
    "CONCURRENCY_RULES",
    "LockGraph",
    "RULES",
    "Rule",
    "SourceFile",
    "Violation",
    "analyze_paths",
    "build_lock_graph",
    "main",
    "register",
]
