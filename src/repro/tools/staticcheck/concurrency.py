"""Concurrency rules: lock discipline, lock ordering, and nondeterminism.

Three rules extend the analyzer for the concurrent subsystems
(``repro.serving``, ``repro.store``, ``repro.obs``, ``repro.parallel``):

``lock-discipline``
    Fields declared via ``@guarded_by("lock", "field", ...)`` (see
    :mod:`repro.tools.annotations`) or a class-level ``GUARDED_BY`` dict
    must only be accessed inside a ``with self.<lock>:`` block.
    ``__init__`` is exempt (no concurrent access before construction
    completes), as are ``*_locked`` helper methods — whose *call sites*
    must in turn hold one of the class's locks.

``lock-order``
    Every nested lock acquisition in the project — lexical ``with``
    nesting plus calls made while a lock is held, resolved through a
    conservative project call graph — contributes a directed edge to
    the acquisition-order graph.  A cycle in that graph is a potential
    deadlock and fails the build with the full path rendered.  Locks
    shared across classes collapse onto one node via ``@lock_alias``.
    The same graph backs the runtime validator
    (:mod:`repro.tools.lockwitness`) through :func:`build_lock_graph`.

``nondeterminism``
    Result-affecting code (``repro/core``, ``repro/nn``,
    ``repro/embeddings``) must not read wall-clock time
    (``datetime.now()`` and friends) or iterate unordered sets (whose
    order is hash-seed dependent); wrap set iteration in ``sorted()``.
    RNG misuse is covered by the stricter project-wide ``determinism``
    rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Project, Rule, SourceFile, Violation, iter_python_files, register


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: threading factory tails recognised as lock constructors, mapped to
#: whether the resulting primitive is reentrant.
_LOCK_FACTORIES: Dict[str, bool] = {
    "Lock": False,
    "RLock": True,
    "Condition": True,  # backed by an RLock unless one is passed in
    "Semaphore": False,
    "BoundedSemaphore": False,
}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _decorator_call(node: ast.expr, name: str) -> Optional[ast.Call]:
    """The decorator as a Call when it is ``name(...)``, else None."""
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func) or ""
        if dotted.split(".")[-1] == name:
            return node
    return None


def _str_args(call: ast.Call) -> Optional[List[str]]:
    """The call's positional args when all are string literals, else None."""
    out: List[str] = []
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
        else:
            return None
    return out


@dataclass
class _ClassInfo:
    """Everything the concurrency rules know about one class."""

    name: str
    path: str
    node: ast.ClassDef
    guard_map: Dict[str, str] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)
    lock_attrs: Dict[str, bool] = field(default_factory=dict)  # attr -> reentrant
    attr_ctors: Dict[str, str] = field(default_factory=dict)  # self.x = Ctor(...)
    methods: Dict[str, ast.AST] = field(default_factory=dict)

    def canonical(self, attr: str) -> str:
        """Graph label for ``self.<attr>`` (alias-aware)."""
        return self.aliases.get(attr, f"{self.name}.{attr}")


def _collect_class(source: SourceFile, node: ast.ClassDef) -> _ClassInfo:
    """Extract guard declarations, lock attrs, and methods from a class."""
    info = _ClassInfo(name=node.name, path=source.path, node=node)
    for decorator in node.decorator_list:
        call = _decorator_call(decorator, "guarded_by")
        if call is not None:
            args = _str_args(call)
            if args and len(args) >= 2:
                for guarded in args[1:]:
                    info.guard_map[guarded] = args[0]
        call = _decorator_call(decorator, "lock_alias")
        if call is not None:
            args = _str_args(call)
            if args and len(args) == 2:
                info.aliases[args[0]] = args[1]
    for statement in node.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and statement.targets[0].id == "GUARDED_BY"
            and isinstance(statement.value, ast.Dict)
        ):
            for key, value in zip(statement.value.keys, statement.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    info.guard_map[key.value] = value.value
        elif isinstance(statement, _FUNCTION_NODES):
            info.methods[statement.name] = statement
            _collect_self_assignments(statement, info)
    return info


def _collect_self_assignments(func: ast.AST, info: _ClassInfo) -> None:
    """Record ``self.x = threading.Lock()`` / ``self.x = Ctor(...)`` facts."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            for value in ast.walk(node.value):
                if isinstance(value, ast.Call):
                    dotted = _dotted(value.func) or ""
                    tail = dotted.split(".")[-1]
                    if tail in _LOCK_FACTORIES:
                        info.lock_attrs[target.attr] = _LOCK_FACTORIES[tail]
                    elif isinstance(node.value, ast.Call) and dotted:
                        info.attr_ctors.setdefault(target.attr, tail)
                    break


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


@register
class LockDisciplineRule(Rule):
    """``@guarded_by`` fields must be accessed under their declared lock."""

    id = "lock-discipline"
    description = (
        "fields declared @guarded_by('lock', ...) may only be accessed "
        "inside `with self.<lock>:` (init and *_locked helpers exempt; "
        "calls to *_locked helpers must hold a class lock)"
    )

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Check every annotated class in the file."""
        violations: List[Violation] = []
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                info = _collect_class(source, node)
                if info.guard_map:
                    violations.extend(self._check_class(source, info))
        return iter(violations)

    def _check_class(self, source: SourceFile, info: _ClassInfo) -> List[Violation]:
        """Walk each non-exempt method with a lexical held-lock set."""
        lock_names = set(info.guard_map.values()) | set(info.lock_attrs)
        violations: List[Violation] = []
        for name, method in info.methods.items():
            if name == "__init__" or name.endswith("_locked"):
                continue
            self._walk(source, info, lock_names, method, frozenset(), violations)
        return violations

    def _walk(
        self,
        source: SourceFile,
        info: _ClassInfo,
        lock_names: Set[str],
        node: ast.AST,
        held: "frozenset[str]",
        violations: List[Violation],
    ) -> None:
        """Recurse over *node*'s children tracking the held-lock set."""
        for child in ast.iter_child_nodes(node):
            self._visit(source, info, lock_names, child, held, violations)

    def _visit(
        self,
        source: SourceFile,
        info: _ClassInfo,
        lock_names: Set[str],
        child: ast.AST,
        held: "frozenset[str]",
        violations: List[Violation],
    ) -> None:
        """Check one node (it may itself be a ``with``) and recurse."""
        if isinstance(child, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in child.items:
                self._visit(
                    source, info, lock_names, item.context_expr, held, violations
                )
                attr = self._self_attr(item.context_expr)
                if attr is not None and attr in lock_names:
                    acquired.add(attr)
            inner = held | acquired
            for body_node in child.body:
                self._visit(source, info, lock_names, body_node, inner, violations)
            return
        attr = self._self_attr(child)
        if attr is not None and attr in info.guard_map:
            required = info.guard_map[attr]
            if required not in held:
                violations.append(
                    self.violation(
                        source,
                        child,
                        f"field {attr!r} is guarded by 'self.{required}' "
                        f"but accessed without holding it",
                    )
                )
        if isinstance(child, ast.Call):
            callee = self._self_attr(child.func)
            if (
                callee is not None
                and callee.endswith("_locked")
                and not held
            ):
                violations.append(
                    self.violation(
                        source,
                        child,
                        f"call to locked-context helper {callee!r} without "
                        f"holding any of the class's locks",
                    )
                )
        self._walk(source, info, lock_names, child, held, violations)

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        """``x`` when *node* is exactly ``self.x``, else None."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------


@dataclass
class LockGraph:
    """The project's lock acquisition-order digraph."""

    edges: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    self_deadlocks: List[Tuple[str, str]] = field(default_factory=list)  # (label, site)

    def add(self, held: str, acquired: str, site: str) -> None:
        """Record that *acquired* was taken while *held* was held at *site*."""
        if held == acquired:
            return
        self.edges.setdefault((held, acquired), []).append(site)

    def has_edge(self, held: str, acquired: str) -> bool:
        """True when the graph contains the ``held -> acquired`` edge."""
        return (held, acquired) in self.edges

    def nodes(self) -> List[str]:
        """Sorted lock labels appearing in any edge."""
        names: Set[str] = set()
        for a, b in self.edges:
            names.add(a)
            names.add(b)
        return sorted(names)

    def successors(self, label: str) -> List[str]:
        """Sorted direct successors of *label*."""
        return sorted({b for (a, b) in self.edges if a == label})

    def cycles(self) -> List[List[str]]:
        """Deterministic list of acquisition-order cycles (as label paths).

        Each cycle is reported once, rooted at its smallest label, as
        ``[a, b, ..., a]``.
        """
        found: List[List[str]] = []
        seen_keys: Set[Tuple[str, ...]] = set()
        for start in self.nodes():
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                label, path = stack.pop()
                for succ in self.successors(label):
                    if succ == start and len(path) >= 1:
                        cycle = path + [start]
                        key = tuple(sorted(set(cycle)))
                        if min(cycle) == start and key not in seen_keys:
                            seen_keys.add(key)
                            found.append(cycle)
                    elif succ not in path and succ > start:
                        stack.append((succ, path + [succ]))
        return found

    def render(self) -> str:
        """Human-readable edge listing for the ``--concurrency`` report."""
        if not self.edges:
            return "lock-order graph: no nested acquisitions found"
        lines = ["lock-order graph (acquired-while-held):"]
        for (a, b), sites in sorted(self.edges.items()):
            lines.append(f"  {a} -> {b}")
            for site in sorted(set(sites))[:3]:
                lines.append(f"      at {site}")
        return "\n".join(lines)


@dataclass
class _FuncRecord:
    """Per-function facts feeding the project lock graph."""

    key: Tuple[str, str]  # (class name or "", function name)
    path: str
    direct: List[Tuple[str, int]] = field(default_factory=list)
    nested: List[Tuple[str, str, int]] = field(default_factory=list)
    held_calls: List[Tuple[Tuple[str, ...], List[Tuple[str, str]], int]] = field(
        default_factory=list
    )
    callees: List[List[Tuple[str, str]]] = field(default_factory=list)
    self_nested: List[Tuple[str, int]] = field(default_factory=list)  # non-reentrant


class _ProjectModel:
    """Project-wide lock model: classes, functions, and the order graph."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.classes: Dict[str, _ClassInfo] = {}
        self.module_funcs: Dict[str, List[Tuple[Tuple[str, str], str]]] = {}
        self.functions: Dict[Tuple[str, str], _FuncRecord] = {}
        self._file_imports: Dict[str, Dict[str, str]] = {}
        self._module_vars: Dict[str, Dict[str, str]] = {}
        self._module_locks: Dict[str, Dict[str, Tuple[str, bool]]] = {}
        for source in files:
            self._index_file(source)
        for source in files:
            self._walk_file(source)
        self._acq_cache: Dict[Tuple[str, str], Set[str]] = {}
        self.graph = LockGraph()
        self._build_graph()

    # -- indexing -----------------------------------------------------------

    def _index_file(self, source: SourceFile) -> None:
        """First pass: classes, module functions, imports, module vars."""
        imports: Dict[str, str] = {}
        module_vars: Dict[str, str] = {}
        module_locks: Dict[str, Tuple[str, bool]] = {}
        stem = Path(source.path).stem
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                info = _collect_class(source, node)
                self.classes.setdefault(node.name, info)
            elif isinstance(node, _FUNCTION_NODES):
                key = ("", f"{source.path}::{node.name}")
                self.module_funcs.setdefault(node.name, []).append((key, source.path))
                self.functions[key] = _FuncRecord(key=key, path=source.path)
            elif isinstance(node, ast.ImportFrom):
                if node.level > 0 or (node.module or "").startswith("repro"):
                    for alias in node.names:
                        imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro"):
                        imports[alias.asname or alias.name] = alias.name.split(".")[-1]
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                    dotted = _dotted(node.value.func) or ""
                    tail = dotted.split(".")[-1]
                    if tail in _LOCK_FACTORIES:
                        module_locks[target.id] = (
                            f"{stem}.{target.id}",
                            _LOCK_FACTORIES[tail],
                        )
                    elif tail:
                        module_vars[target.id] = tail
        self._file_imports[source.path] = imports
        self._module_vars[source.path] = module_vars
        self._module_locks[source.path] = module_locks

    # -- per-function walking ------------------------------------------------

    def _walk_file(self, source: SourceFile) -> None:
        """Second pass: record acquisitions and held calls per function."""
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                info = self.classes[node.name]
                for name, method in info.methods.items():
                    key = (info.name, name)
                    record = _FuncRecord(key=key, path=source.path)
                    self.functions[key] = record
                    self._walk_func(source, info, method, record, ())
            elif isinstance(node, _FUNCTION_NODES):
                key = ("", f"{source.path}::{node.name}")
                record = self.functions[key]
                self._walk_func(source, None, node, record, ())

    def _lock_label(
        self, source: SourceFile, info: Optional[_ClassInfo], expr: ast.expr
    ) -> Optional[Tuple[str, bool]]:
        """(canonical label, reentrant) for a with-item expression, or None."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
        ):
            root, attr = expr.value.id, expr.attr
            if root == "self" and info is not None:
                if attr in info.lock_attrs:
                    return info.canonical(attr), info.lock_attrs[attr]
                if attr in info.aliases or attr in set(info.guard_map.values()):
                    return info.canonical(attr), True
                return None
            var_ctor = self._module_vars.get(source.path, {}).get(root)
            if var_ctor and var_ctor in self.classes:
                owner = self.classes[var_ctor]
                if attr in owner.lock_attrs:
                    return owner.canonical(attr), owner.lock_attrs[attr]
        elif isinstance(expr, ast.Name):
            entry = self._module_locks.get(source.path, {}).get(expr.id)
            if entry is not None:
                return entry
        return None

    def _walk_func(
        self,
        source: SourceFile,
        info: Optional[_ClassInfo],
        node: ast.AST,
        record: _FuncRecord,
        held: Tuple[str, ...],
    ) -> None:
        """Recurse over *node*'s children tracking held canonical labels."""
        for child in ast.iter_child_nodes(node):
            self._visit_node(source, info, child, record, held)

    def _visit_node(
        self,
        source: SourceFile,
        info: Optional[_ClassInfo],
        child: ast.AST,
        record: _FuncRecord,
        held: Tuple[str, ...],
    ) -> None:
        """Record one node (it may itself be a ``with``) and recurse."""
        if isinstance(child, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in child.items:
                self._visit_node(source, info, item.context_expr, record, held)
                resolved = self._lock_label(source, info, item.context_expr)
                if resolved is None:
                    continue
                label, reentrant = resolved
                record.direct.append((label, child.lineno))
                for h in held:
                    if h == label:
                        if not reentrant:
                            record.self_nested.append((label, child.lineno))
                    else:
                        record.nested.append((h, label, child.lineno))
                acquired.append(label)
            inner = held + tuple(a for a in acquired if a not in held)
            for body_node in child.body:
                self._visit_node(source, info, body_node, record, inner)
            return
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function may run outside the lock scope: walk its
            # body with nothing held so it cannot fabricate edges.
            self._walk_func(source, info, child, record, ())
            return
        if isinstance(child, ast.Call):
            candidates = self._resolve_call(source, info, child)
            if candidates:
                record.callees.append(candidates)
                if held:
                    record.held_calls.append((held, candidates, child.lineno))
        self._walk_func(source, info, child, record, held)

    # -- call resolution -----------------------------------------------------

    def _resolve_call(
        self, source: SourceFile, info: Optional[_ClassInfo], call: ast.Call
    ) -> List[Tuple[str, str]]:
        """Candidate (class, function) keys a call may dispatch to.

        Deliberately conservative: unresolvable receivers contribute no
        candidates (the runtime lock witness exists to catch what the
        static model misses).
        """
        func = call.func
        out: List[Tuple[str, str]] = []
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.classes and "__init__" in self.classes[name].methods:
                out.append((name, "__init__"))
            else:
                out.extend(self._module_func_candidates(source, name, name))
        elif isinstance(func, ast.Attribute):
            method = func.attr
            receiver = func.value
            if isinstance(receiver, ast.Name):
                root = receiver.id
                if root == "self" and info is not None:
                    if method in info.methods:
                        out.append((info.name, method))
                elif root in self._module_vars.get(source.path, {}):
                    ctor = self._module_vars[source.path][root]
                    if ctor in self.classes and method in self.classes[ctor].methods:
                        out.append((ctor, method))
                elif root in self._file_imports.get(source.path, {}):
                    tail = self._file_imports[source.path][root]
                    out.extend(self._module_func_candidates(source, method, tail))
            elif (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and info is not None
            ):
                ctor = info.attr_ctors.get(receiver.attr)
                if ctor in self.classes and method in self.classes[ctor].methods:
                    out.append((ctor, method))
            elif isinstance(receiver, ast.Call):
                # Chained call (`obs.counter(...).inc()`): the receiver's
                # type is unknown, so over-approximate across lock-holding
                # classes that define the method.
                for class_name, class_info in self.classes.items():
                    if class_info.lock_attrs and method in class_info.methods:
                        out.append((class_name, method))
        return out

    def _module_func_candidates(
        self, source: SourceFile, func_name: str, module_hint: str
    ) -> List[Tuple[str, str]]:
        """Module-level functions named *func_name* plausibly in *module_hint*."""
        out: List[Tuple[str, str]] = []
        for key, path in self.module_funcs.get(func_name, ()):  # noqa: B020
            parts = Path(path).parts
            stem = Path(path).stem
            if (
                path == source.path
                or module_hint in parts
                or stem == module_hint
                or (self._file_imports.get(source.path, {}).get(func_name) == func_name
                    and module_hint == func_name)
            ):
                out.append(key)
        return out

    # -- transitive acquisition summaries -----------------------------------

    def _acquired_during(
        self, key: Tuple[str, str], visiting: Optional[Set[Tuple[str, str]]] = None
    ) -> Set[str]:
        """Every lock label a call to *key* may acquire (transitively)."""
        cached = self._acq_cache.get(key)
        if cached is not None:
            return cached
        visiting = visiting if visiting is not None else set()
        if key in visiting:
            return set()
        visiting.add(key)
        record = self.functions.get(key)
        acquired: Set[str] = set()
        if record is not None:
            acquired.update(label for label, _ in record.direct)
            for candidates in record.callees:
                for callee in candidates:
                    acquired.update(self._acquired_during(callee, visiting))
        visiting.discard(key)
        self._acq_cache[key] = acquired
        return acquired

    # -- graph construction --------------------------------------------------

    def _build_graph(self) -> None:
        """Combine lexical nesting and held calls into the order graph."""
        for record in self.functions.values():
            name = record.key[1] if not record.key[0] else ".".join(record.key)
            for held, label, lineno in record.nested:
                self.graph.add(held, label, f"{record.path}:{lineno} in {name}")
            for held_labels, candidates, lineno in record.held_calls:
                targets: Set[str] = set()
                for callee in candidates:
                    targets.update(self._acquired_during(callee))
                for h in held_labels:
                    for target in targets:
                        self.graph.add(
                            h, target, f"{record.path}:{lineno} in {name} (via call)"
                        )
            for label, lineno in record.self_nested:
                self.graph.self_deadlocks.append(
                    (label, f"{record.path}:{lineno} in {name}")
                )


def build_model(files: Sequence[SourceFile]) -> _ProjectModel:
    """Build the project lock model from parsed sources."""
    return _ProjectModel(files)


def build_lock_graph(paths: Sequence[str]) -> LockGraph:
    """The static acquisition-order graph for the Python files in *paths*.

    Unparseable files are skipped (the analyzer proper reports them).
    """
    files: List[SourceFile] = []
    for file_path in iter_python_files(paths):
        try:
            files.append(
                SourceFile(str(file_path), file_path.read_text(encoding="utf-8"))
            )
        except SyntaxError:
            continue
    return _ProjectModel(files).graph


@register
class LockOrderRule(Rule):
    """The project-wide lock acquisition order must be acyclic."""

    id = "lock-order"
    description = (
        "nested lock acquisitions (lexical and via calls) must form an "
        "acyclic order; cycles are potential deadlocks"
    )

    def __init__(self) -> None:
        self.graph: Optional[LockGraph] = None

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Build the graph over every scanned file and report cycles."""
        model = build_model(project.files)
        self.graph = model.graph
        violations: List[Violation] = []
        for cycle in model.graph.cycles():
            steps = []
            anchor: Tuple[str, int] = ("<project>", 1)
            for a, b in zip(cycle, cycle[1:]):
                sites = model.graph.edges.get((a, b), ["<unknown>"])
                steps.append(f"{a} -> {b} [{sites[0]}]")
                if anchor[0] == "<project>":
                    location = sites[0].split(" in ")[0]
                    path, _, line = location.rpartition(":")
                    if path and line.isdigit():
                        anchor = (path, int(line))
            violations.append(
                Violation(
                    path=anchor[0],
                    line=anchor[1],
                    col=1,
                    rule=self.id,
                    message=(
                        "lock-order cycle (potential deadlock): "
                        + "; ".join(steps)
                    ),
                )
            )
        for label, site in model.graph.self_deadlocks:
            location = site.split(" in ")[0]
            path, _, line = location.rpartition(":")
            violations.append(
                Violation(
                    path=path or "<project>",
                    line=int(line) if line.isdigit() else 1,
                    col=1,
                    rule=self.id,
                    message=(
                        f"non-reentrant lock {label} re-acquired while already "
                        f"held ({site}): guaranteed self-deadlock"
                    ),
                )
            )
        return iter(violations)


# ---------------------------------------------------------------------------
# nondeterminism
# ---------------------------------------------------------------------------


@register
class NondeterminismRule(Rule):
    """Clock reads and unordered-set iteration in result-affecting code."""

    id = "nondeterminism"
    description = (
        "result-affecting paths (core, nn, embeddings) must not read "
        "datetime.now()/utcnow()/today() or iterate unordered sets "
        "(hash-order dependent); wrap set iteration in sorted(); "
        "float32 is opt-in-only — no hard-coded float32 dtypes outside "
        "repro.nn.dtypes"
    )

    _SCOPED_DIRS = {"core", "nn", "embeddings"}
    #: The one module allowed to name float32 directly: every other
    #: result-affecting file must funnel through its resolve_dtype /
    #: FAST_DTYPE so single precision stays an explicit caller choice.
    _DTYPE_EXEMPT_TAIL = ("nn", "dtypes.py")
    _CLOCK_TAILS = {
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
    _SEQUENCING = {"list", "tuple", "enumerate"}

    def _in_scope(self, path: str) -> bool:
        """True when *path* lies in a result-affecting subtree."""
        parts = Path(path).parts
        return "repro" in parts and bool(self._SCOPED_DIRS.intersection(parts))

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Scan one in-scope file for clock reads and set iteration."""
        if not self._in_scope(source.path):
            return iter(())
        dtype_exempt = (
            tuple(Path(source.path).parts[-2:]) == self._DTYPE_EXEMPT_TAIL
        )
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                violations.extend(self._check_call(source, node))
                if not dtype_exempt:
                    violations.extend(self._check_dtype_call(source, node))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                violations.extend(self._check_iter(source, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    violations.extend(self._check_iter(source, generator.iter))
            elif isinstance(node, ast.Attribute) and not dtype_exempt:
                dotted = _dotted(node) or ""
                if dotted.split(".")[-1] == "float32":
                    violations.append(
                        self.violation(
                            source,
                            node,
                            f"hard-coded single precision ({dotted}) in "
                            "result-affecting code; float32 is opt-in-only "
                            "— resolve it through repro.nn.dtypes",
                        )
                    )
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not dtype_exempt
            ):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if self._is_float32_literal(default):
                        violations.append(
                            self.violation(
                                source,
                                default,
                                "parameter default hard-codes float32; the "
                                "single-precision path must stay an explicit "
                                "caller opt-in (repro.nn.dtypes)",
                            )
                        )
        return iter(violations)

    def _check_dtype_call(
        self, source: SourceFile, call: ast.Call
    ) -> Iterator[Violation]:
        """Flag ``dtype="float32"`` keywords and ``np.dtype("float32")``."""
        for keyword in call.keywords:
            if keyword.arg == "dtype" and self._is_float32_literal(keyword.value):
                yield self.violation(
                    source,
                    keyword.value,
                    'dtype="float32" hard-codes single precision in '
                    "result-affecting code; float32 is opt-in-only — "
                    "resolve it through repro.nn.dtypes",
                )
        dotted = _dotted(call.func) or ""
        if dotted.split(".")[-1] == "dtype" and call.args:
            if self._is_float32_literal(call.args[0]):
                yield self.violation(
                    source,
                    call,
                    'np.dtype("float32") hard-codes single precision in '
                    "result-affecting code; float32 is opt-in-only — "
                    "resolve it through repro.nn.dtypes",
                )

    @staticmethod
    def _is_float32_literal(node: ast.expr) -> bool:
        """True for the string literal ``"float32"`` (the dtype spelling)."""
        return isinstance(node, ast.Constant) and node.value == "float32"

    def _check_call(self, source: SourceFile, call: ast.Call) -> Iterator[Violation]:
        """Clock reads, plus ``list(set(...))``-style order materialisation."""
        dotted = _dotted(call.func)
        if dotted is not None:
            tail = tuple(dotted.split(".")[-2:])
            if len(tail) == 2 and tail in self._CLOCK_TAILS:
                yield self.violation(
                    source,
                    call,
                    f"wall-clock read ({dotted}()) makes results depend on "
                    "run time; thread timestamps through the data instead",
                )
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in self._SEQUENCING
            and call.args
            and self._is_set_expr(call.args[0])
        ):
            yield self.violation(
                source,
                call,
                f"{call.func.id}() over an unordered set is hash-order "
                "dependent; wrap the set in sorted(...)",
            )

    def _check_iter(self, source: SourceFile, iter_expr: ast.expr) -> Iterator[Violation]:
        """Flag direct iteration over a set expression."""
        if self._is_set_expr(iter_expr):
            yield self.violation(
                source,
                iter_expr,
                "iteration over an unordered set is hash-order dependent; "
                "wrap it in sorted(...)",
            )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        """True for set literals, set comprehensions, and set()/frozenset()."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func) or ""
            return dotted.split(".")[-1] in ("set", "frozenset")
        return False
