"""The project-specific rules enforced by ``repro.tools.staticcheck``.

Five general rules live in this module (see ``docs/static_analysis.md``);
the concurrency suite (``lock-discipline``, ``lock-order``,
``nondeterminism``) lives in :mod:`repro.tools.staticcheck.concurrency`
and is registered by the import at the bottom of this file, and the
``suppression-stale`` placeholder is registered by the core itself.

``determinism``
    Algorithm code must draw randomness from an injected, explicitly
    seeded ``np.random.Generator`` and must not read the wall clock with
    ``time.time()``; the legacy global NumPy RNG and the stdlib
    ``random`` module are banned outright, and even seeded generators
    may not be constructed at import time.
``mutable-default``
    No mutable default arguments, and no bare ``None`` default on a
    parameter annotated as ``np.ndarray`` / ``np.random.Generator``
    (use ``Optional[...]`` or make the argument required).
``broad-except``
    No bare ``except:`` and no ``except Exception:`` that swallows the
    error without re-raising.
``config-drift``
    Every declared ``PipelineConfig`` field must be read somewhere in
    the scanned tree, and every attribute access on a value known to be
    a ``PipelineConfig`` must resolve to a declared field.
``docstring``
    Public modules, classes, top-level functions, and methods need
    docstrings; a method is exempt when a same-named documented method
    exists anywhere in the project (the override-inherits-docs
    convention).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import Project, Rule, SourceFile, Violation, register


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@register
class DeterminismRule(Rule):
    """Seed-reproducibility: injected generators only, no wall-clock."""

    id = "determinism"
    description = (
        "randomness must come from an explicitly seeded np.random.Generator; "
        "no legacy np.random.* globals, stdlib random, time.time(), or "
        "import-time RNG construction"
    )

    _GENERATOR_API = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Scan one file for nondeterministic RNG/clock usage."""
        random_aliases: Set[str] = set()
        time_aliases: Set[str] = set()
        violations: List[Violation] = []

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        violations.append(
                            self.violation(
                                source,
                                node,
                                "stdlib random uses hidden global state; "
                                "inject an np.random.Generator instead",
                            )
                        )
                        random_aliases.add(alias.asname or alias.name)
                    elif alias.name == "time":
                        time_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    violations.append(
                        self.violation(
                            source,
                            node,
                            "stdlib random uses hidden global state; "
                            "inject an np.random.Generator instead",
                        )
                    )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            violations.append(
                                self.violation(
                                    source,
                                    node,
                                    "time.time() is wall-clock and "
                                    "nondeterministic; use time.perf_counter "
                                    "via the pipeline timer",
                                )
                            )

        violations.extend(self._walk_calls(source, source.tree, 0, random_aliases, time_aliases))
        return iter(violations)

    def _walk_calls(
        self,
        source: SourceFile,
        node: ast.AST,
        depth: int,
        random_aliases: Set[str],
        time_aliases: Set[str],
    ) -> List[Violation]:
        """Recurse tracking function-nesting depth (0 == import time)."""
        violations: List[Violation] = []
        for child in ast.iter_child_nodes(node):
            child_depth = depth + 1 if isinstance(child, _FUNCTION_NODES) else depth
            if isinstance(child, ast.Call):
                found = self._check_call(source, child, depth, random_aliases, time_aliases)
                if found is not None:
                    violations.append(found)
            violations.extend(
                self._walk_calls(source, child, child_depth, random_aliases, time_aliases)
            )
        return violations

    def _check_call(
        self,
        source: SourceFile,
        call: ast.Call,
        depth: int,
        random_aliases: Set[str],
        time_aliases: Set[str],
    ) -> Optional[Violation]:
        """One Call node: return a violation or None."""
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        for prefix in ("np.random.", "numpy.random."):
            if dotted.startswith(prefix):
                tail = dotted[len(prefix):]
                if tail.split(".")[0] not in self._GENERATOR_API:
                    return self.violation(
                        source,
                        call,
                        f"legacy global NumPy RNG ({dotted}); use an injected "
                        "np.random.Generator",
                    )
                if tail == "default_rng" and not call.args and not call.keywords:
                    return self.violation(
                        source,
                        call,
                        "np.random.default_rng() without an explicit seed is "
                        "nondeterministic",
                    )
                if depth == 0:
                    return self.violation(
                        source,
                        call,
                        "RNG constructed at import time; build generators "
                        "inside functions from an explicit seed",
                    )
                return None
        root = dotted.split(".")[0]
        if root in random_aliases and "." in dotted:
            return self.violation(
                source,
                call,
                f"stdlib random call ({dotted}); inject an "
                "np.random.Generator instead",
            )
        if root in time_aliases and dotted == f"{root}.time":
            return self.violation(
                source,
                call,
                "time.time() is wall-clock and nondeterministic; use "
                "time.perf_counter via the pipeline timer",
            )
        return None


@register
class MutableDefaultRule(Rule):
    """Shared-state default arguments."""

    id = "mutable-default"
    description = (
        "no mutable default arguments; no bare None default on "
        "np.ndarray / np.random.Generator parameters"
    )

    _MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}
    _MUTABLE_NP = {"zeros", "ones", "empty", "full", "array", "arange"}

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Scan every function signature in the file."""
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            pos_defaults: List[Tuple[ast.arg, Optional[ast.expr]]] = list(
                zip(positional[len(positional) - len(args.defaults):], args.defaults)
            )
            kw_defaults = [
                (arg, default)
                for arg, default in zip(args.kwonlyargs, args.kw_defaults)
                if default is not None
            ]
            for arg, default in pos_defaults + kw_defaults:
                found = self._check_default(source, arg, default)
                if found is not None:
                    violations.append(found)
        return iter(violations)

    def _check_default(
        self, source: SourceFile, arg: ast.arg, default: ast.expr
    ) -> Optional[Violation]:
        """One (parameter, default) pair: return a violation or None."""
        if isinstance(default, self._MUTABLE_LITERALS):
            return self.violation(
                source,
                default,
                f"mutable default for parameter {arg.arg!r}; default to None "
                "and allocate inside the function",
            )
        if isinstance(default, ast.Call):
            dotted = _dotted(default.func) or ""
            tail = dotted.split(".")[-1]
            if dotted in self._MUTABLE_CALLS or (
                "." in dotted and tail in self._MUTABLE_NP
            ):
                return self.violation(
                    source,
                    default,
                    f"mutable default for parameter {arg.arg!r} "
                    f"(call to {dotted}); default to None and allocate "
                    "inside the function",
                )
        if (
            isinstance(default, ast.Constant)
            and default.value is None
            and arg.annotation is not None
        ):
            annotation = ast.unparse(arg.annotation)
            if "Optional" in annotation or "None" in annotation:
                return None
            if "ndarray" in annotation or "Generator" in annotation:
                return self.violation(
                    source,
                    default,
                    f"parameter {arg.arg!r} is annotated {annotation} but "
                    "defaults to None; use Optional[...] or make it required",
                )
        return None


@register
class BroadExceptRule(Rule):
    """Silently swallowed errors."""

    id = "broad-except"
    description = "no bare except; no except Exception that does not re-raise"

    _BROAD = {"Exception", "BaseException"}

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Scan every except handler in the file."""
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                violations.append(
                    self.violation(
                        source, node, "bare except: catch a specific exception type"
                    )
                )
                continue
            if self._is_broad(node.type) and not self._reraises(node):
                violations.append(
                    self.violation(
                        source,
                        node,
                        f"except {ast.unparse(node.type)} without re-raise "
                        "swallows errors; catch a specific type or re-raise",
                    )
                )
        return iter(violations)

    def _is_broad(self, node: ast.expr) -> bool:
        """True for Exception/BaseException, alone or inside a tuple."""
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        dotted = _dotted(node)
        return dotted is not None and dotted.split(".")[-1] in self._BROAD

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        """True when the handler contains a bare ``raise``."""
        return any(
            isinstance(node, ast.Raise) and node.exc is None
            for node in ast.walk(handler)
        )


@dataclass(frozen=True)
class _Access:
    """One attribute read (or constructor kwarg) on a PipelineConfig."""

    attr: str
    path: str
    line: int
    col: int
    is_read: bool


@register
class ConfigDriftRule(Rule):
    """Declared config fields and actual usage must stay in sync."""

    id = "config-drift"
    description = (
        "every PipelineConfig field must be read somewhere; every access on "
        "a PipelineConfig value must resolve to a declared field"
    )

    _CONFIG_CLASS = "PipelineConfig"
    _FACTORIES = {"PipelineConfig", "small_config"}
    _ALLOWED_ATTRS = {"replace"}

    def __init__(self) -> None:
        self._fields: Dict[str, Tuple[str, int, int]] = {}
        self._accesses: List[_Access] = []

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Collect field declarations and config accesses from one file."""
        self._collect_fields(source)
        receivers, self_receivers = self._collect_receivers(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if self._is_receiver(node.value, receivers, self_receivers):
                    self._accesses.append(
                        _Access(
                            attr=node.attr,
                            path=source.path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            is_read=True,
                        )
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func) or ""
                if dotted.split(".")[-1] == self._CONFIG_CLASS:
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            self._accesses.append(
                                _Access(
                                    attr=keyword.arg,
                                    path=source.path,
                                    line=keyword.value.lineno,
                                    col=keyword.value.col_offset + 1,
                                    is_read=False,
                                )
                            )
        return iter(())

    def _collect_fields(self, source: SourceFile) -> None:
        """Record field declarations from a PipelineConfig class body."""
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == self._CONFIG_CLASS:
                for statement in node.body:
                    if (
                        isinstance(statement, ast.AnnAssign)
                        and isinstance(statement.target, ast.Name)
                        and not statement.target.id.startswith("_")
                        and "ClassVar" not in ast.unparse(statement.annotation)
                    ):
                        self._fields[statement.target.id] = (
                            source.path,
                            statement.lineno,
                            statement.col_offset + 1,
                        )

    def _collect_receivers(self, source: SourceFile) -> Tuple[Set[str], Set[str]]:
        """Names (and ``self.<name>`` attrs) known to hold a PipelineConfig."""
        receivers: Set[str] = set()
        self_receivers: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
                    if arg.annotation is not None and self._CONFIG_CLASS in ast.unparse(
                        arg.annotation
                    ):
                        receivers.add(arg.arg)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not self._value_is_config(node.value, receivers):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    receivers.add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self_receivers.add(target.attr)
        return receivers, self_receivers

    def _value_is_config(self, value: ast.expr, receivers: Set[str]) -> bool:
        """True when the assigned value is (or contains) a PipelineConfig."""
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func) or ""
                if dotted.split(".")[-1] in self._FACTORIES:
                    return True
            elif isinstance(node, ast.Name) and node.id in receivers:
                return True
        return False

    def _is_receiver(
        self, value: ast.expr, receivers: Set[str], self_receivers: Set[str]
    ) -> bool:
        """True when *value* is a known PipelineConfig expression."""
        if isinstance(value, ast.Name):
            return value.id in receivers
        return (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and value.attr in self_receivers
        )

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Cross-file reconciliation of declarations vs. accesses."""
        if not self._fields:
            return iter(())
        violations: List[Violation] = []
        for access in self._accesses:
            if (
                access.attr not in self._fields
                and access.attr not in self._ALLOWED_ATTRS
                and not access.attr.startswith("__")
            ):
                violations.append(
                    Violation(
                        path=access.path,
                        line=access.line,
                        col=access.col,
                        rule=self.id,
                        message=(
                            f"access to undeclared PipelineConfig field "
                            f"{access.attr!r}"
                        ),
                    )
                )
        read_fields = {access.attr for access in self._accesses if access.is_read}
        if read_fields:
            for name, (path, line, col) in sorted(self._fields.items()):
                if name not in read_fields:
                    violations.append(
                        Violation(
                            path=path,
                            line=line,
                            col=col,
                            rule=self.id,
                            message=(
                                f"PipelineConfig field {name!r} is never read "
                                "in the scanned tree; delete it or wire it up"
                            ),
                        )
                    )
        return iter(violations)


@register
class DocstringRule(Rule):
    """Public-API documentation."""

    id = "docstring"
    description = (
        "public modules, classes, functions and methods need docstrings "
        "(methods inherit documentation from same-named documented methods)"
    )

    def __init__(self) -> None:
        self._documented_methods: Set[str] = set()
        self._pending: List[Tuple[str, Violation]] = []

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Per-file pass; method findings are deferred to finalize()."""
        violations: List[Violation] = []
        if ast.get_docstring(source.tree) is None:
            violations.append(
                Violation(
                    path=source.path,
                    line=1,
                    col=1,
                    rule=self.id,
                    message="module is missing a docstring",
                )
            )
        for node in source.tree.body:
            violations.extend(self._check_top_level(source, node))
        return iter(violations)

    def _check_top_level(self, source: SourceFile, node: ast.stmt) -> Iterator[Violation]:
        """Check one module-level class or function."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_") and ast.get_docstring(node) is None:
                yield self.violation(
                    source, node, f"public function {node.name!r} is missing a docstring"
                )
        elif isinstance(node, ast.ClassDef):
            if not node.name.startswith("_") and ast.get_docstring(node) is None:
                yield self.violation(
                    source, node, f"public class {node.name!r} is missing a docstring"
                )
            if not node.name.startswith("_"):
                self._collect_methods(source, node)

    def _collect_methods(self, source: SourceFile, class_node: ast.ClassDef) -> None:
        """Record documented method names and pending undocumented ones."""
        for node in class_node.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is not None:
                self._documented_methods.add(node.name)
            else:
                self._pending.append(
                    (
                        node.name,
                        self.violation(
                            source,
                            node,
                            f"public method {class_node.name}.{node.name!r} is "
                            "missing a docstring (and no same-named documented "
                            "method exists to inherit from)",
                        ),
                    )
                )

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Emit method findings that no documented override can excuse."""
        return iter(
            violation
            for name, violation in self._pending
            if name not in self._documented_methods
        )


# Importing the module registers the concurrency rules alongside these.
from . import concurrency as _concurrency  # noqa: E402,F401
