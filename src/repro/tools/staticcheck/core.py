"""Core of the project-aware static analyzer.

The model is deliberately small:

* a :class:`SourceFile` is a parsed ``.py`` file plus its per-line
  suppression sets (``# staticcheck: disable=<rule>[,<rule>...]``),
* a :class:`Rule` inspects one file at a time via :meth:`Rule.check` and
  may emit project-wide findings from :meth:`Rule.finalize` once every
  file has been seen (used by cross-file rules such as ``config-drift``),
* an :class:`Analyzer` walks the requested paths, applies every
  registered rule, filters suppressed findings, and returns sorted
  :class:`Violation` records.

Rules register themselves through :func:`register`; the registry is what
the CLI's ``--list-rules`` and ``--disable`` options operate on.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

_SUPPRESS_RE = re.compile(r"#\s*staticcheck:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule ID anchored to a file, line, and column."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as the canonical ``path:line:col: rule: message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class SuppressionComment:
    """One ``# staticcheck: disable=...`` comment and the lines it covers.

    ``used`` accumulates the rule names that actually matched a finding,
    so unused (stale) suppressions can be reported after analysis.
    """

    line: int
    rules: Tuple[str, ...]
    covers: Tuple[int, ...]
    used: Set[str] = field(default_factory=set)


class SourceFile:
    """A parsed Python source file with suppression metadata."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppression_comments: List[SuppressionComment] = []
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self) -> Dict[int, Set[str]]:
        """Map line number -> rule names suppressed on that line.

        Only genuine ``COMMENT`` tokens count (text that merely looks
        like a suppression inside a string/docstring does not).  A
        trailing comment suppresses its own line; a comment that is the
        whole line suppresses the next line as well, so either style
        works — trailing ``disable=`` on the offending line, or the same
        comment alone on the line directly above it.
        """
        suppressed: Dict[int, Set[str]] = {}
        for lineno, comment_text in self._iter_comments():
            match = _SUPPRESS_RE.search(comment_text)
            if not match:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            covers = [lineno]
            suppressed.setdefault(lineno, set()).update(rules)
            line = self.lines[lineno - 1] if lineno <= len(self.lines) else ""
            if line.lstrip().startswith("#"):
                suppressed.setdefault(lineno + 1, set()).update(rules)
                covers.append(lineno + 1)
            self.suppression_comments.append(
                SuppressionComment(
                    line=lineno,
                    rules=tuple(sorted(rules)),
                    covers=tuple(covers),
                )
            )
        return suppressed

    def _iter_comments(self) -> Iterator[Tuple[int, str]]:
        """(line, text) for every comment token in the file."""
        reader = io.StringIO(self.text).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError):
            # ast.parse accepted the file, so this should be unreachable;
            # fall back to having no suppressions rather than crashing.
            return

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when *rule* (or ``all``) is disabled on *line*."""
        active = self.suppressions.get(line, ())
        return rule in active or "all" in active

    def mark_suppressed(self, line: int, rule: str) -> None:
        """Record that a finding for *rule* on *line* was suppressed."""
        for comment in self.suppression_comments:
            if line in comment.covers and (
                rule in comment.rules or "all" in comment.rules
            ):
                comment.used.add(rule)


@dataclass
class Project:
    """Everything the analyzer saw, handed to cross-file finalizers."""

    files: List[SourceFile] = field(default_factory=list)


class Rule:
    """Base class for one analysis rule.

    Subclasses set :attr:`id` / :attr:`description`, implement
    :meth:`check` for per-file findings, and may override
    :meth:`finalize` for findings that need the whole project.
    """

    id: str = ""
    description: str = ""

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Yield violations found in a single file."""
        return iter(())

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Yield cross-file violations once every file has been checked."""
        return iter(())

    def violation(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at *node* in *source*."""
        return Violation(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


RULES: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in RULES:
        raise ValueError(f"duplicate rule id: {rule_cls.id}")
    RULES[rule_cls.id] = rule_cls
    return rule_cls


@register
class SuppressionStaleRule(Rule):
    """Suppression comments must match a finding.

    This class is a registry placeholder (so the rule can be listed and
    ``--disable``\\ d); the findings themselves are computed by the
    :class:`Analyzer`, which is the only component that knows which
    suppressions were consumed during filtering.
    """

    id = "suppression-stale"
    description = (
        "every `# staticcheck: disable=<rule>` comment must suppress at "
        "least one actual finding; stale comments hide future regressions"
    )


def iter_python_files(
    paths: Sequence[str], missing: Optional[List[str]] = None
) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` paths.

    Nonexistent paths are skipped (and appended to *missing* when a
    collector list is given) so that an empty or mistyped path produces
    an explicit "0 files checked" outcome instead of a crash.
    """
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            if missing is not None:
                missing.append(raw)
            continue
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class Analyzer:
    """Runs a set of rules over a set of paths."""

    def __init__(self, disabled: Optional[Iterable[str]] = None) -> None:
        self.disabled: Set[str] = set(disabled or ())
        unknown = self.disabled - RULES.keys()
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        self.rules: List[Rule] = [
            cls() for rule_id, cls in sorted(RULES.items())
            if rule_id not in self.disabled
        ]
        self.parse_errors: List[Violation] = []
        self.files_checked = 0
        self.missing_paths: List[str] = []
        self.warnings: List[str] = []

    def run(self, paths: Sequence[str]) -> List[Violation]:
        """Analyze *paths* and return stably sorted, unsuppressed violations."""
        project = Project()
        violations: List[Violation] = []
        for file_path in iter_python_files(paths, missing=self.missing_paths):
            self.files_checked += 1
            text = file_path.read_text(encoding="utf-8")
            try:
                source = SourceFile(str(file_path), text)
            except SyntaxError as exc:
                self.parse_errors.append(
                    Violation(
                        path=str(file_path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule="parse-error",
                        message=f"cannot parse file: {exc.msg}",
                    )
                )
                continue
            project.files.append(source)
            for rule in self.rules:
                violations.extend(rule.check(source))
        for rule in self.rules:
            violations.extend(rule.finalize(project))

        by_path = {source.path: source for source in project.files}
        kept: List[Violation] = []
        for violation in violations:
            source_for = by_path.get(violation.path)
            if source_for is not None and source_for.is_suppressed(
                violation.line, violation.rule
            ):
                source_for.mark_suppressed(violation.line, violation.rule)
                continue
            kept.append(violation)
        kept.extend(self.parse_errors)
        kept.extend(self._suppression_findings(project))
        return sorted(
            set(kept),
            key=lambda v: (v.path, v.line, v.rule, v.col, v.message),
        )

    def _suppression_findings(self, project: Project) -> List[Violation]:
        """Stale-suppression violations plus unknown-rule-name warnings.

        A suppression is stale when its rule never matched a finding it
        could hide.  Rules disabled for this run are skipped (they could
        not have fired), and unknown rule names become warnings rather
        than violations so a typo cannot silently disable anything.
        """
        findings: List[Violation] = []
        report_stale = "suppression-stale" not in self.disabled
        for source in project.files:
            for comment in source.suppression_comments:
                for rule in comment.rules:
                    if rule != "all" and rule not in RULES:
                        self.warnings.append(
                            f"{source.path}:{comment.line}: unknown rule "
                            f"{rule!r} in suppression comment (known rules: "
                            f"{', '.join(sorted(RULES))})"
                        )
                        continue
                    if rule != "all" and rule in self.disabled:
                        continue
                    if report_stale and rule not in comment.used and not (
                        rule == "all" and comment.used
                    ):
                        findings.append(
                            Violation(
                                path=source.path,
                                line=comment.line,
                                col=1,
                                rule="suppression-stale",
                                message=(
                                    f"suppression for rule {rule!r} matches no "
                                    "finding; remove the stale comment"
                                ),
                            )
                        )
        return findings


def analyze_paths(
    paths: Sequence[str], disabled: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Convenience wrapper: analyze *paths* with all registered rules."""
    from . import rules as _rules  # noqa: F401  (ensure registration)

    return Analyzer(disabled=disabled).run(paths)
