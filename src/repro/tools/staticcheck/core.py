"""Core of the project-aware static analyzer.

The model is deliberately small:

* a :class:`SourceFile` is a parsed ``.py`` file plus its per-line
  suppression sets (``# staticcheck: disable=<rule>[,<rule>...]``),
* a :class:`Rule` inspects one file at a time via :meth:`Rule.check` and
  may emit project-wide findings from :meth:`Rule.finalize` once every
  file has been seen (used by cross-file rules such as ``config-drift``),
* an :class:`Analyzer` walks the requested paths, applies every
  registered rule, filters suppressed findings, and returns sorted
  :class:`Violation` records.

Rules register themselves through :func:`register`; the registry is what
the CLI's ``--list-rules`` and ``--disable`` options operate on.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

_SUPPRESS_RE = re.compile(r"#\s*staticcheck:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule ID anchored to a file, line, and column."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as the canonical ``path:line:col: rule: message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """A parsed Python source file with suppression metadata."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppressions = self._parse_suppressions()

    def _parse_suppressions(self) -> Dict[int, Set[str]]:
        """Map line number -> rule names suppressed on that line.

        A trailing comment suppresses its own line; a comment that is the
        whole line suppresses the next line as well, so either style works::

            x = risky()  # staticcheck: disable=determinism
            # staticcheck: disable=determinism
            x = risky()
        """
        suppressed: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            suppressed.setdefault(lineno, set()).update(rules)
            if line.lstrip().startswith("#"):
                suppressed.setdefault(lineno + 1, set()).update(rules)
        return suppressed

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when *rule* (or ``all``) is disabled on *line*."""
        active = self.suppressions.get(line, ())
        return rule in active or "all" in active


@dataclass
class Project:
    """Everything the analyzer saw, handed to cross-file finalizers."""

    files: List[SourceFile] = field(default_factory=list)


class Rule:
    """Base class for one analysis rule.

    Subclasses set :attr:`id` / :attr:`description`, implement
    :meth:`check` for per-file findings, and may override
    :meth:`finalize` for findings that need the whole project.
    """

    id: str = ""
    description: str = ""

    def check(self, source: SourceFile) -> Iterator[Violation]:
        """Yield violations found in a single file."""
        return iter(())

    def finalize(self, project: Project) -> Iterator[Violation]:
        """Yield cross-file violations once every file has been checked."""
        return iter(())

    def violation(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at *node* in *source*."""
        return Violation(
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


RULES: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in RULES:
        raise ValueError(f"duplicate rule id: {rule_cls.id}")
    RULES[rule_cls.id] = rule_cls
    return rule_cls


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


class Analyzer:
    """Runs a set of rules over a set of paths."""

    def __init__(self, disabled: Optional[Iterable[str]] = None) -> None:
        disabled_set = set(disabled or ())
        unknown = disabled_set - RULES.keys()
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
        self.rules: List[Rule] = [
            cls() for rule_id, cls in sorted(RULES.items())
            if rule_id not in disabled_set
        ]
        self.parse_errors: List[Violation] = []

    def run(self, paths: Sequence[str]) -> List[Violation]:
        """Analyze *paths* and return sorted, unsuppressed violations."""
        project = Project()
        violations: List[Violation] = []
        for file_path in iter_python_files(paths):
            text = file_path.read_text(encoding="utf-8")
            try:
                source = SourceFile(str(file_path), text)
            except SyntaxError as exc:
                self.parse_errors.append(
                    Violation(
                        path=str(file_path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        rule="parse-error",
                        message=f"cannot parse file: {exc.msg}",
                    )
                )
                continue
            project.files.append(source)
            for rule in self.rules:
                violations.extend(rule.check(source))
        for rule in self.rules:
            violations.extend(rule.finalize(project))

        by_path = {source.path: source for source in project.files}
        kept = [
            violation
            for violation in violations
            if violation.path not in by_path
            or not by_path[violation.path].is_suppressed(violation.line, violation.rule)
        ]
        kept.extend(self.parse_errors)
        return sorted(set(kept))


def analyze_paths(
    paths: Sequence[str], disabled: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Convenience wrapper: analyze *paths* with all registered rules."""
    from . import rules as _rules  # noqa: F401  (ensure registration)

    return Analyzer(disabled=disabled).run(paths)
