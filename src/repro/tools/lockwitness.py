"""Runtime lock-witness validator: observed lock orders vs. the static graph.

The static ``lock-order`` rule in ``repro.tools.staticcheck`` builds an
acquisition-order digraph from the source tree.  A static model can
silently drift from reality, so this module records the orders that
*actually* happen while the test suite runs and cross-checks them:

* :func:`enabled` mirrors ``repro.nn.contracts``: ``REPRO_LOCKWITNESS=1``
  force-enables, ``REPRO_LOCKWITNESS=0`` force-disables, and when the
  variable is unset the witness is on under pytest (detected via
  ``PYTEST_CURRENT_TEST``) or when :func:`set_default` flipped it on;
* classes decorated with :func:`repro.tools.annotations.guarded_by` get
  their declared lock attributes wrapped in a :class:`WitnessLock`
  proxy at construction time (see :func:`wrap_instance_locks`);
* every acquisition made while another witnessed lock is held records a
  directed edge ``held -> acquired`` under the canonical lock names of
  :func:`repro.tools.annotations.canonical_lock_name`;
* :func:`verify_against_static` asserts every observed edge exists in
  the static graph — an observed order the analyzer cannot see means
  the static model (or an annotation) is stale and must be fixed.

The CLI closes the loop in CI::

    REPRO_LOCKWITNESS=1 REPRO_LOCKWITNESS_OUT=/tmp/witness.json pytest -q
    python -m repro.tools.lockwitness /tmp/witness.json --static src

Reverse orders observed at runtime (``A -> B`` and ``B -> A``) are
reported as conflicts — an actual deadlock hazard — independent of the
static graph.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

ENV = "REPRO_LOCKWITNESS"
OUT_ENV = "REPRO_LOCKWITNESS_OUT"

_DEFAULT_ENABLED = False


def enabled() -> bool:
    """Resolve the witness on/off state (environment wins over default)."""
    flag = os.environ.get(ENV)
    if flag is not None:
        return flag.strip().lower() not in ("0", "false", "")
    if "PYTEST_CURRENT_TEST" in os.environ:
        return True
    return _DEFAULT_ENABLED


def set_default(value: bool) -> bool:
    """Set the programmatic default used when ``REPRO_LOCKWITNESS`` is unset.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT_ENABLED
    previous = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(value)
    return previous


class Witness:
    """Process-global recorder of witnessed lock-acquisition orders."""

    def __init__(self) -> None:
        self._lock = threading.Lock()  # internal, never itself witnessed
        self._held = threading.local()
        self.edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.conflicts: List[str] = []

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _call_site(self) -> str:
        """``file:line`` of the instrumented acquisition, best effort."""
        frame = sys._getframe(3) if hasattr(sys, "_getframe") else None
        if frame is None:
            return "<unknown>"
        return f"{frame.f_code.co_filename}:{frame.f_lineno}"

    def record_acquire(self, label: str) -> None:
        """Note that *label* was acquired by the calling thread."""
        stack = self._stack()
        held = [h for h in stack if h != label]
        if held:
            site = self._call_site()
            with self._lock:
                for h in dict.fromkeys(held):
                    entry = self.edges.get((h, label))
                    if entry is None:
                        self.edges[(h, label)] = {"site": site, "count": 1}
                        if (label, h) in self.edges:
                            self.conflicts.append(
                                f"opposite acquisition orders observed: "
                                f"{h} -> {label} (at {site}) and "
                                f"{label} -> {h} (at "
                                f"{self.edges[(label, h)]['site']})"
                            )
                    else:
                        entry["count"] += 1
        stack.append(label)

    def record_release(self, label: str) -> None:
        """Note that *label* was released by the calling thread."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == label:
                del stack[index]
                return

    def observed_edges(self) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """A snapshot of every recorded ``held -> acquired`` edge."""
        with self._lock:
            return {pair: dict(info) for pair, info in self.edges.items()}

    def reset(self) -> None:
        """Drop every recorded edge and conflict (held stacks survive)."""
        with self._lock:
            self.edges.clear()
            del self.conflicts[:]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able export consumed by the CLI cross-check."""
        with self._lock:
            return {
                "version": 1,
                "edges": [
                    {
                        "from": a,
                        "to": b,
                        "site": info["site"],
                        "count": info["count"],
                    }
                    for (a, b), info in sorted(self.edges.items())
                ],
                "conflicts": list(self.conflicts),
            }

    def save(self, path: str) -> str:
        """Write the JSON export to *path*; returns the path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path


_WITNESS = Witness()


def get_witness() -> Witness:
    """The process-global :class:`Witness`."""
    return _WITNESS


def reset() -> None:
    """Clear the process-global witness."""
    _WITNESS.reset()


class WitnessLock:
    """A transparent proxy around a lock/RLock/Condition that records orders.

    Mutual exclusion is untouched — every operation delegates to the
    wrapped primitive — but ``acquire``/``__enter__`` push the lock's
    canonical label onto a per-thread held stack and record an edge for
    each distinct label already held.  ``Condition.wait`` releases and
    re-acquires the underlying lock internally; the witness deliberately
    keeps the label held across a wait (the waiter still *logically*
    owns the region), a documented imprecision.
    """

    __slots__ = ("label", "wrapped", "_witness")

    def __init__(self, label: str, wrapped: Any, witness: Optional[Witness] = None) -> None:
        self.label = label
        self.wrapped = wrapped
        self._witness = witness or _WITNESS

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        """Acquire the wrapped lock; record the order on success."""
        acquired = bool(self.wrapped.acquire(*args, **kwargs))
        if acquired:
            self._witness.record_acquire(self.label)
        return acquired

    def release(self, *args: Any, **kwargs: Any) -> None:
        """Release the wrapped lock and pop the held-stack entry."""
        self.wrapped.release(*args, **kwargs)
        self._witness.record_release(self.label)

    def __enter__(self) -> Any:
        result = self.wrapped.__enter__()
        self._witness.record_acquire(self.label)
        return result

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> Any:
        out = self.wrapped.__exit__(exc_type, exc, tb)
        self._witness.record_release(self.label)
        return out

    def __getattr__(self, name: str) -> Any:
        # wait/notify/notify_all/locked/... delegate untouched.
        return getattr(self.wrapped, name)

    def __repr__(self) -> str:
        return f"WitnessLock({self.label!r}, {self.wrapped!r})"


def wrap_instance_locks(obj: Any, cls: Optional[type] = None) -> None:
    """Replace *obj*'s declared lock attributes with witness proxies.

    Idempotent: attributes that are already :class:`WitnessLock`s (e.g.
    a shared lock wrapped by its owning class) are left alone, so the
    first wrapper — the owner — decides the canonical label.
    """
    from .annotations import canonical_lock_name, guarded_fields, lock_aliases

    owner = cls or type(obj)
    attrs = set(guarded_fields(owner).values()) | set(lock_aliases(owner))
    for attr in sorted(attrs):
        current = getattr(obj, attr, None)
        if current is None or isinstance(current, WitnessLock):
            continue
        setattr(obj, attr, WitnessLock(canonical_lock_name(owner, attr), current))


def verify_against_static(
    observed: Dict[Tuple[str, str], Dict[str, Any]],
    static_paths: Sequence[str],
) -> List[str]:
    """Cross-check *observed* runtime edges against the static graph.

    Returns human-readable mismatch messages — empty means every
    observed acquisition order is explained by the static model.
    """
    from .staticcheck.concurrency import build_lock_graph

    graph = build_lock_graph(static_paths)
    mismatches: List[str] = []
    for (a, b), info in sorted(observed.items()):
        if a == b:
            continue
        if not graph.has_edge(a, b):
            mismatches.append(
                f"runtime acquired {b} while holding {a} (at {info['site']}, "
                f"seen {info['count']}x) but the static lock-order graph has "
                f"no such edge — annotate the code path or fix the analyzer"
            )
    return mismatches


def _load_observed(path: str) -> Tuple[Dict[Tuple[str, str], Dict[str, Any]], List[str]]:
    """Parse a witness JSON export into (edges, conflicts)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    edges: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for entry in payload.get("edges", ()):
        edges[(entry["from"], entry["to"])] = {
            "site": entry.get("site", "<unknown>"),
            "count": entry.get("count", 1),
        }
    return edges, list(payload.get("conflicts", ()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: cross-check a witness export against the static lock graph."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lockwitness",
        description=(
            "Validate observed lock-acquisition orders against the static "
            "lock-order graph extracted by repro.tools.staticcheck."
        ),
    )
    parser.add_argument(
        "observed",
        nargs="?",
        help=f"witness JSON export (written via {OUT_ENV} under pytest)",
    )
    parser.add_argument(
        "--static",
        default="src",
        metavar="PATH",
        help="source tree for the static graph (default: src)",
    )
    parser.add_argument(
        "--dump-static",
        action="store_true",
        help="print the static lock-order edges and exit",
    )
    options = parser.parse_args(argv)

    from .staticcheck.concurrency import build_lock_graph

    graph = build_lock_graph([options.static])
    if options.dump_static:
        for (a, b), sites in sorted(graph.edges.items()):
            print(f"{a} -> {b}    [{sites[0]}]")
        return 0
    if not options.observed:
        parser.error("observed JSON path required unless --dump-static")
    edges, conflicts = _load_observed(options.observed)
    failures = list(conflicts)
    failures.extend(verify_against_static(edges, [options.static]))
    for message in failures:
        print(f"lockwitness: {message}", file=sys.stderr)
    checked = len([1 for (a, b) in edges if a != b])
    print(
        f"lockwitness: {checked} observed edge(s) checked against "
        f"{len(graph.edges)} static edge(s); "
        f"{len(failures)} problem(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
