"""Lightweight concurrency annotations: ``@guarded_by`` and ``@lock_alias``.

These decorators declare the lock discipline of a class so that both the
static analyzer (``repro.tools.staticcheck`` rule ``lock-discipline``)
and the runtime lock-witness validator (``repro.tools.lockwitness``) can
check it:

* :func:`guarded_by` states that a set of instance fields must only be
  read or written while ``self.<lock>`` is held::

      @guarded_by("_lock", "_active", "_history", "_next_id")
      class ModelRegistry: ...

  The analyzer then flags any ``self._active`` access outside a
  ``with self._lock:`` block (``__init__`` and ``*_locked`` helper
  methods, whose callers must already hold the lock, are exempt).

* :func:`lock_alias` states that ``self.<attr>`` may actually be a lock
  owned by another class (e.g. ``repro.obs`` metrics share the owning
  registry's ``RLock``), so the static lock-order graph and the runtime
  witness agree on one canonical name for it::

      @lock_alias("_lock", "Registry._lock")
      @guarded_by("_lock", "value")
      class Counter: ...

The equivalent declarative form — a class-level ``GUARDED_BY`` dict
mapping field name to lock attribute — is also understood by the
analyzer for code that cannot import this module::

    class Worker:
        GUARDED_BY = {"_queue": "_cond"}

At runtime the decorators are nearly free: they record the declarations
on the class and, only while :mod:`repro.tools.lockwitness` is enabled,
wrap the declared lock attributes of each new instance in a witness
proxy that records real acquisition orders.
"""

from __future__ import annotations

import functools
import os
import sys
from typing import Any, Callable, Dict, Type, TypeVar

_T = TypeVar("_T")

#: Class attribute holding the field -> lock-attribute mapping.
GUARDED_BY_ATTR = "__guarded_by__"
#: Class attribute holding the lock-attribute -> canonical-name mapping.
LOCK_ALIASES_ATTR = "__lock_aliases__"
_WRAPPED_FLAG = "__lockwitness_instrumented__"


def guarded_fields(cls: type) -> Dict[str, str]:
    """The declared field -> lock-attribute mapping of *cls* (may be empty)."""
    declared: Dict[str, str] = {}
    declared.update(getattr(cls, "GUARDED_BY", None) or {})
    declared.update(getattr(cls, GUARDED_BY_ATTR, None) or {})
    return declared


def lock_aliases(cls: type) -> Dict[str, str]:
    """The declared lock-attribute -> canonical-name mapping of *cls*."""
    return dict(getattr(cls, LOCK_ALIASES_ATTR, None) or {})


def canonical_lock_name(cls: type, attr: str) -> str:
    """Canonical graph label for ``self.<attr>`` on instances of *cls*."""
    return lock_aliases(cls).get(attr, f"{cls.__name__}.{attr}")


def _instrument_init(cls: Type[_T]) -> None:
    """Wrap ``cls.__init__`` so new instances get witness-proxied locks.

    Idempotent per class: stacked ``guarded_by`` decorators instrument
    only once.  The wrapper is a no-op unless the lock witness is
    enabled at construction time.
    """
    if cls.__dict__.get(_WRAPPED_FLAG):
        return
    original_init = cls.__init__

    @functools.wraps(original_init)
    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        # Don't import lockwitness just to learn it is off: the module can
        # only say "enabled" if it was already imported (set_default), the
        # env opts in, or we are under pytest.  Importing it here as a side
        # effect also breaks `python -m repro.tools.lockwitness` (runpy
        # warns when the target lands in sys.modules during package import).
        if "repro.tools.lockwitness" not in sys.modules and not (
            os.environ.get("REPRO_LOCKWITNESS")
            or os.environ.get("PYTEST_CURRENT_TEST")
        ):
            return
        from . import lockwitness

        if lockwitness.enabled():
            lockwitness.wrap_instance_locks(self, type(self))

    cls.__init__ = __init__  # type: ignore[method-assign]
    setattr(cls, _WRAPPED_FLAG, True)


def guarded_by(lock: str, *fields: str) -> Callable[[Type[_T]], Type[_T]]:
    """Class decorator: *fields* must only be accessed under ``self.<lock>``.

    Stackable — apply once per lock when a class shards its state across
    several locks.  Raises :class:`ValueError` when no fields are named,
    which almost always means the lock and field arguments were swapped.
    """
    if not fields:
        raise ValueError("guarded_by(lock, *fields) requires at least one field")

    def decorate(cls: Type[_T]) -> Type[_T]:
        declared = dict(getattr(cls, GUARDED_BY_ATTR, None) or {})
        for name in fields:
            declared[name] = lock
        setattr(cls, GUARDED_BY_ATTR, declared)
        _instrument_init(cls)
        return cls

    return decorate


def lock_alias(attr: str, canonical: str) -> Callable[[Type[_T]], Type[_T]]:
    """Class decorator: ``self.<attr>`` is the lock known as *canonical*.

    *canonical* is a ``ClassName.attr`` label — the name the lock-order
    graph and the runtime witness file the lock under.  Use it whenever
    a lock object is handed in from the class that owns it, so shared
    locks collapse to one graph node instead of one per holder class.
    """
    if "." not in canonical:
        raise ValueError(
            f"canonical lock name {canonical!r} must look like 'ClassName.attr'"
        )

    def decorate(cls: Type[_T]) -> Type[_T]:
        aliases = dict(getattr(cls, LOCK_ALIASES_ATTR, None) or {})
        aliases[attr] = canonical
        setattr(cls, LOCK_ALIASES_ATTR, aliases)
        return cls

    return decorate
