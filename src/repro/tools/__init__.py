"""Developer tooling that ships with the reproduction.

Three pieces:

* :mod:`repro.tools.staticcheck` — the project-aware static analyzer
  that gates every PR, including the concurrency suite
  (``--concurrency``: lock discipline, lock-order graph,
  nondeterminism);
* :mod:`repro.tools.annotations` — the ``@guarded_by`` / ``@lock_alias``
  declarations the concurrency rules check against;
* :mod:`repro.tools.lockwitness` — the opt-in runtime validator that
  records real lock-acquisition orders under pytest and cross-checks
  them against the static lock-order graph.

See ``docs/static_analysis.md``.
"""
