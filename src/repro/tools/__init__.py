"""Developer tooling that ships with the reproduction.

Currently a single subpackage: :mod:`repro.tools.staticcheck`, the
project-aware static analyzer that gates every PR (see
``docs/static_analysis.md``).
"""
