"""Span tracing: nested wall/CPU timing as a context manager.

A :class:`Span` measures one named unit of work.  Spans nest: entering a
span while another is active on the same thread attaches it as a child,
so a full pipeline run yields a tree whose leaves are the real hot loops
(NMF iterations, MABED selection, per-network training).  The tree is
owned by the :class:`repro.obs.Registry` that created the span.

When observability is disabled the module-level :func:`repro.obs.span`
helper returns :data:`NULL_SPAN` — a shared, stateless object whose
``__enter__``/``__exit__`` do nothing — so instrumented code pays one
env lookup and two no-op calls, nothing more.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class Span:
    """One timed unit of work; use as a context manager.

    Attributes are filled at exit: ``wall_s`` (``time.perf_counter``
    delta) and ``cpu_s`` (``time.process_time`` delta).  ``start_s`` is
    the wall-clock offset from the owning registry's creation, giving a
    deterministic-friendly ordering key without touching ``time.time``.
    ``meta`` holds arbitrary JSON-able annotations added via
    :meth:`annotate` (document counts, vocabulary sizes, ...).
    """

    __slots__ = (
        "name",
        "children",
        "meta",
        "wall_s",
        "cpu_s",
        "start_s",
        "_registry",
        "_wall0",
        "_cpu0",
        "_entered",
    )

    def __init__(self, name: str, registry: Any) -> None:
        self.name = name
        self.children: List["Span"] = []
        self.meta: Dict[str, Any] = {}
        self.wall_s: Optional[float] = None
        self.cpu_s: Optional[float] = None
        self.start_s: Optional[float] = None
        self._registry = registry
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._entered = False

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        if self._entered:
            raise RuntimeError(f"span {self.name!r} entered twice")
        self._entered = True
        self._registry._attach(self)
        self.start_s = time.perf_counter() - self._registry._epoch
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self._registry._detach(self)
        if exc_type is not None:
            self.meta.setdefault("error", exc_type.__name__)

    # -- annotations --------------------------------------------------------

    def annotate(self, **values: Any) -> "Span":
        """Attach JSON-able metadata to the span; returns self."""
        self.meta.update(values)
        return self

    # -- export -------------------------------------------------------------

    @property
    def self_wall_s(self) -> Optional[float]:
        """Wall time not attributed to any child span."""
        if self.wall_s is None:
            return None
        attributed = sum(c.wall_s or 0.0 for c in self.children)
        return max(0.0, self.wall_s - attributed)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of this span and its subtree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "start_s": self.start_s,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        timing = f"{self.wall_s:.4f}s" if self.wall_s is not None else "open"
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class _NullSpan:
    """Shared no-op span used whenever observability is disabled.

    Supports the full :class:`Span` surface (context manager, annotate,
    export) but records nothing and allocates nothing per use.
    """

    __slots__ = ()

    name = ""
    children: List[Any] = []
    meta: Dict[str, Any] = {}
    wall_s: Optional[float] = None
    cpu_s: Optional[float] = None
    start_s: Optional[float] = None
    self_wall_s: Optional[float] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **values: Any) -> "_NullSpan":
        """Discard the metadata; returns self."""
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Always empty."""
        return {}


NULL_SPAN = _NullSpan()
