"""Render saved observability snapshots as human-readable reports.

Consumes the JSON written by :meth:`repro.obs.Registry.save` (or the
dict from ``snapshot()``) and produces the per-stage timing tree that
``python -m repro.obs report <snapshot.json>`` prints — the §5.5-style
"where does the runtime go" view the paper reports only as totals.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot JSON file, validating its basic shape."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "spans" not in data or "metrics" not in data:
        raise ValueError(
            f"{path!r} is not an obs snapshot (expected 'spans' and 'metrics' keys)"
        )
    return data


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "   open "
    if value >= 100:
        return f"{value:7.1f}s"
    if value >= 0.1:
        return f"{value:7.3f}s"
    return f"{value * 1000.0:6.2f}ms"


def _span_lines(
    node: Dict[str, Any],
    root_wall: Optional[float],
    prefix: str,
    is_last: bool,
    is_root: bool,
    lines: List[str],
) -> None:
    wall = node.get("wall_s")
    cpu = node.get("cpu_s")
    share = ""
    if root_wall and wall is not None:
        share = f"{100.0 * wall / root_wall:5.1f}%"
    if is_root:
        connector, child_prefix = "", ""
    else:
        connector = f"{prefix}{'└── ' if is_last else '├── '}"
        child_prefix = f"{prefix}{'    ' if is_last else '│   '}"
    label = f"{connector}{node.get('name', '?')}"
    timing = f"{_format_seconds(wall)} wall  {_format_seconds(cpu)} cpu  {share}"
    lines.append(f"{label:<48} {timing}".rstrip())
    meta = node.get("meta")
    if meta:
        rendered = ", ".join(f"{k}={v}" for k, v in meta.items())
        lines.append(f"{child_prefix}      · {rendered}")
    children = node.get("children", [])
    for i, child in enumerate(children):
        _span_lines(
            child, root_wall, child_prefix, i == len(children) - 1, False, lines
        )


def render_spans(snapshot: Dict[str, Any]) -> str:
    """The per-stage timing tree (one block per root span)."""
    spans = snapshot.get("spans", [])
    if not spans:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in spans:
        _span_lines(root, root.get("wall_s"), "", True, True, lines)
        lines.append("")
    return "\n".join(lines).rstrip()


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Counters, gauges, and histogram summaries as aligned tables."""
    metrics = snapshot.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if not (counters or gauges or histograms):
        return "(no metrics recorded)"
    lines: List[str] = []
    if counters:
        lines.append("counters:")
        for name, data in counters.items():
            lines.append(f"  {name:<44} {data.get('value', 0):>12g}")
    if gauges:
        lines.append("gauges:")
        for name, data in gauges.items():
            value = data.get("value")
            rendered = "unset" if value is None else f"{value:g}"
            lines.append(f"  {name:<44} {rendered:>12}")
    if histograms:
        lines.append("histograms:")
        header = f"  {'name':<44} {'count':>8} {'mean':>12} {'min':>12} {'max':>12}"
        lines.append(header)
        for name, data in histograms.items():
            def fmt(key: str) -> str:
                value = data.get(key)
                return "-" if value is None else f"{value:.6g}"

            lines.append(
                f"  {name:<44} {data.get('count', 0):>8} "
                f"{fmt('mean'):>12} {fmt('min'):>12} {fmt('max'):>12}"
            )
    return "\n".join(lines)


def render_report(snapshot: Dict[str, Any], include_metrics: bool = True) -> str:
    """Full report: span tree followed (optionally) by the metric tables."""
    parts = [render_spans(snapshot)]
    if include_metrics:
        parts.append("")
        parts.append(render_metrics(snapshot))
    return "\n".join(parts)
