"""``repro.obs`` — dependency-free pipeline tracing and metrics.

The observability layer behind the ROADMAP's "fast as the hardware
allows" goal: before any hot-path optimisation can be honest, a run has
to show *where* its time goes.  Three pieces:

* :class:`Span` — nested wall/CPU timing as a context manager, forming
  a per-run stage tree (`pipeline.run` → stages → inner loops);
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — named
  metrics (store queries served, per-epoch loss series, ...);
* :class:`Registry` — the process-global owner of both, exported as a
  JSON snapshot that ``python -m repro.obs report`` renders.

Instrumented call sites use the module-level helpers::

    from repro import obs

    with obs.span("events.mabed.detect") as sp:
        ...
        sp.annotate(n_documents=len(docs))
    obs.counter("store.queries").inc()
    obs.histogram("nn.history.loss").observe(loss)

Everything is **off by default**: the helpers return shared no-op
objects unless ``REPRO_OBS=1`` is set or :func:`set_enabled` was called
(``REPRO_OBS=0`` force-disables either way) — see
``docs/observability.md``.
"""

from .metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
)
from .registry import (
    Registry,
    counter,
    enabled,
    gauge,
    get_registry,
    histogram,
    obs_enabled,
    reset,
    set_enabled,
    span,
)
from .report import load_snapshot, render_metrics, render_report, render_spans
from .span import NULL_SPAN, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "Registry",
    "Span",
    "counter",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "load_snapshot",
    "obs_enabled",
    "render_metrics",
    "render_report",
    "render_spans",
    "reset",
    "set_enabled",
    "span",
]
