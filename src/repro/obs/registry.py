"""The process-global observability registry and the ``REPRO_OBS`` toggle.

Mirrors the ``REPRO_CONTRACTS`` pattern from ``repro.nn.contracts``:

* ``REPRO_OBS=1`` (or any value other than ``0``/``false``/empty)
  force-enables tracing and metrics everywhere;
* ``REPRO_OBS=0`` force-disables them, overriding any programmatic
  default (so a benchmark machine can strip even the benchmark
  harness's instrumentation);
* when the variable is unset, the programmatic default applies —
  ``False`` out of the box, flipped by :func:`set_enabled` (used by the
  benchmark conftest, the ``--trace`` CLI flag, and tests).

Instrumented code never talks to the registry directly; it calls the
module-level helpers :func:`span` / :func:`counter` / :func:`gauge` /
:func:`histogram`, which return shared no-op objects while disabled.
That keeps the disabled fast path to one environment lookup per call
site — verified by ``tests/obs/test_span.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from .metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    _NullCounter,
    _NullGauge,
    _NullHistogram,
)
from ..tools.annotations import guarded_by
from .span import NULL_SPAN, Span, _NullSpan

_DEFAULT_ENABLED = False

SNAPSHOT_VERSION = 1


def obs_enabled() -> bool:
    """Resolve the current on/off state (environment wins over default)."""
    flag = os.environ.get("REPRO_OBS")
    if flag is not None:
        return flag.strip().lower() not in ("0", "false", "")
    return _DEFAULT_ENABLED


def set_enabled(value: bool) -> bool:
    """Set the programmatic default used when ``REPRO_OBS`` is unset.

    Returns the previous default so callers can restore it.  Note that
    an explicit ``REPRO_OBS`` environment value still overrides this.
    """
    global _DEFAULT_ENABLED
    previous = _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(value)
    return previous


class enabled:
    """Context manager flipping the programmatic default, then restoring it.

    >>> with enabled():
    ...     result = pipeline.run(world)        # doctest: +SKIP
    """

    def __init__(self, value: bool = True) -> None:
        self._value = value
        self._previous: Optional[bool] = None

    def __enter__(self) -> None:
        self._previous = set_enabled(self._value)

    def __exit__(self, exc_type, exc, tb) -> None:
        set_enabled(bool(self._previous))


@guarded_by("_lock", "_counters", "_gauges", "_histograms", "_roots")
class Registry:
    """Process-global home of every span tree and named metric.

    Metrics are get-or-create by name; span trees grow from the
    per-thread active-span stack.  ``snapshot()`` exports everything as
    a JSON-able dict consumed by ``python -m repro.obs report`` and the
    benchmark harness.  (``_local`` and ``_epoch`` are deliberately not
    ``@guarded_by``: the former is thread-local by construction and the
    latter is a write-once timestamp read by spans without the lock.)
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._roots: List[Span] = []
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- metrics ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` called *name*."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the :class:`Gauge` called *name*."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._lock)
            return metric

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        """Get or create the :class:`Histogram` called *name*."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, max_samples, self._lock
                )
            return metric

    # -- spans --------------------------------------------------------------

    def span(self, name: str) -> Span:
        """Create a span owned by this registry (attach happens on enter)."""
        return Span(name, self)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _attach(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _detach(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            # Mis-nested exit (e.g. a generator finalized late): drop the
            # span and everything opened after it rather than corrupting
            # the stack for subsequent spans.
            del stack[stack.index(span):]

    @property
    def roots(self) -> List[Span]:
        """Top-level spans recorded so far (completed or still open)."""
        with self._lock:
            return list(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        pending = self.roots
        while pending:
            span = pending.pop()
            yield span
            pending.extend(span.children)

    # -- lifecycle / export -------------------------------------------------

    def reset(self) -> None:
        """Drop every metric and span tree (thread stacks included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._roots.clear()
            self._local = threading.local()
            self._epoch = time.perf_counter()

    def is_empty(self) -> bool:
        """True when nothing has been recorded since the last reset."""
        with self._lock:
            return not (
                self._roots or self._counters or self._gauges or self._histograms
            )

    def snapshot(self) -> Dict[str, Any]:
        """Export spans + metrics as a JSON-able dict."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "spans": [span.to_dict() for span in self._roots],
                "metrics": {
                    "counters": {
                        name: c.to_dict() for name, c in sorted(self._counters.items())
                    },
                    "gauges": {
                        name: g.to_dict() for name, g in sorted(self._gauges.items())
                    },
                    "histograms": {
                        name: h.to_dict()
                        for name, h in sorted(self._histograms.items())
                    },
                },
            }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent)

    def save(self, path: str) -> str:
        """Write the snapshot to *path*; returns the path."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path


_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global :class:`Registry`."""
    return _REGISTRY


def reset() -> None:
    """Clear the process-global registry."""
    _REGISTRY.reset()


def span(name: str) -> Union[Span, _NullSpan]:
    """A registry-owned span, or the shared no-op span while disabled."""
    if not obs_enabled():
        return NULL_SPAN
    return _REGISTRY.span(name)


def counter(name: str) -> Union[Counter, _NullCounter]:
    """The named counter, or the shared no-op counter while disabled."""
    if not obs_enabled():
        return NULL_COUNTER
    return _REGISTRY.counter(name)


def gauge(name: str) -> Union[Gauge, _NullGauge]:
    """The named gauge, or the shared no-op gauge while disabled."""
    if not obs_enabled():
        return NULL_GAUGE
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Union[Histogram, _NullHistogram]:
    """The named histogram, or the shared no-op histogram while disabled."""
    if not obs_enabled():
        return NULL_HISTOGRAM
    return _REGISTRY.histogram(name)
