"""``python -m repro.obs`` — inspect saved observability snapshots.

    python -m repro.obs report run.json              # timing tree + metrics
    python -m repro.obs report run.json --no-metrics # tree only
    python -m repro.obs report run.json --json       # normalized JSON

Snapshots come from ``Registry.save`` — e.g. ``repro run --trace run.json``,
the benchmark harness (``benchmarks/results/obs/*.json``), or
``examples/profiled_run.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .report import load_snapshot, render_report


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro.obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect pipeline tracing/metrics snapshots",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser("report", help="render a snapshot as a timing tree")
    report.add_argument("snapshot", help="path to a snapshot JSON file")
    report.add_argument(
        "--no-metrics",
        action="store_true",
        help="omit the counters/gauges/histograms tables",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="re-emit the snapshot as normalized JSON instead of text",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        snapshot = load_snapshot(args.snapshot)
    except FileNotFoundError:
        print(f"error: no snapshot at {args.snapshot!r}", file=sys.stderr)
        return 1
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(json.dumps(snapshot, indent=2))
        else:
            print(render_report(snapshot, include_metrics=not args.no_metrics))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
