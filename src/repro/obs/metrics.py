"""Metric primitives: :class:`Counter`, :class:`Gauge`, :class:`Histogram`.

These are deliberately minimal, dependency-free value holders.  They are
handed out by the :class:`repro.obs.Registry` (get-or-create by name) and
mutated from instrumented hot paths; a parallel set of no-op twins
(:data:`NULL_COUNTER` and friends) is returned when observability is
disabled so the instrumented call sites stay branch-free and cheap.

Threading: each mutation is a handful of attribute updates guarded by a
lock shared with the owning registry (declared via ``@guarded_by``, with
``@lock_alias`` filing the shared lock under the registry's canonical
name), so concurrent stages (e.g. a threaded benchmark harness) cannot
corrupt the totals.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..tools.annotations import guarded_by, lock_alias


@lock_alias("_lock", "Registry._lock")
@guarded_by("_lock", "value")
class Counter:
    """A monotonically increasing count (queries served, batches trained)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.RLock] = None) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock or threading.RLock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to the counter; must be non-negative."""
        if amount < 0:
            raise ValueError("Counter.inc amount must be non-negative")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        with self._lock:
            return {"value": self.value}

    def __repr__(self) -> str:
        with self._lock:
            return f"Counter({self.name!r}, value={self.value})"


@lock_alias("_lock", "Registry._lock")
@guarded_by("_lock", "value")
class Gauge:
    """A point-in-time value that can move both ways (vocab size, queue depth)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.RLock] = None) -> None:
        self.name = name
        self.value: Optional[float] = None
        self._lock = lock or threading.RLock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by *amount* (unset gauges start from 0)."""
        with self._lock:
            self.value = (self.value or 0.0) + amount

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        with self._lock:
            return {"value": self.value}

    def __repr__(self) -> str:
        with self._lock:
            return f"Gauge({self.name!r}, value={self.value})"


@lock_alias("_lock", "Registry._lock")
@guarded_by("_lock", "count", "total", "min", "max", "series")
class Histogram:
    """A stream of observations with summary stats and a bounded series.

    Beyond count/sum/min/max/mean, the first ``max_samples`` raw values
    are retained in order so per-epoch traces (loss, accuracy, epoch
    milliseconds) survive into the exported snapshot; past the cap the
    summary stats keep updating and ``truncated`` flips to True.
    """

    __slots__ = ("name", "count", "total", "min", "max", "series", "max_samples", "_lock")

    def __init__(
        self,
        name: str,
        max_samples: int = 4096,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        if max_samples < 0:
            raise ValueError("max_samples must be >= 0")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.series: List[float] = []
        self.max_samples = max_samples
        self._lock = lock or threading.RLock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self.series) < self.max_samples:
                self.series.append(value)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of all observations, or None when empty."""
        with self._lock:
            return self.total / self.count if self.count else None

    @property
    def truncated(self) -> bool:
        """True when the raw series stopped growing at ``max_samples``."""
        with self._lock:
            return self.count > len(self.series)

    def percentile(self, q: float) -> Optional[float]:
        """The *q*-th percentile of the retained series (None when empty).

        Linear interpolation between order statistics, computed over the
        bounded raw series — past ``max_samples`` observations this is a
        prefix percentile, which ``truncated`` flags.  Used by the
        serving fleet's canary evaluator to compare latency tails.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must lie in [0, 100]")
        with self._lock:
            values = sorted(self.series)
        if not values:
            return None
        if len(values) == 1:
            return values[0]
        position = (q / 100.0) * (len(values) - 1)
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        weight = position - lower
        return values[lower] * (1.0 - weight) + values[upper] * weight

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (summary + bounded raw series)."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "series": list(self.series),
                "truncated": self.truncated,
            }

    def __repr__(self) -> str:
        with self._lock:
            return f"Histogram({self.name!r}, count={self.count}, mean={self.mean})"


class _NullCounter:
    """No-op :class:`Counter` twin returned while observability is off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def to_dict(self) -> Dict[str, Any]:
        """Always empty."""
        return {"value": 0.0}


class _NullGauge:
    """No-op :class:`Gauge` twin returned while observability is off."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""

    def add(self, amount: float) -> None:
        """Discard the shift."""

    def to_dict(self) -> Dict[str, Any]:
        """Always empty."""
        return {"value": None}


class _NullHistogram:
    """No-op :class:`Histogram` twin returned while observability is off."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def percentile(self, q: float) -> Optional[float]:
        """Always None (no observations are retained)."""
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Always empty."""
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "mean": None, "series": [], "truncated": False}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
