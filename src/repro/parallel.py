"""``repro.parallel`` — seeded, order-preserving maps for the pipeline fan-outs.

The pipeline's hot loops are embarrassingly parallel: the three corpus
preprocessing passes, MABED's per-term candidate scan, and per-document
SW/RND/SWM embedding construction all map one pure function over a list.
This module gives them a single primitive:

* :func:`parallel_map` — ``map`` with **stable contiguous chunking**
  (results always return in input order, independent of worker count),
  a worker pool that is serial / thread / process selectable, and one
  ``repro.obs`` span per chunk so the timing tree shows where fan-out
  time goes;
* **seeded** variants: pass ``seed=`` and the function receives a
  per-item ``np.random.Generator`` spawned from
  ``SeedSequence(seed, spawn_key=(item_index,))`` — the stream depends
  only on the item's position, never on chunking or worker count, so a
  parallel run is bitwise identical to a serial one.

Configuration: explicit arguments win, then the environment —
``REPRO_WORKERS`` (int, default 1 = serial) and ``REPRO_PARALLEL_MODE``
(``serial`` / ``thread`` / ``process``, default ``thread``).  Callers
whose function closes over unpicklable state pass
``allow_process=False`` and a requested process pool silently downgrades
to threads.  See ``docs/performance.md``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from . import obs
from .resilience.faults import inject

MODES = ("serial", "thread", "process")

WORKERS_ENV = "REPRO_WORKERS"
MODE_ENV = "REPRO_PARALLEL_MODE"


def worker_count(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Explicit *workers* wins; otherwise ``REPRO_WORKERS`` from the
    environment; otherwise 1 (serial).  Values below 1 are an error so a
    typo cannot silently disable a stage.
    """
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
    return value


def resolve_mode(mode: Optional[str] = None, allow_process: bool = True) -> str:
    """Resolve the pool mode (argument > ``REPRO_PARALLEL_MODE`` > thread).

    With ``allow_process=False`` a requested ``process`` pool downgrades
    to ``thread`` — used by callers whose mapped function closes over
    unpicklable state (open stores, lambdas, bound methods).
    """
    resolved = mode or os.environ.get(MODE_ENV, "").strip() or "thread"
    if resolved not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {resolved!r}")
    if resolved == "process" and not allow_process:
        return "thread"
    return resolved


def chunked(items: Sequence, n_chunks: int) -> List[Sequence]:
    """Split *items* into at most *n_chunks* contiguous, stable chunks.

    Chunk sizes differ by at most one and depend only on
    ``(len(items), n_chunks)`` — never on timing — so per-chunk obs
    spans are comparable across runs.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    n = len(items)
    n_chunks = max(1, min(n_chunks, n)) if n else 1
    base, extra = divmod(n, n_chunks)
    chunks: List[Sequence] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def item_rng(seed: int, index: int) -> np.random.Generator:
    """The per-item generator of a seeded map.

    Spawned as ``SeedSequence(seed, spawn_key=(index,))`` so it is a
    function of the item's input position only: chunking and worker
    count cannot change the stream an item sees.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


def _run_chunk(
    func: Callable,
    chunk: Sequence,
    start_index: int,
    seed: Optional[int],
    chunk_id: int,
    span_name: str,
) -> List[Any]:
    """Map *func* over one chunk inside an obs span (runs in the worker).

    Each chunk is a fault-injection site (``<span_name>.chunk<id>``):
    an active :class:`repro.resilience.FaultPlan` can kill exactly this
    chunk, which surfaces through the pool as the stage's failure and
    exercises the stage-level retry path.  Per-site streams keep the
    decision independent of worker count and thread timing.
    """
    inject(f"{span_name}.chunk{chunk_id}")
    with obs.span(f"{span_name}.chunk") as chunk_span:
        if seed is None:
            out = [func(item) for item in chunk]
        else:
            out = [
                func(item, item_rng(seed, start_index + offset))
                for offset, item in enumerate(chunk)
            ]
        chunk_span.annotate(chunk=chunk_id, items=len(chunk), start=start_index)
    return out


def parallel_map(
    func: Callable,
    items: Iterable,
    *,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
    seed: Optional[int] = None,
    allow_process: bool = True,
    span_name: str = "parallel.map",
) -> List[Any]:
    """Order-preserving ``[func(x) for x in items]`` over a worker pool.

    Results are returned in input order regardless of *workers* or
    *mode*; with ``seed`` set, *func* is called as ``func(item, rng)``
    with the :func:`item_rng` stream for the item's position, making
    parallel runs bitwise identical to serial ones.  One obs span per
    chunk (``<span_name>.chunk``) plus a root ``<span_name>`` span
    record where fan-out time goes.
    """
    items = list(items)
    n_workers = min(worker_count(workers), max(len(items), 1))
    resolved_mode = resolve_mode(mode, allow_process=allow_process)
    if n_workers <= 1:
        resolved_mode = "serial"
    chunks = chunked(items, n_workers)
    starts = [0] * len(chunks)
    for i in range(1, len(chunks)):
        starts[i] = starts[i - 1] + len(chunks[i - 1])

    with obs.span(span_name) as map_span:
        if resolved_mode == "serial":
            mapped = [
                _run_chunk(func, chunk, starts[i], seed, i, span_name)
                for i, chunk in enumerate(chunks)
            ]
        else:
            pool_cls = (
                ThreadPoolExecutor
                if resolved_mode == "thread"
                else ProcessPoolExecutor
            )
            with pool_cls(max_workers=n_workers) as pool:
                mapped = list(
                    pool.map(
                        _run_chunk,
                        [func] * len(chunks),
                        chunks,
                        starts,
                        [seed] * len(chunks),
                        range(len(chunks)),
                        [span_name] * len(chunks),
                    )
                )
        map_span.annotate(
            items=len(items),
            chunks=len(chunks),
            workers=n_workers,
            mode=resolved_mode,
        )
    out: List[Any] = []
    for chunk_result in mapped:
        out.extend(chunk_result)
    return out
