"""Dataset construction for the prediction experiments (§4.7, §5.6)."""

from .builders import (
    Dataset,
    EventTweet,
    VARIANT_NAMES,
    build_all_datasets,
    build_dataset,
    document_vector,
    encode_record,
    variant_spec,
)
from .encoding import (
    AUTHOR_BUCKET_EDGES,
    HIGH_EDGE,
    LOW_EDGE,
    METADATA_SIZE,
    author_bucket,
    author_one_hot,
    day_of_week_feature,
    encode_count,
    encode_labels,
    metadata_vector,
)
from .splits import Split, k_fold, train_validation_split

__all__ = [
    "Dataset",
    "EventTweet",
    "VARIANT_NAMES",
    "build_dataset",
    "build_all_datasets",
    "document_vector",
    "encode_record",
    "variant_spec",
    "encode_count",
    "encode_labels",
    "author_bucket",
    "author_one_hot",
    "day_of_week_feature",
    "metadata_vector",
    "METADATA_SIZE",
    "AUTHOR_BUCKET_EDGES",
    "LOW_EDGE",
    "HIGH_EDGE",
    "Split",
    "train_validation_split",
    "k_fold",
]
