"""Feature and label encodings (§4.7, Table 2).

Table 2 buckets follower/like/retweet counts into three ordinal classes:

    count < 100       -> 0
    100 <= count <= 1000 -> 1
    count > 1000      -> 2

The metadata vector has size 8: a one-hot vector of length 7 embedding the
tweet's author — "the influencer and its number of followers" — plus one
element for the day of the week.  We realise the length-7 author one-hot
as seven log-spaced follower-magnitude buckets (an author's identity on
Twitter, for engagement purposes, *is* their audience size), and the day
element as weekday/6 in [0, 1].
"""

from __future__ import annotations

from datetime import datetime
from typing import Sequence

import numpy as np

# Table 2 bucket edges for followers / likes / retweets.
LOW_EDGE = 100
HIGH_EDGE = 1000

# Log-spaced follower-magnitude buckets for the length-7 author one-hot.
AUTHOR_BUCKET_EDGES = (10, 50, 100, 500, 1000, 5000)

METADATA_SIZE = 8  # 7 author one-hot + 1 day-of-week


def encode_count(count: int) -> int:
    """Table 2 encoding for followers, likes, or retweets."""
    if count < 0:
        raise ValueError("counts cannot be negative")
    if count < LOW_EDGE:
        return 0
    if count <= HIGH_EDGE:
        return 1
    return 2


def encode_labels(counts: Sequence[int]) -> np.ndarray:
    """Vectorized Table 2 encoding (one ``np.digitize`` over all counts).

    Bin edges ``[LOW_EDGE, HIGH_EDGE + 1)`` reproduce
    :func:`encode_count` exactly: ``count < 100 -> 0``,
    ``100 <= count <= 1000 -> 1``, ``count > 1000 -> 2``.
    """
    values = np.asarray(counts, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("counts cannot be negative")
    return np.digitize(values, (LOW_EDGE, HIGH_EDGE + 1)).astype(np.int64)


def author_bucket(followers: int) -> int:
    """Index in [0, 6] of the author's follower-magnitude bucket."""
    if followers < 0:
        raise ValueError("followers cannot be negative")
    for i, edge in enumerate(AUTHOR_BUCKET_EDGES):
        if followers < edge:
            return i
    return len(AUTHOR_BUCKET_EDGES)


def author_one_hot(followers: int) -> np.ndarray:
    """Length-7 one-hot of the author's follower bucket."""
    out = np.zeros(len(AUTHOR_BUCKET_EDGES) + 1)
    out[author_bucket(followers)] = 1.0
    return out


def day_of_week_feature(created_at: datetime) -> float:
    """Weekday scaled to [0, 1] (Monday = 0, Sunday = 1)."""
    return created_at.weekday() / 6.0


def metadata_vector(followers: int, created_at: datetime) -> np.ndarray:
    """The size-8 metadata vector of §4.7.

    Concatenating this onto a 300-d document embedding yields the 308-d
    inputs of Table 10 / Figure 7.
    """
    return np.concatenate(
        [author_one_hot(followers), [day_of_week_feature(created_at)]]
    )
