"""Train/validation splits and k-fold cross-validation.

§5.6 reports accuracies "over our validation sets" after "hyperparameter
tuning and cross validation"; these helpers are the splitting machinery
used by the prediction module and the Table 8–9 benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class Split:
    """Index sets of one train/validation split."""

    train: np.ndarray
    validation: np.ndarray


def train_validation_split(
    n: int,
    validation_fraction: float = 0.2,
    seed: int = 0,
    stratify: Optional[np.ndarray] = None,
) -> Split:
    """Random (optionally stratified) train/validation index split."""
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    if stratify is None:
        indices = rng.permutation(n)
        n_val = max(1, int(round(n * validation_fraction)))
        return Split(train=indices[n_val:], validation=indices[:n_val])

    stratify = np.asarray(stratify)
    if len(stratify) != n:
        raise ValueError("stratify labels must match n")
    train_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []
    for cls in np.unique(stratify):
        members = np.flatnonzero(stratify == cls)
        rng.shuffle(members)
        n_val = max(1, int(round(len(members) * validation_fraction)))
        # Never put an entire class in validation.
        n_val = min(n_val, len(members) - 1) if len(members) > 1 else 0
        val_parts.append(members[:n_val])
        train_parts.append(members[n_val:])
    train = np.concatenate(train_parts)
    validation = (
        np.concatenate(val_parts) if val_parts else np.empty(0, dtype=int)
    )
    rng.shuffle(train)
    rng.shuffle(validation)
    return Split(train=train, validation=validation)


def k_fold(
    n: int, k: int = 5, seed: int = 0
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_indices, validation_indices) for each of *k* folds."""
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError("need at least k samples")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(n)
    folds = np.array_split(indices, k)
    for i in range(k):
        validation = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, validation
