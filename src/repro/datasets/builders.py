"""The eight experiment datasets A1..D2 of §5.6.

Each dataset encodes the tweets belonging to correlated Twitter events:

* **A1/A2** — SW_Doc2Vec, without / with the metadata vector;
* **B1/B2** — RND_Doc2Vec, without / with the metadata vector;
* **C1/C2** — SWM_Doc2Vec, without / with the metadata vector;
* **D1/D2** — SW_Doc2Vec, D2 additionally appending the Table-2-encoded
  author follower count.

Labels are the Table-2 classes of the tweet's likes and retweets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..embeddings import PretrainedEmbeddings, rnd_doc2vec, sw_doc2vec, swm_doc2vec
from ..parallel import parallel_map
from .encoding import encode_count, encode_labels, metadata_vector

VARIANT_NAMES = ("A1", "A2", "B1", "B2", "C1", "C2", "D1", "D2")


@dataclass
class EventTweet:
    """One tweet attached to a detected event, ready for encoding.

    *event_vocabulary* is the event's main + related terms — §4.7 encodes
    each tweet "on the tweet's terms present in the vocabulary containing
    the main and related terms of that event".  *magnitudes* carries the
    per-term event weights consumed by the SWM variant.
    """

    tokens: Sequence[str]
    event_vocabulary: Set[str]
    magnitudes: Dict[str, float]
    author: str
    followers: int
    likes: int
    retweets: int
    created_at: datetime
    event_id: Optional[int] = None


@dataclass
class Dataset:
    """A named, fully encoded experiment dataset."""

    name: str
    X: np.ndarray
    y_likes: np.ndarray
    y_retweets: np.ndarray
    feature_names: List[str] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        """Number of rows (event-tweet records)."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return self.X.shape[1]


def document_vector(
    record: EventTweet,
    embeddings: PretrainedEmbeddings,
    family: str,
) -> np.ndarray:
    """§4.7 document embedding of *record* for one family (sw/rnd/swm).

    Public because the serving layer (``repro.serving``) must encode
    online requests through *exactly* this code path — bitwise parity
    between offline datasets and served features depends on it.
    """
    if family == "sw":
        return sw_doc2vec(record.tokens, embeddings, record.event_vocabulary)
    if family == "rnd":
        return rnd_doc2vec(record.tokens, embeddings, record.event_vocabulary)
    if family == "swm":
        return swm_doc2vec(
            record.tokens, embeddings, record.magnitudes, record.event_vocabulary
        )
    raise ValueError(f"unknown embedding family: {family!r}")


_VARIANT_SPEC = {
    # name -> (embedding family, include metadata, include encoded followers)
    "A1": ("sw", False, False),
    "A2": ("sw", True, False),
    "B1": ("rnd", False, False),
    "B2": ("rnd", True, False),
    "C1": ("swm", False, False),
    "C2": ("swm", True, False),
    "D1": ("sw", False, False),
    "D2": ("sw", True, True),
}


def variant_spec(variant: str) -> tuple:
    """``(family, with_metadata, with_followers)`` for an A1..D2 name."""
    if variant not in _VARIANT_SPEC:
        raise KeyError(
            f"unknown variant {variant!r}; expected one of {VARIANT_NAMES}"
        )
    return _VARIANT_SPEC[variant]


def encode_record(
    record: EventTweet,
    embeddings: PretrainedEmbeddings,
    variant: str,
) -> np.ndarray:
    """One feature row of dataset *variant* for a single record.

    This is the row constructor :func:`build_dataset` maps over every
    record; the serving layer calls it per request so online features
    are bitwise-identical to the offline dataset rows.
    """
    family, with_metadata, with_followers = variant_spec(variant)
    parts = [document_vector(record, embeddings, family)]
    if with_metadata:
        parts.append(metadata_vector(record.followers, record.created_at))
    if with_followers:
        parts.append(np.array([float(encode_count(record.followers))]))
    return np.concatenate(parts)


def build_dataset(
    records: Sequence[EventTweet],
    embeddings: PretrainedEmbeddings,
    variant: str,
    workers: Optional[int] = None,
) -> Dataset:
    """Encode *records* as one of the A1..D2 datasets.

    Per-record row construction (document embedding + metadata
    concatenation) is embarrassingly parallel and fans out over
    :func:`repro.parallel.parallel_map`; row order always matches the
    input record order, whatever *workers* resolves to.
    """
    _family, with_metadata, with_followers = variant_spec(variant)
    if not records:
        raise ValueError("cannot build a dataset from zero records")

    def encode_row(record: EventTweet) -> np.ndarray:
        return encode_record(record, embeddings, variant)

    rows = parallel_map(
        encode_row,
        records,
        workers=workers,
        allow_process=False,
        span_name=f"datasets.build.{variant}",
    )

    feature_names = [f"d2v_{i}" for i in range(embeddings.dim)]
    if with_metadata:
        feature_names += [f"author_bucket_{i}" for i in range(7)] + ["day_of_week"]
    if with_followers:
        feature_names += ["followers_encoded"]

    return Dataset(
        name=variant,
        X=np.vstack(rows),
        y_likes=encode_labels([r.likes for r in records]),
        y_retweets=encode_labels([r.retweets for r in records]),
        feature_names=feature_names,
    )


def build_all_datasets(
    records: Sequence[EventTweet],
    embeddings: PretrainedEmbeddings,
    variants: Sequence[str] = VARIANT_NAMES,
    workers: Optional[int] = None,
) -> Dict[str, Dataset]:
    """All requested A1..D2 datasets over the same records."""
    return {
        v: build_dataset(records, embeddings, v, workers=workers) for v in variants
    }
