"""Command-line interface for the reproduction.

Subcommands mirror the pipeline's stages so each piece can be driven
standalone, the way the paper's deployed modules ran on a 2-hour cycle
(§4.9):

    python -m repro generate   --articles 800 --tweets 3000 --out data/
    python -m repro topics     --data data/ --n-topics 12
    python -m repro events     --data data/ --medium twitter
    python -m repro run        --data data/            # full pipeline
    python -m repro ingest     --data data/ --input new.jsonl --cycle
    python -m repro predict    --data data/ --variant A2 --network "MLP 1"

``generate`` persists a synthetic world as JSONL snapshots through the
document store; the other commands restore it and run the requested
stage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from . import obs
from .core import AudienceInterestPredictor, NewsDiffusionPipeline
from .core.config import PipelineConfig
from .datagen import UserPopulation, World, WorldConfig, build_world
from .store import Database


def _world_from_snapshot(directory: str, store_shards: Optional[int] = None) -> World:
    from .store import CollectionNotFound

    database = Database("news_diffusion", shard_count=store_shards)
    try:
        database.restore(directory)
    except CollectionNotFound:
        raise SystemExit(
            f"no snapshot at {directory!r}; run `python -m repro generate` first"
        )
    for collection in ("news", "tweets"):
        if collection not in database:
            raise SystemExit(
                f"snapshot at {directory!r} has no {collection!r} collection; "
                "run `python -m repro generate` first"
            )
    # Timestamps were serialized as strings; parse them back.
    from datetime import datetime

    for name in ("news", "tweets"):
        for doc in database[name].find():
            created = doc["created_at"]
            if isinstance(created, str):
                database[name].update_one(
                    {"_id": doc["_id"]},
                    {"$set": {"created_at": datetime.fromisoformat(created)}},
                )
    config = WorldConfig(store_shards=store_shards)
    return World(
        config=config,
        database=database,
        population=UserPopulation(config),
    )


def _pipeline_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig(
        n_topics=args.n_topics,
        n_news_events=args.news_events,
        n_twitter_events=args.twitter_events,
        embedding_dim=args.embedding_dim,
        min_term_support=args.min_term_support,
        min_event_records=args.min_event_records,
        seed=args.seed,
        retry_attempts=args.retry_attempts,
        nn_dtype=getattr(args, "nn_dtype", None),
    )


def _checkpoint_kwargs(args: argparse.Namespace) -> dict:
    """``run(**kwargs)`` for the ``--checkpoint-dir``/``--resume`` flags."""
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = getattr(args, "resume", False)
    if resume and checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    if resume:
        return {"resume_from": checkpoint_dir}
    if checkpoint_dir is not None:
        return {"checkpoint_dir": checkpoint_dir}
    return {}


def cmd_generate(args: argparse.Namespace) -> int:
    """Handle the ``generate`` subcommand."""
    world = build_world(
        WorldConfig(
            n_articles=args.articles,
            n_tweets=args.tweets,
            n_users=args.users,
            seed=args.seed,
            store_shards=args.store_shards,
        )
    )
    counts = world.database.snapshot(args.out)
    print(f"world written to {args.out}: {counts}")
    return 0


def cmd_topics(args: argparse.Namespace) -> int:
    """Handle the ``topics`` subcommand."""
    world = _world_from_snapshot(args.data, store_shards=args.store_shards)
    pipeline = NewsDiffusionPipeline(_pipeline_config(args))
    nmf = pipeline.extract_news_topics(pipeline.preprocess_news_tm(world))
    for topic in nmf.topics:
        print(f"NT#{topic.index + 1:<3} {' '.join(topic.keywords[:10])}")
    return 0


def cmd_events(args: argparse.Namespace) -> int:
    """Handle the ``events`` subcommand."""
    world = _world_from_snapshot(args.data, store_shards=args.store_shards)
    pipeline = NewsDiffusionPipeline(_pipeline_config(args))
    if args.medium == "news":
        events = pipeline.detect_news_events(pipeline.preprocess_news_ed(world))
    else:
        events = pipeline.detect_twitter_events(
            pipeline.preprocess_twitter_ed(world)
        )
    for event in events:
        print(event.describe())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Handle the ``run`` subcommand."""
    world = _world_from_snapshot(args.data, store_shards=args.store_shards)
    result = NewsDiffusionPipeline(_pipeline_config(args)).run(
        world, **_checkpoint_kwargs(args)
    )
    print(result.summary())
    print("\ncorrelated pairs:")
    for pair in result.correlation.pairs:
        print("  " + pair.describe())
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """Handle the ``predict`` subcommand."""
    world = _world_from_snapshot(args.data, store_shards=args.store_shards)
    result = NewsDiffusionPipeline(_pipeline_config(args)).run(
        world, **_checkpoint_kwargs(args)
    )
    if args.variant not in result.datasets:
        raise SystemExit(
            f"no dataset {args.variant!r}; pipeline produced "
            f"{sorted(result.datasets) or 'none'}"
        )
    predictor = AudienceInterestPredictor(
        max_epochs=args.epochs,
        batch_size=args.batch_size,
        seed=args.seed,
        dtype=getattr(args, "nn_dtype", None),
    )
    outcome = predictor.train(
        result.datasets[args.variant], args.network, target=args.target
    )
    print(
        f"{args.network} on {args.variant} ({args.target}): "
        f"accuracy={outcome.validation_accuracy:.3f} "
        f"avg_accuracy={outcome.validation_average_accuracy:.3f} "
        f"epochs={outcome.n_epochs}"
    )
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Handle the ``ingest`` subcommand.

    Appends JSONL records to a world snapshot through the streaming
    :class:`~repro.streaming.IngestSession` — durable (store WAL),
    watermarked (late records are dropped, not silently misfiled) — and
    rewrites the snapshot.  With ``--cycle`` it then runs one
    :class:`~repro.streaming.IncrementalPipeline` cycle over the
    updated store and prints the usual run summary.
    """
    import json
    from datetime import datetime, timedelta

    from .streaming import IncrementalPipeline, IngestSession, StreamingConfig

    world = _world_from_snapshot(args.data, store_shards=args.store_shards)
    records = []
    with open(args.input, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            created = record.get("created_at")
            if created is None:
                raise SystemExit(
                    f"{args.input}:{number}: record has no 'created_at'"
                )
            if isinstance(created, str):
                record["created_at"] = datetime.fromisoformat(created)
            records.append(record)
    lateness = timedelta(minutes=args.allowed_lateness_minutes)
    session = IngestSession.resume(world.database, allowed_lateness=lateness)
    ack = session.append(args.collection, records)
    counts = world.database.snapshot(args.data)
    watermark = ack.watermark.isoformat() if ack.watermark else "-"
    print(
        f"accepted {ack.accepted} record(s) into {args.collection!r}, "
        f"dropped {ack.dropped_late} late (watermark {watermark})"
    )
    print(f"snapshot updated at {args.data}: {counts}")
    if args.cycle:
        pipeline = IncrementalPipeline(
            _pipeline_config(args),
            StreamingConfig(allowed_lateness=lateness),
            database=world.database,
        )
        print(pipeline.cycle().summary())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handle the ``serve`` subcommand.

    Loads a ``repro.serving`` artifact directory (exported by
    ``DeploymentSimulator.run(serve=...)`` or
    :func:`repro.serving.save_artifact`) and serves it over HTTP.
    Artifact problems exit non-zero with a clean message — an operator
    typo must not produce a traceback.
    """
    from .serving import (
        ArtifactError,
        FleetConfig,
        FleetService,
        ModelRegistry,
        ServingConfig,
        ServingServer,
        ServingService,
    )

    try:
        config = ServingConfig.from_env(
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            cache_size=args.cache_size,
            max_queue=args.queue_size,
            timeout_s=args.timeout_s,
        )
        fleet_config = FleetConfig.from_env(
            replicas=args.replicas,
            router=args.router,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid serving configuration: {exc}")
    registry = ModelRegistry(retry_policy=config.retry_policy())
    try:
        version = registry.load(
            args.artifact, expect_fingerprint=args.expect_fingerprint
        )
    except ArtifactError as exc:
        raise SystemExit(f"cannot serve {args.artifact!r}: {exc}")
    print(
        f"loaded {version.network!r} on variant {version.variant} "
        f"(v{version.version_id}, fingerprint {version.fingerprint[:12]}...)"
    )
    if args.check_only:
        print("artifact OK (--check-only; not binding a server)")
        return 0
    # Fleet mode is opt-in: --fleet, an explicit --replicas, or the
    # REPRO_SERVE_REPLICAS env var.  A bare `repro serve` keeps the
    # single-worker service it always ran.
    fleet_requested = (
        args.fleet
        or args.replicas is not None
        or bool(os.environ.get("REPRO_SERVE_REPLICAS"))
    )
    if fleet_requested:
        service = FleetService(registry, config, fleet_config)
        print(
            f"fleet of {fleet_config.replicas} replicas "
            f"(router {fleet_config.router!r}; canary endpoints enabled)"
        )
    else:
        service = ServingService(registry, config)
    server = ServingServer(service, host=config.host, port=config.port)
    host, port = server.address
    print(
        f"serving on http://{host}:{port}  "
        f"(POST /predict, /swap, /canary; GET /healthz, /metrics, /canary)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--data", required=True, help="snapshot directory")
    parser.add_argument("--n-topics", type=int, default=12)
    parser.add_argument("--news-events", type=int, default=20)
    parser.add_argument("--twitter-events", type=int, default=40)
    parser.add_argument("--embedding-dim", type=int, default=96)
    parser.add_argument("--min-term-support", type=int, default=6)
    parser.add_argument("--min-event-records", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--store-shards",
        type=int,
        default=None,
        help="shard count for the document store (default: REPRO_STORE_SHARDS or 4)",
    )
    parser.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        help="max attempts per pipeline stage (repro.resilience retry policy)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="persist per-stage checkpoints under PATH as the run progresses "
        "(see docs/resilience.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoints in --checkpoint-dir, skipping "
        "completed stages (stale checkpoints are invalidated)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable repro.obs tracing and write the snapshot JSON to PATH "
        "(render with `python -m repro.obs report PATH`)",
    )
    parser.add_argument(
        "--nn-dtype",
        choices=("float32", "float64"),
        default=None,
        help="NN compute dtype (default: REPRO_NN_DTYPE or float64; float32 "
        "is the opt-in raw-speed training path, see docs/performance.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Audience-interest prediction pipeline (EDBT 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic world snapshot")
    gen.add_argument("--articles", type=int, default=800)
    gen.add_argument("--tweets", type=int, default=3000)
    gen.add_argument("--users", type=int, default=200)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument(
        "--store-shards",
        type=int,
        default=None,
        help="shard count for the generated world's store",
    )
    gen.add_argument("--out", required=True, help="snapshot directory")
    gen.set_defaults(func=cmd_generate)

    topics = sub.add_parser("topics", help="extract news topics (NMF)")
    _add_pipeline_options(topics)
    topics.set_defaults(func=cmd_topics)

    events = sub.add_parser("events", help="detect events (MABED)")
    _add_pipeline_options(events)
    events.add_argument("--medium", choices=("news", "twitter"), default="twitter")
    events.set_defaults(func=cmd_events)

    run = sub.add_parser("run", help="run the full pipeline")
    _add_pipeline_options(run)
    run.set_defaults(func=cmd_run)

    predict = sub.add_parser("predict", help="train an audience-interest model")
    _add_pipeline_options(predict)
    predict.add_argument("--variant", default="A2")
    predict.add_argument("--network", default="MLP 1")
    predict.add_argument("--target", choices=("likes", "retweets"), default="likes")
    predict.add_argument("--epochs", type=int, default=40)
    predict.add_argument("--batch-size", type=int, default=256)
    predict.set_defaults(func=cmd_predict)

    ingest = sub.add_parser(
        "ingest",
        help="append JSONL records to a snapshot via the streaming ingest API",
    )
    _add_pipeline_options(ingest)
    ingest.add_argument(
        "--input", required=True, help="JSONL file of records to append"
    )
    ingest.add_argument(
        "--collection", choices=("news", "tweets"), default="tweets"
    )
    ingest.add_argument(
        "--allowed-lateness-minutes",
        type=float,
        default=0.0,
        help="watermark slack: records older than max(created_at) minus "
        "this are dropped as late",
    )
    ingest.add_argument(
        "--cycle",
        action="store_true",
        help="run one incremental pipeline cycle after the append",
    )
    ingest.set_defaults(func=cmd_ingest)

    serve = sub.add_parser(
        "serve", help="serve a trained artifact over HTTP (repro.serving)"
    )
    serve.add_argument(
        "--artifact", required=True, help="serving artifact directory"
    )
    serve.add_argument("--host", default=None)
    serve.add_argument("--port", type=int, default=None)
    serve.add_argument("--max-batch-size", type=int, default=None)
    serve.add_argument("--max-wait-ms", type=float, default=None)
    serve.add_argument("--cache-size", type=int, default=None)
    serve.add_argument("--queue-size", type=int, default=None)
    serve.add_argument("--timeout-s", type=float, default=None)
    serve.add_argument(
        "--expect-fingerprint",
        default=None,
        help="refuse artifacts whose PipelineConfig fingerprint differs",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="replica count; >1 serves through the fleet "
        "(default: REPRO_SERVE_REPLICAS or 2, fleet mode only)",
    )
    serve.add_argument(
        "--router",
        choices=("round_robin", "least_loaded"),
        default=None,
        help="fleet routing policy (default: REPRO_SERVE_ROUTER or least_loaded)",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="force fleet mode (admission control + canary endpoints) "
        "even with --replicas 1",
    )
    serve.add_argument(
        "--check-only",
        action="store_true",
        help="validate the artifact and exit without binding a server",
    )
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    When the subcommand carries ``--trace PATH``, observability is
    enabled for the duration of the command and the registry snapshot
    is written to PATH afterwards.
    """
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.func(args)
    previous = obs.set_enabled(True)
    obs.get_registry().reset()
    try:
        code = args.func(args)
        if obs.obs_enabled():
            saved = obs.get_registry().save(trace_path)
            print(
                f"trace written to {saved}; render with "
                f"`python -m repro.obs report {saved}`"
            )
        return code
    finally:
        obs.set_enabled(previous)


if __name__ == "__main__":
    sys.exit(main())
