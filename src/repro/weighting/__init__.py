"""Term weighting schemes and document-term matrices (§3.1, Eqs 1–5)."""

from .matrix import DocumentTermMatrix
from .schemes import (
    corpus_tfidf,
    document_frequencies,
    inverse_document_frequency,
    l2_norm,
    normalized_tfidf_vector,
    term_frequencies,
    tfidf_vector,
)

__all__ = [
    "DocumentTermMatrix",
    "term_frequencies",
    "document_frequencies",
    "inverse_document_frequency",
    "tfidf_vector",
    "normalized_tfidf_vector",
    "l2_norm",
    "corpus_tfidf",
]
