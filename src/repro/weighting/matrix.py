"""Document-term matrix construction (§3.1, last paragraph).

Builds the A ∈ R^{n×m} matrix whose rows are documents and columns are
vocabulary terms, weighted by raw counts, TFIDF, or ℓ²-normalized TFIDF —
the representation NMF factorizes in §3.2.  Backed by scipy CSR so the
100-topic NMF run over thousands of articles stays fast.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from ..text.vocabulary import Vocabulary


class DocumentTermMatrix:
    """A weighted document-term matrix plus its vocabulary.

    Use :meth:`from_documents` (builds a vocabulary) or
    :meth:`from_documents_with_vocabulary` (reuses one, e.g. to project new
    documents into an existing topic space).
    """

    def __init__(self, matrix: sparse.csr_matrix, vocabulary: Vocabulary) -> None:
        if matrix.shape[1] != len(vocabulary):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns but vocabulary has "
                f"{len(vocabulary)} terms"
            )
        self.matrix = matrix
        self.vocabulary = vocabulary

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_documents(
        cls,
        documents: Sequence[Sequence[str]],
        weighting: str = "tfidf_n",
        min_df: int = 1,
        max_df_ratio: float = 1.0,
        max_vocabulary: Optional[int] = None,
    ) -> "DocumentTermMatrix":
        """Build matrix and vocabulary from tokenized *documents*.

        *weighting* is one of ``"count"``, ``"tfidf"``, ``"tfidf_n"``.
        """
        vocabulary = Vocabulary.from_documents(
            documents,
            min_df=min_df,
            max_df_ratio=max_df_ratio,
            max_size=max_vocabulary,
        )
        return cls.from_documents_with_vocabulary(documents, vocabulary, weighting)

    @classmethod
    def from_documents_with_vocabulary(
        cls,
        documents: Sequence[Sequence[str]],
        vocabulary: Vocabulary,
        weighting: str = "tfidf_n",
    ) -> "DocumentTermMatrix":
        """Build a count matrix over an existing, frozen vocabulary."""
        counts = cls._count_matrix(documents, vocabulary)
        return cls.from_counts(counts, vocabulary, weighting)

    @classmethod
    def from_counts(
        cls,
        counts: sparse.csr_matrix,
        vocabulary: Vocabulary,
        weighting: str = "tfidf_n",
    ) -> "DocumentTermMatrix":
        """Weight a prebuilt raw-count CSR matrix over *vocabulary*.

        The streaming pipeline assembles the count matrix incrementally
        (per-document token counts are cached; only the vocabulary
        column mapping changes between cycles) and hands it here so the
        TFIDF/ℓ² weighting is byte-for-byte the batch code path.
        """
        if weighting == "count":
            return cls(counts, vocabulary)
        if weighting in ("tfidf", "tfidf_n"):
            weighted = cls._apply_tfidf(counts)
            if weighting == "tfidf_n":
                weighted = cls._l2_normalize_rows(weighted)
            return cls(weighted, vocabulary)
        raise ValueError(f"unknown weighting: {weighting!r}")

    @staticmethod
    def _count_matrix(
        documents: Sequence[Sequence[str]], vocabulary: Vocabulary
    ) -> sparse.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for row, tokens in enumerate(documents):
            seen: dict = {}
            for token in tokens:
                idx = vocabulary.get_index(token)
                if idx >= 0:
                    seen[idx] = seen.get(idx, 0) + 1
            for col, count in seen.items():
                rows.append(row)
                cols.append(col)
                data.append(float(count))
        return sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(documents), len(vocabulary)),
            dtype=np.float64,
        )

    @staticmethod
    def _apply_tfidf(counts: sparse.csr_matrix) -> sparse.csr_matrix:
        """TFIDF = TF * log2(n / n_t) columnwise (Eqs 2–3)."""
        n_docs = counts.shape[0]
        df = np.asarray((counts > 0).sum(axis=0)).ravel()
        idf = np.zeros_like(df, dtype=np.float64)
        nonzero = df > 0
        idf[nonzero] = np.log2(n_docs / df[nonzero])
        out = counts.copy().astype(np.float64)
        out = out.multiply(sparse.csr_matrix(idf[np.newaxis, :]))
        return sparse.csr_matrix(out)

    @staticmethod
    def _l2_normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
        """Row-wise ℓ² normalization (Eqs 4–5); zero rows stay zero."""
        norms = sparse.linalg.norm(matrix, axis=1)
        scale = np.ones_like(norms)
        nonzero = norms > 0
        scale[nonzero] = 1.0 / norms[nonzero]
        diag = sparse.diags(scale)
        return sparse.csr_matrix(diag @ matrix)

    # -- accessors ---------------------------------------------------------------

    @property
    def shape(self) -> tuple:
        """(num_documents, num_terms)."""
        return self.matrix.shape

    @property
    def num_documents(self) -> int:
        """Number of document rows."""
        return self.matrix.shape[0]

    @property
    def num_terms(self) -> int:
        """Number of vocabulary term columns."""
        return self.matrix.shape[1]

    def dense(self) -> np.ndarray:
        """Dense copy of the matrix (for small corpora / tests)."""
        return self.matrix.toarray()

    def row(self, index: int) -> np.ndarray:
        """Dense weight vector of one document."""
        return np.asarray(self.matrix.getrow(index).todense()).ravel()

    def term_weights(self, index: int, top: Optional[int] = None) -> List[tuple]:
        """(term, weight) pairs of one document, heaviest first."""
        row = self.matrix.getrow(index)
        pairs = [
            (self.vocabulary.term(col), weight)
            for col, weight in zip(row.indices, row.data)
        ]
        pairs.sort(key=lambda p: -p[1])
        return pairs[:top] if top is not None else pairs
