"""Term weighting schemes — Equations (1)–(5) of the paper.

* TF — raw term frequency within a document (Eq 1);
* IDF — log2(n / n_t) inverse document frequency (Eq 2);
* TFIDF — product of the two (Eq 3);
* TFIDF_N — ℓ²-normalized TFIDF so each document vector has unit norm
  (Eqs 4–5).

Functions operate on token lists and plain dicts so they are directly
testable; the matrix builder in :mod:`repro.weighting.matrix` uses the same
formulas vectorized over scipy CSR matrices.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence


def term_frequencies(tokens: Sequence[str]) -> Dict[str, int]:
    """TF(t, d) for every term of one document (Eq 1)."""
    return dict(Counter(tokens))


def document_frequencies(documents: Iterable[Sequence[str]]) -> Dict[str, int]:
    """n_t — number of documents containing each term."""
    df: Counter = Counter()
    for tokens in documents:
        df.update(set(tokens))
    return dict(df)


def inverse_document_frequency(num_documents: int, document_frequency: int) -> float:
    """IDF(t, D) = log2(n / n_t) (Eq 2).

    Raises ValueError for a zero document frequency — an unseen term has no
    defined IDF, and silently returning 0 would corrupt downstream weights.
    """
    if num_documents <= 0:
        raise ValueError("num_documents must be positive")
    if document_frequency <= 0:
        raise ValueError("document_frequency must be positive")
    return math.log2(num_documents / document_frequency)


def tfidf_vector(
    tokens: Sequence[str],
    df: Dict[str, int],
    num_documents: int,
) -> Dict[str, float]:
    """TFIDF(t, d, D) for one document (Eq 3).

    Terms missing from *df* are treated as appearing only in this document
    (document frequency 1), which is the defensible choice for queries
    against a fixed corpus.
    """
    weights: Dict[str, float] = {}
    for term, tf in term_frequencies(tokens).items():
        n_t = df.get(term, 1)
        weights[term] = tf * inverse_document_frequency(num_documents, n_t)
    return weights


def l2_norm(weights: Dict[str, float]) -> float:
    """ℓ²(d) over a sparse weight vector (Eq 5)."""
    return math.sqrt(sum(w * w for w in weights.values()))


def normalized_tfidf_vector(
    tokens: Sequence[str],
    df: Dict[str, int],
    num_documents: int,
) -> Dict[str, float]:
    """TFIDF_N(t, d, D) — ℓ²-normalized TFIDF (Eq 4).

    An all-zero vector (every term appearing in every document, or an empty
    document) normalizes to itself.
    """
    weights = tfidf_vector(tokens, df, num_documents)
    norm = l2_norm(weights)
    if norm == 0.0:
        return weights
    return {term: w / norm for term, w in weights.items()}


def corpus_tfidf(
    documents: Sequence[Sequence[str]],
    normalize: bool = True,
) -> List[Dict[str, float]]:
    """TFIDF (optionally normalized) vectors for a whole corpus."""
    df = document_frequencies(documents)
    n = len(documents)
    builder = normalized_tfidf_vector if normalize else tfidf_vector
    return [builder(tokens, df, n) for tokens in documents]
