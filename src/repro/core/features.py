"""Feature Creation module (§4.7): attach tweets to correlated events.

A tweet belongs to an event when

1. it was posted during the event's period of time, and
2. its text contains at least one main word and 20% of the related words.

Events with fewer than 10 attached records are discarded ("an event is
considered of interest if there are at least 10 records associated to
it").  Because a tweet can satisfy the membership rule for several
events, the resulting dataset can be larger than the tweet corpus — the
paper notes exactly this size increase in §5.6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..datasets.builders import EventTweet
from ..events import Event
from .correlation import CorrelatedPair


@dataclass
class TweetRecord:
    """A preprocessed tweet as read from the TwitterED corpus."""

    tokens: Sequence[str]
    created_at: object  # datetime
    author: str
    followers: int
    likes: int
    retweets: int


class FeatureCreationModule:
    """Builds the event-tweet records the dataset builders consume."""

    def __init__(
        self,
        min_event_records: int = 10,
        related_word_coverage: float = 0.2,
    ) -> None:
        if min_event_records < 1:
            raise ValueError("min_event_records must be >= 1")
        if not 0.0 <= related_word_coverage <= 1.0:
            raise ValueError("related_word_coverage must lie in [0, 1]")
        self.min_event_records = min_event_records
        self.related_word_coverage = related_word_coverage

    # -- membership ------------------------------------------------------------

    def tweet_belongs(self, tweet: TweetRecord, event: Event) -> bool:
        """The two-condition membership rule of §4.7."""
        if not event.start <= tweet.created_at <= event.end:
            return False
        tokens = set(tweet.tokens)
        if event.main_word not in tokens:
            return False
        related = event.keywords
        if not related:
            return True
        required = math.ceil(len(related) * self.related_word_coverage)
        overlap = sum(1 for word in related if word in tokens)
        return overlap >= required

    # -- extraction --------------------------------------------------------------

    def extract(
        self,
        pairs: Sequence[CorrelatedPair],
        tweets: Iterable[TweetRecord],
    ) -> List[EventTweet]:
        """Event-tweet records for every correlated Twitter event.

        Distinct events are processed once even when several trending
        topics correlate to the same Twitter event.
        """
        events = self._distinct_events(pairs)
        return self.extract_for_events(events, tweets)

    def extract_for_events(
        self,
        events: Sequence[Event],
        tweets: Iterable[TweetRecord],
    ) -> List[EventTweet]:
        """Per-event feature records for an explicit event list (§4.7)."""
        tweet_list = list(tweets)
        records: List[EventTweet] = []
        for event_id, event in enumerate(events):
            vocabulary = set(event.vocabulary)
            magnitudes: Dict[str, float] = {event.main_word: 1.0}
            magnitudes.update(dict(event.related_words))
            members = [
                tweet for tweet in tweet_list if self.tweet_belongs(tweet, event)
            ]
            if len(members) < self.min_event_records:
                continue
            for tweet in members:
                records.append(
                    EventTweet(
                        tokens=list(tweet.tokens),
                        event_vocabulary=vocabulary,
                        magnitudes=magnitudes,
                        author=tweet.author,
                        followers=tweet.followers,
                        likes=tweet.likes,
                        retweets=tweet.retweets,
                        created_at=tweet.created_at,
                        event_id=event_id,
                    )
                )
        return records

    @staticmethod
    def _distinct_events(pairs: Sequence[CorrelatedPair]) -> List[Event]:
        seen: List[Event] = []
        for pair in pairs:
            if not any(pair.twitter_event is e for e in seen):
                seen.append(pair.twitter_event)
        return seen
