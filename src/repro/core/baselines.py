"""Classical baselines for the audience-interest task.

The paper evaluates only its two deep architectures; a credible release
needs reference points that show the networks earn their keep.  All
baselines implement ``fit(X, y)`` / ``predict(X)`` over the same A1..D2
feature matrices and Table-2 labels:

* :class:`MajorityClass` — the floor every model must beat;
* :class:`KNearestNeighbors` — cosine-distance voting (document
  embeddings are directional, so cosine is the right metric);
* :class:`GaussianNaiveBayes` — per-class Gaussian features;
* :class:`LogisticRegression` — a single softmax layer trained with the
  same framework, i.e. the networks minus their hidden layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import SGD, Dense, EarlyStopping, Sequential, one_hot


class MajorityClass:
    """Predict the most frequent training label."""

    def __init__(self) -> None:
        self._label: Optional[int] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MajorityClass":
        y = np.asarray(y, dtype=int)
        if y.size == 0:
            raise ValueError("cannot fit on empty labels")
        self._label = int(np.bincount(y).argmax())
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._label is None:
            raise RuntimeError("model not fitted")
        return np.full(len(X), self._label, dtype=int)


class KNearestNeighbors:
    """k-NN with cosine similarity voting."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        X = np.asarray(X, dtype=np.float64)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._X = X / norms
        self._y = np.asarray(y, dtype=int)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        sims = (X / norms) @ self._X.T
        k = min(self.k, self._X.shape[0])
        neighbour_idx = np.argpartition(-sims, kth=k - 1, axis=1)[:, :k]
        out = np.empty(len(X), dtype=int)
        for i, idx in enumerate(neighbour_idx):
            votes = np.bincount(self._y[idx])
            out[i] = int(votes.argmax())
        return out


class GaussianNaiveBayes:
    """Naive Bayes with per-class Gaussian feature likelihoods."""

    def __init__(self, var_smoothing: float = 1e-6) -> None:
        self.var_smoothing = var_smoothing
        self._classes: Optional[np.ndarray] = None
        self._priors: Optional[np.ndarray] = None
        self._means: Optional[np.ndarray] = None
        self._vars: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=int)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self._classes = np.unique(y)
        self._priors = np.array([(y == c).mean() for c in self._classes])
        self._means = np.array([X[y == c].mean(axis=0) for c in self._classes])
        variances = np.array([X[y == c].var(axis=0) for c in self._classes])
        self._vars = variances + self.var_smoothing * X.var(axis=0).max()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._classes is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        log_posteriors = []
        for prior, mean, var in zip(self._priors, self._means, self._vars):
            log_likelihood = -0.5 * np.sum(
                np.log(2 * np.pi * var) + (X - mean) ** 2 / var, axis=1
            )
            log_posteriors.append(np.log(max(prior, 1e-12)) + log_likelihood)
        stacked = np.vstack(log_posteriors)
        return self._classes[np.argmax(stacked, axis=0)]


class LogisticRegression:
    """Multinomial logistic regression = one softmax layer.

    Built on the reproduction's own NN framework, so it is literally the
    paper's architectures with zero hidden layers — the cleanest ablation
    of depth.
    """

    def __init__(
        self,
        n_classes: int = 3,
        learning_rate: float = 0.5,
        max_epochs: int = 100,
        batch_size: int = 128,
        seed: int = 0,
    ) -> None:
        self.n_classes = n_classes
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.seed = seed
        self._model: Optional[Sequential] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        model = Sequential(
            [Dense(self.n_classes, activation="softmax")], seed=self.seed
        )
        model.compile(
            optimizer=SGD(self.learning_rate), loss="categorical_crossentropy"
        )
        model.fit(
            X,
            one_hot(np.asarray(y, dtype=int), self.n_classes),
            epochs=self.max_epochs,
            batch_size=self.batch_size,
            early_stopping=EarlyStopping(patience=3),
            track_accuracy=False,
        )
        self._model = model
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("model not fitted")
        return self._model.predict_classes(np.asarray(X, dtype=np.float64))


BASELINES = {
    "majority": MajorityClass,
    "knn": KNearestNeighbors,
    "naive_bayes": GaussianNaiveBayes,
    "logistic": LogisticRegression,
}
