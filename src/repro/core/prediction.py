"""Audience Interest Prediction module (§4.8, §5.6).

Trains the paper's four network configurations (MLP 1/2, CNN 1/2) on any
of the A1..D2 datasets to predict the Table-2 likes or retweets class, and
runs the full Tables-8/9 experiment grid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets import Dataset, train_validation_split
from ..nn import (
    EarlyStopping,
    Sequential,
    accuracy,
    average_accuracy,
    build_paper_network,
    confusion_matrix,
    one_hot,
)

N_CLASSES = 3  # Table 2: three ordinal buckets
PAPER_NETWORKS = ("MLP 1", "MLP 2", "CNN 1", "CNN 2")


@dataclass
class TrainingOutcome:
    """One (dataset, network, target) training run."""

    dataset_name: str
    network_name: str
    target: str
    validation_accuracy: float
    validation_average_accuracy: float
    train_accuracy: float
    n_epochs: int
    epoch_ms_mean: float
    runtime_seconds: float
    confusion: np.ndarray = field(repr=False, default=None)
    model: Sequential = field(repr=False, default=None)


class AudienceInterestPredictor:
    """Train/evaluate harness around the paper's four configurations."""

    def __init__(
        self,
        max_epochs: int = 60,
        batch_size: int = 256,
        validation_fraction: float = 0.2,
        early_stopping_patience: int = 3,
        seed: int = 42,
        dtype: Optional[str] = None,
    ) -> None:
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.validation_fraction = validation_fraction
        self.early_stopping_patience = early_stopping_patience
        self.seed = seed
        self.dtype = dtype

    def _labels(self, dataset: Dataset, target: str) -> np.ndarray:
        if target == "likes":
            return dataset.y_likes
        if target == "retweets":
            return dataset.y_retweets
        raise ValueError(f"unknown target {target!r}; expected likes|retweets")

    def train(
        self,
        dataset: Dataset,
        network_name: str,
        target: str = "likes",
        keep_model: bool = False,
    ) -> TrainingOutcome:
        """Train one configuration on one dataset; returns the outcome."""
        labels = self._labels(dataset, target)
        split = train_validation_split(
            dataset.n_samples,
            validation_fraction=self.validation_fraction,
            seed=self.seed,
            stratify=labels,
        )
        if len(split.validation) == 0:
            # Degenerate tiny dataset: stratification kept every sample in
            # training; validate on the training set rather than crash.
            split = type(split)(train=split.train, validation=split.train)
        X_train = dataset.X[split.train]
        X_val = dataset.X[split.validation]
        y_train = one_hot(labels[split.train], N_CLASSES)
        y_val_labels = labels[split.validation]
        y_val = one_hot(y_val_labels, N_CLASSES)

        model = build_paper_network(
            network_name, input_dim=dataset.n_features, n_classes=N_CLASSES,
            seed=self.seed, dtype=self.dtype,
        )
        stopper = EarlyStopping(
            monitor="loss", patience=self.early_stopping_patience
        )
        started = time.perf_counter()
        history = model.fit(
            X_train,
            y_train,
            epochs=self.max_epochs,
            batch_size=self.batch_size,
            validation_data=(X_val, y_val),
            early_stopping=stopper,
        )
        runtime = time.perf_counter() - started

        val_pred = model.predict(X_val)
        return TrainingOutcome(
            dataset_name=dataset.name,
            network_name=network_name,
            target=target,
            validation_accuracy=accuracy(y_val_labels, val_pred),
            validation_average_accuracy=average_accuracy(
                y_val_labels, val_pred, N_CLASSES
            ),
            train_accuracy=history.last("accuracy") or 0.0,
            n_epochs=history.epochs,
            epoch_ms_mean=float(np.mean(history.metrics.get("epoch_ms", [0.0]))),
            runtime_seconds=runtime,
            confusion=confusion_matrix(
                y_val_labels, val_pred, N_CLASSES
            ),
            model=model if keep_model else None,
        )

    def run_grid(
        self,
        datasets: Dict[str, Dataset],
        target: str = "likes",
        networks: Sequence[str] = PAPER_NETWORKS,
    ) -> Dict[str, Dict[str, TrainingOutcome]]:
        """The Tables-8/9 grid: every dataset x every network.

        Returns ``{dataset_name: {network_name: outcome}}``.
        """
        grid: Dict[str, Dict[str, TrainingOutcome]] = {}
        for name in sorted(datasets):
            grid[name] = {}
            for network in networks:
                grid[name][network] = self.train(
                    datasets[name], network, target=target
                )
        return grid


def grid_to_accuracy_table(
    grid: Dict[str, Dict[str, TrainingOutcome]]
) -> Dict[str, Dict[str, float]]:
    """Collapse a grid to ``{dataset: {network: accuracy}}`` floats."""
    return {
        dataset: {
            network: outcome.validation_accuracy
            for network, outcome in row.items()
        }
        for dataset, row in grid.items()
    }


def format_accuracy_table(
    table: Dict[str, Dict[str, float]],
    networks: Sequence[str] = PAPER_NETWORKS,
) -> str:
    """Render an accuracy table in the paper's Tables-8/9 layout."""
    lines = ["Dataset  " + "  ".join(f"{n:>6}" for n in networks)]
    for dataset in sorted(table):
        row = table[dataset]
        cells = "  ".join(f"{row.get(n, float('nan')):6.2f}" for n in networks)
        lines.append(f"{dataset:<8} {cells}")
    return "\n".join(lines)
