"""Continuous-deployment simulator — the §4.9 operating mode.

The paper's system "fetch[es] the latest tweets and news every 2 hours";
after each dataset update the algorithms re-run "from checkpoints or from
scratch", and checkpoints "alleviate the need to train the neural models
each time the datasets are updated".

:class:`DeploymentSimulator` replays that loop over a generated world:
each cycle reveals the documents created up to a moving cutoff, runs the
full pipeline on the visible slice, and (re)trains the audience-interest
model — warm-starting from the previous cycle's weights when available.
The per-cycle reports let callers verify the §4.9 claim that warm starts
converge in fewer epochs than cold starts.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional, Sequence

import numpy as np

from .. import obs
from ..datagen import World
from ..datasets import train_validation_split
from ..datasets.splits import Split
from ..nn import EarlyStopping, accuracy, build_paper_network, one_hot
from ..resilience import faults
from ..resilience.checkpoint import atomic_write, config_fingerprint
from ..store import Database
from .config import PipelineConfig
from .pipeline import NewsDiffusionPipeline
from .prediction import N_CLASSES

DEPLOY_STATE_VERSION = 1


@dataclass
class CycleReport:
    """What one refresh cycle saw and produced."""

    cycle: int
    cutoff: datetime
    n_articles: int
    n_tweets: int
    n_trending: int
    n_pairs: int
    n_event_tweets: int
    trained: bool
    warm_start: bool
    n_epochs: int
    validation_accuracy: float
    cycle_seconds: float


@dataclass
class DeploymentReport:
    """All cycles of one simulated deployment."""

    cycles: List[CycleReport] = field(default_factory=list)

    def cold_epochs(self) -> List[int]:
        """Epochs trained in each from-scratch (cold-start) cycle."""
        return [c.n_epochs for c in self.cycles if c.trained and not c.warm_start]

    def warm_epochs(self) -> List[int]:
        """Epochs trained in each checkpoint-resumed (warm-start) cycle."""
        return [c.n_epochs for c in self.cycles if c.trained and c.warm_start]

    def summary(self) -> str:
        lines = [
            f"{'cycle':<6}{'cutoff':<18}{'articles':<10}{'tweets':<8}"
            f"{'trending':<10}{'pairs':<7}{'records':<9}{'epochs':<8}"
            f"{'warm':<6}accuracy"
        ]
        for c in self.cycles:
            epochs = str(c.n_epochs) if c.trained else "-"
            warm = ("yes" if c.warm_start else "no") if c.trained else "-"
            acc = f"{c.validation_accuracy:.3f}" if c.trained else "-"
            lines.append(
                f"{c.cycle:<6}{c.cutoff:%Y-%m-%d %H:%M}  "
                f"{c.n_articles:<10}{c.n_tweets:<8}{c.n_trending:<10}"
                f"{c.n_pairs:<7}{c.n_event_tweets:<9}{epochs:<8}{warm:<6}{acc}"
            )
        return "\n".join(lines)


def _safe_split(
    n_samples: int,
    validation_fraction: float,
    seed: int,
    stratify: Optional[np.ndarray] = None,
) -> Split:
    """A train/validation split that survives the deployment's degenerate
    early-cycle datasets.

    ``train_validation_split`` requires two samples and may return an
    empty validation set (every stratum a singleton); the first cycles
    after startup produce exactly those shapes.  Here a single sample
    trains and validates on itself, and an empty validation set falls
    back to validating on the training set — degraded but defined, so a
    refresh cycle never dies on a thin corpus.
    """
    if n_samples < 2:
        single = np.zeros(n_samples, dtype=int)
        return Split(train=single, validation=single)
    split = train_validation_split(
        n_samples,
        validation_fraction=validation_fraction,
        seed=seed,
        stratify=stratify,
    )
    if len(split.validation) == 0:
        split = Split(train=split.train, validation=split.train)
    return split


def _weight_shapes(model) -> List[tuple]:
    """Parameter shapes of *model* in ``get_weights`` order."""
    return [
        param.shape
        for layer in model.layers
        for _name, param, _grad in layer.parameters()
    ]


def _weights_compatible(model, weights: Optional[Sequence[np.ndarray]]) -> bool:
    """True when *weights* can be loaded into *model* shape-for-shape.

    The warm-start fallback must not rely on ``set_weights`` raising
    halfway through a partial load: an explicit pre-check keeps the
    model untouched when the feature width changed between cycles.
    """
    if weights is None:
        return False
    shapes = _weight_shapes(model)
    return len(shapes) == len(weights) and all(
        expected == actual.shape for expected, actual in zip(shapes, weights)
    )


def _cycle_to_json(report: CycleReport) -> dict:
    """JSON-able form of one cycle report (datetime → isoformat)."""
    data = asdict(report)
    data["cutoff"] = report.cutoff.isoformat()
    return data


def _cycle_from_json(data: dict) -> CycleReport:
    """Rebuild a cycle report persisted by :func:`_cycle_to_json`."""
    data = dict(data)
    data["cutoff"] = datetime.fromisoformat(data["cutoff"])
    return CycleReport(**data)


def _visible_world(world: World, cutoff: datetime) -> World:
    """The sub-world of documents created up to *cutoff*."""
    # Inherit the source world's shard count so refresh cycles exercise
    # the same partitioning as the full corpus.
    database = Database("visible", shard_count=world.database.shard_count)
    for name in ("news", "tweets"):
        source = world.database[name]
        for doc in source.find({"created_at": {"$lte": cutoff}}):
            doc.pop("_id", None)
            database[name].insert_one(doc)
    return World(
        config=world.config,
        database=database,
        population=world.population,
    )


class DeploymentSimulator:
    """Replays the paper's periodic refresh loop over a world."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        refresh: timedelta = timedelta(hours=2),
        variant: str = "A2",
        network: str = "MLP 1",
        target: str = "likes",
        incremental: bool = False,
        streaming=None,
    ) -> None:
        if refresh <= timedelta(0):
            raise ValueError("refresh interval must be positive")
        self.config = config or PipelineConfig()
        self.refresh = refresh
        self.variant = variant
        self.network = network
        self.target = target
        # incremental=True replaces the per-cycle visible-world copy +
        # full pipeline rerun with a repro.streaming.IncrementalPipeline
        # fed through a watermarked IngestSession: each refresh appends
        # only the documents that became visible since the last cutoff
        # and folds them in O(new data).  *streaming* is an optional
        # repro.streaming.StreamingConfig selecting the exact or fast
        # incremental variants.
        self.incremental = incremental
        self.streaming = streaming

    # -- deployment state persistence ---------------------------------------

    def _state_fingerprint(self, world: World) -> str:
        """Fingerprint binding a state file to this simulator's setup."""
        return config_fingerprint(
            self.config,
            world_key=(
                f"deploy:{self.variant}:{self.network}:{self.target}:"
                f"{self.refresh.total_seconds()}:{len(world.news)}:"
                f"{len(world.tweets)}"
                + (":incremental" if self.incremental else "")
            ),
        )

    def _save_state(
        self,
        checkpoint_dir: str,
        world: World,
        report: DeploymentReport,
        cutoff: datetime,
        next_cycle: int,
        previous_weights: Optional[List[np.ndarray]],
    ) -> None:
        """Persist cycle reports + model weights after a completed cycle."""
        os.makedirs(checkpoint_dir, exist_ok=True)
        weights_path = os.path.join(checkpoint_dir, "weights.npz")
        if previous_weights is not None:
            np.savez(
                weights_path,
                **{f"w{i}": w for i, w in enumerate(previous_weights)},
            )
        state = {
            "version": DEPLOY_STATE_VERSION,
            "fingerprint": self._state_fingerprint(world),
            "cycles": [_cycle_to_json(c) for c in report.cycles],
            "cutoff": cutoff.isoformat(),
            "next_cycle": next_cycle,
            "has_weights": previous_weights is not None,
        }
        atomic_write(
            os.path.join(checkpoint_dir, "deployment.json"),
            (json.dumps(state, indent=2) + "\n").encode("utf-8"),
        )
        obs.counter("resilience.deployment.state_saved").inc()

    def _load_state(self, checkpoint_dir: str, world: World) -> Optional[dict]:
        """Load a resumable deployment state, or None when absent/stale."""
        path = os.path.join(checkpoint_dir, "deployment.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if state.get("version") != DEPLOY_STATE_VERSION:
            return None
        if state.get("fingerprint") != self._state_fingerprint(world):
            return None
        if state.get("has_weights"):
            weights_path = os.path.join(checkpoint_dir, "weights.npz")
            try:
                with np.load(weights_path) as data:
                    state["weights"] = [
                        data[f"w{i}"] for i in range(len(data.files))
                    ]
            except (FileNotFoundError, OSError):
                return None
        else:
            state["weights"] = None
        return state

    def _serve_dir(self, serve, checkpoint_dir: Optional[str]) -> Optional[str]:
        """Resolve the ``serve`` argument of :meth:`run` to a directory.

        ``serve=True`` exports under ``<checkpoint_dir>/artifact`` (and
        therefore requires a checkpoint dir); a string is used as the
        artifact directory itself; falsy disables the handoff.
        """
        if not serve:
            return None
        if isinstance(serve, str):
            return serve
        if checkpoint_dir is None:
            raise ValueError(
                "serve=True requires checkpoint_dir (or pass serve=<path>)"
            )
        return os.path.join(checkpoint_dir, "artifact")

    def _export_artifact(
        self,
        serve_dir: str,
        model,
        embeddings,
        cycle: int,
        cutoff: datetime,
        validation_accuracy: float,
    ) -> None:
        """Hand the freshly trained cycle model to the serving layer.

        The export is a full :func:`repro.serving.save_artifact` — a
        running ``repro serve`` process can hot-swap to it via
        ``POST /swap`` as soon as the cycle completes (the paper's
        2-hour refresh feeding the live scorer).
        """
        from ..serving.artifacts import save_artifact

        save_artifact(
            serve_dir,
            model=model,
            embeddings=embeddings,
            variant=self.variant,
            network=self.network,
            config=self.config,
            metadata={
                "cycle": cycle,
                "cutoff": cutoff.isoformat(),
                "target": self.target,
                "validation_accuracy": validation_accuracy,
            },
        )
        obs.counter("serving.artifact_exports").inc()

    @staticmethod
    def _feed_incremental(
        incremental,
        world: World,
        previous_cutoff: Optional[datetime],
        cutoff: datetime,
    ) -> int:
        """Append the documents revealed in ``(previous_cutoff, cutoff]``.

        Source documents are stored in ``created_at`` order, so the fed
        stream arrives time-sorted — exactly what :func:`_visible_world`
        hands the batch pipeline, which keeps incremental cycles
        comparable to batch cycles at every cutoff.
        """
        fed = 0
        for name, append in (
            ("news", incremental.append_news),
            ("tweets", incremental.append_tweets),
        ):
            fresh = [
                doc
                for doc in world.database[name].find()
                if doc["created_at"] <= cutoff
                and (
                    previous_cutoff is None
                    or doc["created_at"] > previous_cutoff
                )
            ]
            if fresh:
                fed += append(fresh).accepted
        return fed

    def run(
        self,
        world: World,
        n_cycles: int = 3,
        start_fraction: float = 0.6,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        serve=False,
    ) -> DeploymentReport:
        """Simulate *n_cycles* refreshes starting at *start_fraction* of
        the world's timeline (the deployment begins with a backlog).

        With *checkpoint_dir*, completed-cycle state (reports, cutoff,
        model weights) is persisted after every cycle; with *resume*
        also set, a previously killed deployment continues at the first
        unfinished cycle — warm-starting from the persisted weights —
        instead of replaying from cycle 0.  Stale state (different
        config, world, or simulator setup) is ignored, not trusted.

        With *serve* (True, or an artifact directory path), every cycle
        that trains a model also exports a ``repro.serving`` artifact —
        the online half of §4.9 picks it up via hot-swap.
        """
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        if not 0.0 < start_fraction <= 1.0:
            raise ValueError("start_fraction must lie in (0, 1]")
        serve_dir = self._serve_dir(serve, checkpoint_dir)
        pipeline = NewsDiffusionPipeline(self.config)
        incremental = None
        previous_cutoff: Optional[datetime] = None
        if self.incremental:
            # Imported lazily: repro.streaming imports repro.core, so a
            # top-level import here would be circular.
            from ..streaming import IncrementalPipeline

            incremental = IncrementalPipeline(
                self.config,
                self.streaming,
                database=Database(
                    "streaming-deploy",
                    shard_count=world.database.shard_count,
                ),
            )
        report = DeploymentReport()
        total = world.config.end - world.config.start
        cutoff = world.config.start + total * start_fraction
        first_cycle = 0
        previous_weights: Optional[List[np.ndarray]] = None

        if resume and checkpoint_dir is not None:
            state = self._load_state(checkpoint_dir, world)
            if state is not None and state["next_cycle"] > 0:
                report.cycles.extend(
                    _cycle_from_json(c) for c in state["cycles"]
                )
                cutoff = datetime.fromisoformat(state["cutoff"])
                first_cycle = int(state["next_cycle"])
                previous_weights = state["weights"]
                obs.counter("resilience.deployment.resumed").inc()

        for cycle in range(first_cycle, n_cycles):
            with obs.span("deployment.cycle") as cycle_span:
                cycle_span.annotate(cycle=cycle)
                faults.inject("deployment.cycle")
                started = time.perf_counter()
                if incremental is not None:
                    n_fed = self._feed_incremental(
                        incremental, world, previous_cutoff, cutoff
                    )
                    cycle_span.annotate(n_fed=n_fed)
                    previous_cutoff = cutoff
                    result = incremental.cycle()
                    n_articles = len(incremental.news_ed)
                    n_tweets = len(incremental.twitter_ed)
                else:
                    visible = _visible_world(world, cutoff)
                    result = pipeline.run(visible)
                    n_articles = len(visible.news)
                    n_tweets = len(visible.tweets)

                trained = False
                warm = False
                n_epochs = 0
                val_accuracy = 0.0
                records = result.event_tweets
                if records and self.variant in result.datasets:
                    dataset = result.datasets[self.variant]
                    labels = (
                        dataset.y_likes
                        if self.target == "likes"
                        else dataset.y_retweets
                    )
                    split = _safe_split(
                        dataset.n_samples,
                        validation_fraction=self.config.validation_fraction,
                        seed=self.config.seed,
                        stratify=labels,
                    )
                    model = build_paper_network(
                        self.network,
                        input_dim=dataset.n_features,
                        seed=self.config.seed,
                    )
                    if _weights_compatible(model, previous_weights):
                        model.set_weights(previous_weights)
                        warm = True
                    history = model.fit(
                        dataset.X[split.train],
                        one_hot(labels[split.train], N_CLASSES),
                        epochs=self.config.max_epochs,
                        batch_size=self.config.batch_size,
                        early_stopping=EarlyStopping(
                            patience=self.config.early_stopping_patience
                        ),
                    )
                    previous_weights = model.get_weights()
                    val_pred = model.predict(dataset.X[split.validation])
                    val_accuracy = accuracy(labels[split.validation], val_pred)
                    n_epochs = history.epochs
                    trained = True
                    if serve_dir is not None:
                        self._export_artifact(
                            serve_dir,
                            model,
                            result.embeddings,
                            cycle,
                            cutoff,
                            val_accuracy,
                        )
                cycle_span.annotate(trained=trained, warm_start=warm)

                report.cycles.append(
                    CycleReport(
                        cycle=cycle,
                        cutoff=cutoff,
                        n_articles=n_articles,
                        n_tweets=n_tweets,
                        n_trending=len(result.trending),
                        n_pairs=result.correlation.n_pairs,
                        n_event_tweets=len(records),
                        trained=trained,
                        warm_start=warm,
                        n_epochs=n_epochs,
                        validation_accuracy=val_accuracy,
                        cycle_seconds=time.perf_counter() - started,
                    )
                )
                cutoff = min(cutoff + self.refresh, world.config.end)
                if checkpoint_dir is not None:
                    self._save_state(
                        checkpoint_dir,
                        world,
                        report,
                        cutoff,
                        cycle + 1,
                        previous_weights,
                    )
        return report
