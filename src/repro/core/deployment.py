"""Continuous-deployment simulator — the §4.9 operating mode.

The paper's system "fetch[es] the latest tweets and news every 2 hours";
after each dataset update the algorithms re-run "from checkpoints or from
scratch", and checkpoints "alleviate the need to train the neural models
each time the datasets are updated".

:class:`DeploymentSimulator` replays that loop over a generated world:
each cycle reveals the documents created up to a moving cutoff, runs the
full pipeline on the visible slice, and (re)trains the audience-interest
model — warm-starting from the previous cycle's weights when available.
The per-cycle reports let callers verify the §4.9 claim that warm starts
converge in fewer epochs than cold starts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional

from ..datagen import World
from ..datasets import train_validation_split
from ..nn import EarlyStopping, accuracy, build_paper_network, one_hot
from ..store import Database
from .config import PipelineConfig
from .pipeline import NewsDiffusionPipeline
from .prediction import N_CLASSES


@dataclass
class CycleReport:
    """What one refresh cycle saw and produced."""

    cycle: int
    cutoff: datetime
    n_articles: int
    n_tweets: int
    n_trending: int
    n_pairs: int
    n_event_tweets: int
    trained: bool
    warm_start: bool
    n_epochs: int
    validation_accuracy: float
    cycle_seconds: float


@dataclass
class DeploymentReport:
    """All cycles of one simulated deployment."""

    cycles: List[CycleReport] = field(default_factory=list)

    def cold_epochs(self) -> List[int]:
        """Epochs trained in each from-scratch (cold-start) cycle."""
        return [c.n_epochs for c in self.cycles if c.trained and not c.warm_start]

    def warm_epochs(self) -> List[int]:
        """Epochs trained in each checkpoint-resumed (warm-start) cycle."""
        return [c.n_epochs for c in self.cycles if c.trained and c.warm_start]

    def summary(self) -> str:
        lines = [
            f"{'cycle':<6}{'cutoff':<18}{'articles':<10}{'tweets':<8}"
            f"{'trending':<10}{'pairs':<7}{'records':<9}{'epochs':<8}"
            f"{'warm':<6}accuracy"
        ]
        for c in self.cycles:
            epochs = str(c.n_epochs) if c.trained else "-"
            warm = ("yes" if c.warm_start else "no") if c.trained else "-"
            acc = f"{c.validation_accuracy:.3f}" if c.trained else "-"
            lines.append(
                f"{c.cycle:<6}{c.cutoff:%Y-%m-%d %H:%M}  "
                f"{c.n_articles:<10}{c.n_tweets:<8}{c.n_trending:<10}"
                f"{c.n_pairs:<7}{c.n_event_tweets:<9}{epochs:<8}{warm:<6}{acc}"
            )
        return "\n".join(lines)


def _visible_world(world: World, cutoff: datetime) -> World:
    """The sub-world of documents created up to *cutoff*."""
    database = Database("visible")
    for name in ("news", "tweets"):
        source = world.database[name]
        for doc in source.find({"created_at": {"$lte": cutoff}}):
            doc.pop("_id", None)
            database[name].insert_one(doc)
    return World(
        config=world.config,
        database=database,
        population=world.population,
    )


class DeploymentSimulator:
    """Replays the paper's periodic refresh loop over a world."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        refresh: timedelta = timedelta(hours=2),
        variant: str = "A2",
        network: str = "MLP 1",
        target: str = "likes",
    ) -> None:
        if refresh <= timedelta(0):
            raise ValueError("refresh interval must be positive")
        self.config = config or PipelineConfig()
        self.refresh = refresh
        self.variant = variant
        self.network = network
        self.target = target

    def run(
        self,
        world: World,
        n_cycles: int = 3,
        start_fraction: float = 0.6,
    ) -> DeploymentReport:
        """Simulate *n_cycles* refreshes starting at *start_fraction* of
        the world's timeline (the deployment begins with a backlog)."""
        if n_cycles < 1:
            raise ValueError("n_cycles must be >= 1")
        if not 0.0 < start_fraction <= 1.0:
            raise ValueError("start_fraction must lie in (0, 1]")
        pipeline = NewsDiffusionPipeline(self.config)
        report = DeploymentReport()
        total = world.config.end - world.config.start
        cutoff = world.config.start + total * start_fraction

        previous_weights = None
        for cycle in range(n_cycles):
            started = time.perf_counter()
            visible = _visible_world(world, cutoff)
            result = pipeline.run(visible)

            trained = False
            warm = False
            n_epochs = 0
            val_accuracy = 0.0
            records = result.event_tweets
            if records and self.variant in result.datasets:
                dataset = result.datasets[self.variant]
                labels = (
                    dataset.y_likes if self.target == "likes" else dataset.y_retweets
                )
                split = train_validation_split(
                    dataset.n_samples,
                    validation_fraction=self.config.validation_fraction,
                    seed=self.config.seed,
                    stratify=labels,
                )
                if len(split.validation) == 0:
                    split = type(split)(train=split.train, validation=split.train)
                model = build_paper_network(
                    self.network, input_dim=dataset.n_features, seed=self.config.seed
                )
                if previous_weights is not None:
                    try:
                        model.set_weights(previous_weights)
                        warm = True
                    except ValueError:
                        warm = False  # feature width changed; cold start
                history = model.fit(
                    dataset.X[split.train],
                    one_hot(labels[split.train], N_CLASSES),
                    epochs=self.config.max_epochs,
                    batch_size=self.config.batch_size,
                    early_stopping=EarlyStopping(
                        patience=self.config.early_stopping_patience
                    ),
                )
                previous_weights = model.get_weights()
                val_pred = model.predict(dataset.X[split.validation])
                val_accuracy = accuracy(labels[split.validation], val_pred)
                n_epochs = history.epochs
                trained = True

            report.cycles.append(
                CycleReport(
                    cycle=cycle,
                    cutoff=cutoff,
                    n_articles=len(visible.news),
                    n_tweets=len(visible.tweets),
                    n_trending=len(result.trending),
                    n_pairs=result.correlation.n_pairs,
                    n_event_tweets=len(records),
                    trained=trained,
                    warm_start=warm,
                    n_epochs=n_epochs,
                    validation_accuracy=val_accuracy,
                    cycle_seconds=time.perf_counter() - started,
                )
            )
            cutoff = min(cutoff + self.refresh, world.config.end)
        return report
