"""Minimum-cost-flow topic↔event matching — the paper's §6 future work.

The deployed system matches each news topic to its single best-scoring
news event independently (greedy argmax, §4.5).  The conclusion proposes
Minimum Cost Flow as a global alternative: treat topics and events as two
node layers, similarities as negated edge costs, and solve for the
assignment that maximizes *total* similarity under capacity constraints.
Greedy matching can assign two topics to the same event while a slightly
worse pairing would cover more topics; the flow formulation trades those
off globally.

Implementation: integer min-cost flow on a bipartite network via
``networkx.max_flow_min_cost`` with costs scaled to integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

_COST_SCALE = 10_000  # similarity -> integer cost resolution


@dataclass
class Match:
    """One matched (left, right) pair with its similarity."""

    left: int
    right: int
    similarity: float


class MinCostFlowMatcher:
    """Globally optimal bipartite matching over a similarity matrix.

    Parameters
    ----------
    similarity_threshold:
        Edges below this similarity are not created at all.
    left_capacity / right_capacity:
        How many partners each left/right node may take (1 = matching;
        the paper's greedy scheme effectively uses left_capacity=1 with
        unbounded right capacity).
    """

    def __init__(
        self,
        similarity_threshold: float = 0.0,
        left_capacity: int = 1,
        right_capacity: int = 1,
    ) -> None:
        if left_capacity < 1 or right_capacity < 1:
            raise ValueError("capacities must be >= 1")
        self.similarity_threshold = similarity_threshold
        self.left_capacity = left_capacity
        self.right_capacity = right_capacity

    def match(
        self,
        similarities: np.ndarray,
        eligible: Optional[np.ndarray] = None,
    ) -> List[Match]:
        """Solve the assignment for a (n_left, n_right) similarity matrix.

        *eligible*, when given, is a boolean mask of allowed pairs (the
        correlation module uses it for the 5-day start-window rule).
        Returns matches sorted by descending similarity.
        """
        sims = np.asarray(similarities, dtype=np.float64)
        if sims.ndim != 2:
            raise ValueError("similarities must be a 2-D matrix")
        n_left, n_right = sims.shape
        if n_left == 0 or n_right == 0:
            return []
        if eligible is None:
            eligible = np.ones_like(sims, dtype=bool)
        eligible = np.asarray(eligible, dtype=bool)
        if eligible.shape != sims.shape:
            raise ValueError("eligibility mask shape mismatch")

        graph = nx.DiGraph()
        source, sink = "s", "t"
        for i in range(n_left):
            graph.add_edge(source, ("L", i), capacity=self.left_capacity, weight=0)
        for j in range(n_right):
            graph.add_edge(("R", j), sink, capacity=self.right_capacity, weight=0)
        n_edges = 0
        for i in range(n_left):
            for j in range(n_right):
                if not eligible[i, j]:
                    continue
                sim = sims[i, j]
                if sim < self.similarity_threshold:
                    continue
                graph.add_edge(
                    ("L", i),
                    ("R", j),
                    capacity=1,
                    weight=-int(round(sim * _COST_SCALE)),
                )
                n_edges += 1
        if n_edges == 0:
            return []

        flow = nx.max_flow_min_cost(graph, source, sink)
        matches: List[Match] = []
        for i in range(n_left):
            for (kind, j), units in flow.get(("L", i), {}).items():
                if kind == "R" and units > 0:
                    matches.append(Match(left=i, right=j, similarity=float(sims[i, j])))
        matches.sort(key=lambda m: -m.similarity)
        return matches

    def total_similarity(self, matches: Sequence[Match]) -> float:
        """Objective value of a match set."""
        return float(sum(m.similarity for m in matches))


def greedy_matches(
    similarities: np.ndarray,
    similarity_threshold: float = 0.0,
    eligible: Optional[np.ndarray] = None,
) -> List[Match]:
    """The paper's per-topic argmax matching, for side-by-side comparison.

    Each left node independently takes its best eligible right node; right
    nodes may be reused (exactly the §4.5 behaviour).
    """
    sims = np.asarray(similarities, dtype=np.float64)
    n_left, n_right = sims.shape if sims.ndim == 2 else (0, 0)
    if n_left == 0 or n_right == 0:
        return []
    if eligible is None:
        eligible = np.ones_like(sims, dtype=bool)
    matches: List[Match] = []
    for i in range(n_left):
        masked = np.where(eligible[i], sims[i], -np.inf)
        j = int(np.argmax(masked))
        if np.isfinite(masked[j]) and masked[j] >= similarity_threshold:
            matches.append(Match(left=i, right=j, similarity=float(sims[i, j])))
    matches.sort(key=lambda m: -m.similarity)
    return matches


def coverage(matches: Sequence[Match], side: str = "right") -> int:
    """Distinct nodes covered on one side of a match set."""
    if side == "left":
        return len({m.left for m in matches})
    if side == "right":
        return len({m.right for m in matches})
    raise ValueError("side must be 'left' or 'right'")
