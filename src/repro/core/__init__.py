"""The paper's primary contribution: the Figure-1 pipeline and its modules."""

from .config import PipelineConfig, small_config
from .baselines import (
    BASELINES,
    GaussianNaiveBayes,
    KNearestNeighbors,
    LogisticRegression,
    MajorityClass,
)
from .correlation import CorrelatedPair, CorrelationModule, CorrelationResult
from .deployment import CycleReport, DeploymentReport, DeploymentSimulator
from .features import FeatureCreationModule, TweetRecord
from .matching import Match, MinCostFlowMatcher, coverage, greedy_matches
from .pipeline import NewsDiffusionPipeline, PipelineResult
from .prediction import (
    AudienceInterestPredictor,
    N_CLASSES,
    PAPER_NETWORKS,
    TrainingOutcome,
    format_accuracy_table,
    grid_to_accuracy_table,
)
from .trending import TrendingNewsModule, TrendingNewsTopic

__all__ = [
    "PipelineConfig",
    "small_config",
    "NewsDiffusionPipeline",
    "PipelineResult",
    "TrendingNewsModule",
    "TrendingNewsTopic",
    "CorrelationModule",
    "CorrelationResult",
    "CorrelatedPair",
    "DeploymentSimulator",
    "DeploymentReport",
    "CycleReport",
    "FeatureCreationModule",
    "TweetRecord",
    "BASELINES",
    "MajorityClass",
    "KNearestNeighbors",
    "GaussianNaiveBayes",
    "LogisticRegression",
    "MinCostFlowMatcher",
    "Match",
    "greedy_matches",
    "coverage",
    "AudienceInterestPredictor",
    "TrainingOutcome",
    "PAPER_NETWORKS",
    "N_CLASSES",
    "grid_to_accuracy_table",
    "format_accuracy_table",
]
