"""Pipeline configuration (the knobs of Figure 1's modules).

Defaults follow the paper's reported settings scaled to the synthetic
corpora: 60-minute news slices and 30-minute tweet slices (§5.3–§5.4),
a 0.7 topic↔news-event similarity threshold and 0.65 trending-topic↔
Twitter-event threshold with a 5-day start window (§5.5), at least 10
records per event of interest (§4.7), and 300-d document embeddings
(§5.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class PipelineConfig:
    """All tunables of the end-to-end pipeline."""

    # Topic modeling (§4.3; the paper extracts 100 topics from 261k articles).
    n_topics: int = 12
    topic_top_terms: int = 10
    nmf_max_iter: int = 150

    # Event detection (§4.4, §5.3–§5.4).
    n_news_events: int = 40
    n_twitter_events: int = 60
    news_slice_minutes: int = 60
    twitter_slice_minutes: int = 30
    min_term_support: int = 10
    mabed_theta: float = 0.55
    n_related_words: int = 10

    # Correlation (§4.5–§4.6, §5.5).
    trending_similarity_threshold: float = 0.7
    correlation_similarity_threshold: float = 0.65
    start_window_days: float = 5.0
    start_slack_days: float = 1.0

    # Feature creation (§4.7).
    min_event_records: int = 10
    related_word_coverage: float = 0.2

    # Embeddings (§4.9: 300-d pretrained vectors).
    embedding_dim: int = 300
    embedding_coverage: float = 0.9

    # Prediction (§5.6).
    validation_fraction: float = 0.2
    max_epochs: int = 60
    batch_size: int = 256
    early_stopping_patience: int = 3
    seed: int = 42

    # NN compute dtype: None defers to REPRO_NN_DTYPE (default float64,
    # the bitwise-deterministic reference); "float32" opts into the
    # raw-speed training path (tolerance-comparable only).
    nn_dtype: Optional[str] = None

    # Parallel fan-outs (repro.parallel): 0 defers to the REPRO_WORKERS
    # environment variable (default serial).
    workers: int = 0

    # Resilience (repro.resilience): every pipeline stage runs under a
    # RetryPolicy built from these knobs.  None of them can change stage
    # outputs, so the checkpoint fingerprint excludes them.
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.05
    retry_max_delay_s: float = 2.0
    stage_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = resolve from env)")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.retry_base_delay_s < 0 or self.retry_max_delay_s < 0:
            raise ValueError("retry delays must be >= 0")
        if self.stage_timeout_s is not None and self.stage_timeout_s <= 0:
            raise ValueError("stage_timeout_s must be positive or None")
        if self.n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if not 0.0 <= self.trending_similarity_threshold <= 1.0:
            raise ValueError("trending_similarity_threshold must lie in [0, 1]")
        if not 0.0 <= self.correlation_similarity_threshold <= 1.0:
            raise ValueError("correlation_similarity_threshold must lie in [0, 1]")
        if self.start_window_days < 0:
            raise ValueError("start_window_days must be >= 0")
        if not 0.0 <= self.related_word_coverage <= 1.0:
            raise ValueError("related_word_coverage must lie in [0, 1]")
        if self.min_event_records < 1:
            raise ValueError("min_event_records must be >= 1")
        if self.nn_dtype is not None and self.nn_dtype not in (
            "float32",
            "float64",
        ):
            raise ValueError(
                "nn_dtype must be None, 'float32' or 'float64', "
                f"got {self.nn_dtype!r}"
            )


def small_config(seed: int = 42) -> PipelineConfig:
    """A configuration sized for tests and the quickstart example."""
    return PipelineConfig(
        n_topics=8,
        n_news_events=20,
        n_twitter_events=30,
        nmf_max_iter=80,
        embedding_dim=64,
        max_epochs=25,
        min_term_support=5,
        min_event_records=5,
        seed=seed,
    )
