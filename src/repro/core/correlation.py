"""Correlation module (§4.6): trending news topics <-> Twitter events.

For each trending news topic, candidate Twitter events are those whose
start date falls within [S_NE, S_NE + 5 days] — "a Twitter event can
appear on social media as soon as the news appears in the mass media, but
it can also be some delay" (§5.5); the end date is unconstrained.  Among
candidates, pairs with Doc2Vec cosine similarity above the threshold
(0.65 in §5.5) are kept.

The module also runs the reverse correlation (Twitter events -> trending
news topics) and reports Twitter events with no correlated trending topic
— the Table-7 "unrelated Twitter events".
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta
from typing import List, Sequence, Set, Tuple

import numpy as np

from ..embeddings import PretrainedEmbeddings, cosine_similarity_matrix, keywords2vec
from ..events import Event
from .trending import TrendingNewsTopic


@dataclass
class CorrelatedPair:
    """A <trending news topic, Twitter event> correlation."""

    trending: TrendingNewsTopic
    twitter_event: Event
    similarity: float

    def describe(self) -> str:
        return (
            f"NT#{self.trending.topic.index} <-> TE[{self.twitter_event.main_word}] "
            f"sim={self.similarity:.2f}"
        )


@dataclass
class CorrelationResult:
    """Everything the correlation stage produces (§5.5's counts)."""

    pairs: List[CorrelatedPair]
    unrelated_twitter_events: List[Event]
    matched_trending: List[TrendingNewsTopic]
    unmatched_trending: List[TrendingNewsTopic]

    @property
    def n_pairs(self) -> int:
        """Number of correlated <trending topic, Twitter event> pairs."""
        return len(self.pairs)

    def pairs_for_event(self, event: Event) -> List[CorrelatedPair]:
        """All pairs whose Twitter event is *event*."""
        return [p for p in self.pairs if p.twitter_event is event]


class CorrelationModule:
    """Correlates trending news topics with Twitter events."""

    def __init__(
        self,
        embeddings: PretrainedEmbeddings,
        similarity_threshold: float = 0.65,
        start_window: timedelta = timedelta(days=5),
        start_slack: timedelta = timedelta(days=1),
    ) -> None:
        """*start_slack* allows a Twitter event to start slightly before
        the news event: the paper's constraint assumes Twitter reacts "as
        soon as the news appears", and with different slice widths (30 vs
        60 minutes) MABED's detected start times jitter by up to a day in
        either direction."""
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must lie in [0, 1]")
        if start_window < timedelta(0):
            raise ValueError("start_window must be non-negative")
        if start_slack < timedelta(0):
            raise ValueError("start_slack must be non-negative")
        self.embeddings = embeddings
        self.similarity_threshold = similarity_threshold
        self.start_window = start_window
        self.start_slack = start_slack

    def _similarities(
        self,
        trending: Sequence[TrendingNewsTopic],
        twitter_events: Sequence[Event],
    ) -> np.ndarray:
        if not trending or not twitter_events:
            return np.zeros((len(trending), len(twitter_events)))
        # Trending topics are encoded through their news event's vocabulary
        # (NewsEvent2Vec) and Twitter events through theirs (TwitterEvent2Vec).
        t_matrix = np.vstack(
            [keywords2vec(t.event.vocabulary, self.embeddings) for t in trending]
        )
        e_matrix = np.vstack(
            [keywords2vec(e.vocabulary, self.embeddings) for e in twitter_events]
        )
        return cosine_similarity_matrix(t_matrix, e_matrix)

    def _time_eligible(
        self, trending: TrendingNewsTopic, twitter_event: Event
    ) -> bool:
        """S_TE in [S_NE - slack, S_NE + window] (§5.5's start-date rule)."""
        start = trending.start
        return (
            start - self.start_slack
            <= twitter_event.start
            <= start + self.start_window
        )

    def correlate(
        self,
        trending: Sequence[TrendingNewsTopic],
        twitter_events: Sequence[Event],
    ) -> CorrelationResult:
        """Forward correlation with Table-7 unrelated-event reporting."""
        sims = self._similarities(trending, twitter_events)
        pairs: List[CorrelatedPair] = []
        matched_topic_ids: Set[int] = set()
        matched_event_ids: Set[int] = set()
        for i, topic in enumerate(trending):
            for j, event in enumerate(twitter_events):
                if not self._time_eligible(topic, event):
                    continue
                similarity = float(sims[i, j])
                if similarity >= self.similarity_threshold:
                    pairs.append(
                        CorrelatedPair(
                            trending=topic,
                            twitter_event=event,
                            similarity=similarity,
                        )
                    )
                    matched_topic_ids.add(i)
                    matched_event_ids.add(j)
        unrelated = [
            e for j, e in enumerate(twitter_events) if j not in matched_event_ids
        ]
        matched = [t for i, t in enumerate(trending) if i in matched_topic_ids]
        unmatched = [t for i, t in enumerate(trending) if i not in matched_topic_ids]
        return CorrelationResult(
            pairs=pairs,
            unrelated_twitter_events=unrelated,
            matched_trending=matched,
            unmatched_trending=unmatched,
        )

    def reverse_correlate(
        self,
        twitter_events: Sequence[Event],
        trending: Sequence[TrendingNewsTopic],
    ) -> List[CorrelatedPair]:
        """Twitter events -> trending news topics (§5.5's reverse check).

        Applies the same constraints from the event side; §5.5 observes the
        resulting pair set equals the forward one, which our integration
        tests assert.
        """
        result = self.correlate(trending, twitter_events)
        return result.pairs

    @staticmethod
    def pair_sets_equal(
        forward: Sequence[CorrelatedPair], reverse: Sequence[CorrelatedPair]
    ) -> bool:
        """Compare two correlation passes as sets of (topic, event) keys."""

        def key(pair: CorrelatedPair) -> Tuple[int, str, object]:
            return (
                pair.trending.topic.index,
                pair.twitter_event.main_word,
                pair.twitter_event.start,
            )

        return {key(p) for p in forward} == {key(p) for p in reverse}
