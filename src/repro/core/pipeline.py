"""End-to-end pipeline — the architecture of Figure 1.

Orchestrates every module over a generated (or externally supplied)
world: preprocessing the three corpora, NMF topic extraction, MABED event
detection on news and Twitter, trending-topic extraction, news↔Twitter
correlation, feature creation, dataset building, and audience-interest
prediction.  Timings of each stage are recorded because the paper reports
them throughout §5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from datetime import timedelta
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .. import obs
from ..datagen import World
from ..datasets import VARIANT_NAMES, Dataset, EventTweet, build_all_datasets
from ..parallel import parallel_map
from ..embeddings import PretrainedEmbeddings
from ..events import MABED, Event, TimestampedDocument
from ..resilience import RetryPolicy, faults
from ..resilience.checkpoint import CheckpointStore
from ..text import (
    is_stopword,
    preprocess_for_event_detection,
    preprocess_for_topic_modeling,
)
from ..topics import NMFResult, Topic, extract_topics
from .config import PipelineConfig
from .correlation import CorrelationModule, CorrelationResult
from .features import FeatureCreationModule, TweetRecord
from .prediction import AudienceInterestPredictor, TrainingOutcome
from .trending import TrendingNewsModule, TrendingNewsTopic


@dataclass
class PipelineResult:
    """All intermediate and final products of one pipeline run."""

    topics: List[Topic]
    nmf: NMFResult
    news_events: List[Event]
    twitter_events: List[Event]
    trending: List[TrendingNewsTopic]
    correlation: CorrelationResult
    event_tweets: List[EventTweet]
    datasets: Dict[str, Dataset]
    embeddings: PretrainedEmbeddings
    timings_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable run summary (the §5.5-style counts)."""
        lines = [
            f"topics: {len(self.topics)}",
            f"news events: {len(self.news_events)}",
            f"twitter events: {len(self.twitter_events)}",
            f"trending news topics: {len(self.trending)}",
            f"<trending, twitter event> pairs: {self.correlation.n_pairs}",
            f"unrelated twitter events: "
            f"{len(self.correlation.unrelated_twitter_events)}",
            f"event-tweet records: {len(self.event_tweets)}",
        ]
        for stage, seconds in self.timings_seconds.items():
            lines.append(f"time[{stage}]: {seconds:.2f}s")
        return "\n".join(lines)


#: Stage names in execution order; each runs inside a ``pipeline.<name>``
#: obs span and (when checkpointing) owns one entry in the run directory.
STAGES = (
    "preprocess_news_tm",
    "preprocess_news_ed",
    "preprocess_twitter_ed",
    "topic_modeling",
    "news_event_detection",
    "twitter_event_detection",
    "embeddings",
    "trending_news",
    "correlation",
    "tweet_records",
    "feature_creation",
    "dataset_building",
)


def news_tm_tokens(doc: Dict[str, Any]) -> List[str]:
    """One news article -> NewsTM tokens (topic-modeling preprocessing).

    Module-level (not a method) so the streaming pipeline's per-document
    incremental preprocessing is guaranteed to be the same function the
    batch pipeline maps — parity by construction.
    """
    return preprocess_for_topic_modeling(
        f"{doc.get('title', '')}. {doc.get('text', '')}"
    )


def news_ed_document(doc: Dict[str, Any]) -> TimestampedDocument:
    """One news article -> NewsED timestamped document for MABED."""
    return TimestampedDocument(
        tokens=preprocess_for_event_detection(
            f"{doc.get('title', '')} {doc.get('text', '')}"
        ),
        created_at=doc["created_at"],
        doc_id=doc["_id"],
    )


def twitter_ed_document(doc: Dict[str, Any]) -> TimestampedDocument:
    """One tweet -> TwitterED timestamped document for MABED."""
    return TimestampedDocument(
        tokens=preprocess_for_event_detection(doc["text"]),
        created_at=doc["created_at"],
        doc_id=doc["_id"],
    )


def tweet_record_of(doc: Dict[str, Any]) -> TweetRecord:
    """One tweet -> :class:`TweetRecord` with feature-module metadata."""
    return TweetRecord(
        tokens=preprocess_for_event_detection(doc["text"]),
        created_at=doc["created_at"],
        author=doc["author"],
        followers=int(doc["followers"]),
        likes=int(doc["likes"]),
        retweets=int(doc["retweets"]),
    )


def world_key(world: World) -> str:
    """Cheap content key of *world* mixed into checkpoint fingerprints.

    Catches the deployment-loop failure mode where the same config runs
    over a *grown* corpus: corpus sizes and the configured time range
    change, so checkpoints from a previous cutoff are invalidated.
    """
    return (
        f"news={len(world.news)};tweets={len(world.tweets)};"
        f"start={world.config.start.isoformat()};"
        f"days={world.config.duration_days}"
    )


def resilient_stage(
    name: str,
    func: Callable[[], Any],
    *,
    policy: Optional[RetryPolicy] = None,
    store: Optional[CheckpointStore] = None,
    resume: bool = False,
    timings: Optional[Dict[str, float]] = None,
) -> Any:
    """Run one pipeline stage with faults, retries, and checkpoints.

    The stage executes inside a ``pipeline.<name>`` obs span annotated
    with ``attempts`` and ``resumed``.  Order of concerns:

    1. with *resume* and a completed checkpoint in *store*, the stored
       output is loaded and the stage body never runs (``resumed=True``,
       ``attempts=0``);
    2. otherwise each attempt first fault-checks the ``pipeline.<name>``
       site (:func:`repro.resilience.faults.inject`) and then calls
       *func*; *policy* absorbs retryable failures with seeded backoff;
    3. on success the output is checkpointed to *store* (when given)
       before the span closes.
    """
    site = f"pipeline.{name}"
    with obs.span(site) as stage_span:
        started = time.perf_counter()
        try:
            if resume and store is not None and store.has(name):
                value = store.load(name)
                stage_span.annotate(attempts=0, resumed=True)
                return value

            attempts = [0]

            def attempt() -> Any:
                attempts[0] += 1
                faults.inject(site)
                return func()

            def record_retry(n: int, exc: BaseException, delay: float) -> None:
                obs.counter("resilience.retries").inc()
                stage_span.annotate(
                    fault=type(exc).__name__, retry_delay_s=round(delay, 6)
                )

            try:
                if policy is None:
                    value = attempt()
                else:
                    value = policy.call(attempt, site=site, on_retry=record_retry)
            finally:
                stage_span.annotate(attempts=attempts[0], resumed=False)
            if store is not None:
                store.save(name, value)
            return value
        finally:
            if timings is not None:
                timings[name] = time.perf_counter() - started


class NewsDiffusionPipeline:
    """The deployed system of Figure 1, module by module."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    def retry_policy(self) -> RetryPolicy:
        """The per-stage :class:`RetryPolicy` implied by the config."""
        return RetryPolicy(
            max_attempts=self.config.retry_attempts,
            base_delay_s=self.config.retry_base_delay_s,
            max_delay_s=self.config.retry_max_delay_s,
            timeout_s=self.config.stage_timeout_s,
            seed=self.config.seed,
        )

    # -- corpora ---------------------------------------------------------------

    def _map_docs(self, func, docs, span_name: str) -> List:
        """Fan a per-document function out over ``config.workers`` workers.

        Delegates to :func:`repro.parallel.parallel_map` with stable
        chunking, so results (and therefore every downstream stage) are
        identical whatever the worker count; ``workers=0`` defers to the
        ``REPRO_WORKERS`` environment variable.
        """
        return parallel_map(
            func,
            docs,
            workers=self.config.workers or None,
            allow_process=False,
            span_name=span_name,
        )

    def preprocess_news_tm(self, world: World) -> List[List[str]]:
        """NewsTM corpus: article texts through the topic-modeling pipeline."""
        return self._map_docs(
            news_tm_tokens,
            list(world.news.find()),
            "pipeline.parallel.news_tm",
        )

    def preprocess_news_ed(self, world: World) -> List[TimestampedDocument]:
        """NewsED corpus for MABED (minimal preprocessing + timestamps)."""
        return self._map_docs(
            news_ed_document,
            list(world.news.find()),
            "pipeline.parallel.news_ed",
        )

    def preprocess_twitter_ed(self, world: World) -> List[TimestampedDocument]:
        """TwitterED corpus for MABED."""
        return self._map_docs(
            twitter_ed_document,
            list(world.tweets.find()),
            "pipeline.parallel.twitter_ed",
        )

    def tweet_records(self, world: World) -> List[TweetRecord]:
        """TwitterED tweets with the metadata the feature module needs."""
        return self._map_docs(
            tweet_record_of,
            list(world.tweets.find()),
            "pipeline.parallel.tweet_records",
        )

    # -- stages --------------------------------------------------------------------

    def extract_news_topics(self, news_tm: Sequence[Sequence[str]]) -> NMFResult:
        """§4.3: TFIDF_N + NMF over the NewsTM corpus."""
        return extract_topics(
            news_tm,
            n_topics=self.config.n_topics,
            top_terms=self.config.topic_top_terms,
            max_iter=self.config.nmf_max_iter,
            seed=self.config.seed,
            min_df=2,
            max_df_ratio=0.7,
        )

    def detect_news_events(
        self, news_ed: Sequence[TimestampedDocument]
    ) -> List[Event]:
        """§4.4 / §5.3: MABED with 60-minute slices over news."""
        detector = MABED(
            slice_width=timedelta(minutes=self.config.news_slice_minutes),
            min_term_support=self.config.min_term_support,
            n_related_words=self.config.n_related_words,
            theta=self.config.mabed_theta,
            stopword_filter=is_stopword,
            workers=self.config.workers or None,
        )
        return detector.detect(news_ed, self.config.n_news_events)

    def detect_twitter_events(
        self, twitter_ed: Sequence[TimestampedDocument]
    ) -> List[Event]:
        """§4.4 / §5.4: MABED with 30-minute slices over tweets."""
        detector = MABED(
            slice_width=timedelta(minutes=self.config.twitter_slice_minutes),
            min_term_support=self.config.min_term_support,
            n_related_words=self.config.n_related_words,
            theta=self.config.mabed_theta,
            stopword_filter=is_stopword,
            workers=self.config.workers or None,
        )
        return detector.detect(twitter_ed, self.config.n_twitter_events)

    def train_embeddings(
        self,
        news_ed: Sequence[TimestampedDocument],
        twitter_ed: Sequence[TimestampedDocument],
        news_tm: Sequence[Sequence[str]] = (),
    ) -> PretrainedEmbeddings:
        """The GoogleNews stand-in, trained on the background corpus (§4.9).

        The lemmatized NewsTM corpus is included so topic keywords (lemmas
        and merged entity concepts) are in-vocabulary alongside the raw
        event-detection tokens — GoogleNews covers both surface and base
        forms, and the stand-in must too or topic↔event similarities
        collapse.
        """
        corpus = (
            [list(d.tokens) for d in news_ed]
            + [list(d.tokens) for d in twitter_ed]
            + [list(tokens) for tokens in news_tm]
        )
        embeddings = PretrainedEmbeddings.train_background_lsa(
            corpus,
            dim=self.config.embedding_dim,
            coverage=self.config.embedding_coverage,
            seed=self.config.seed,
        )
        # GoogleNews (2013, news prose) has no entry for platform slang;
        # drop those words so the SW/RND/SWM variants differ as in §4.7.
        from ..datagen.world import TWITTER_SLANG

        return embeddings.without(TWITTER_SLANG)

    def build_predictor(self) -> AudienceInterestPredictor:
        """The §5.6 predictor configured from this pipeline's config."""
        return AudienceInterestPredictor(
            max_epochs=self.config.max_epochs,
            batch_size=self.config.batch_size,
            validation_fraction=self.config.validation_fraction,
            early_stopping_patience=self.config.early_stopping_patience,
            seed=self.config.seed,
            dtype=self.config.nn_dtype,
        )

    # -- orchestration ----------------------------------------------------------------

    def _checkpoint_store(
        self,
        world: World,
        checkpoint_dir: Optional[Union[str, CheckpointStore]],
    ) -> Optional[CheckpointStore]:
        if checkpoint_dir is None:
            return None
        if isinstance(checkpoint_dir, CheckpointStore):
            return checkpoint_dir
        return CheckpointStore(
            checkpoint_dir, config=self.config, world_key=world_key(world)
        )

    def run(
        self,
        world: World,
        *,
        checkpoint_dir: Optional[Union[str, CheckpointStore]] = None,
        resume_from: Optional[Union[str, CheckpointStore]] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> PipelineResult:
        """Execute stages (1)–(5) of the architecture over *world*.

        Every stage runs inside an ``repro.obs`` span named
        ``pipeline.<stage>`` (under a ``pipeline.run`` root) and under
        the config's :class:`RetryPolicy`; ``timings_seconds`` stays
        populated either way for backwards compatibility.

        *checkpoint_dir* persists every stage output to a
        :class:`CheckpointStore` as the run progresses; *resume_from*
        additionally loads completed stages from the directory instead
        of recomputing them (stale checkpoints — different config or
        world — are invalidated automatically).  Passing both is only
        allowed when they name the same store.
        """
        if (
            checkpoint_dir is not None
            and resume_from is not None
            and checkpoint_dir != resume_from
        ):
            raise ValueError(
                "checkpoint_dir and resume_from must agree when both are given"
            )
        store = self._checkpoint_store(world, resume_from or checkpoint_dir)
        resume = resume_from is not None
        policy = retry_policy or self.retry_policy()
        with obs.span("pipeline.run") as run_span:
            run_span.annotate(resumed=resume)
            result = self._run_stages(
                world, run_span, store=store, resume=resume, policy=policy
            )
            run_span.annotate(
                n_topics=len(result.topics),
                n_news_events=len(result.news_events),
                n_twitter_events=len(result.twitter_events),
                n_event_tweets=len(result.event_tweets),
            )
            return result

    def _run_stages(
        self,
        world: World,
        run_span,
        store: Optional[CheckpointStore] = None,
        resume: bool = False,
        policy: Optional[RetryPolicy] = None,
    ) -> PipelineResult:
        timings: Dict[str, float] = {}

        def staged(stage: str, func, *args):
            """One resilient stage; annotates progress on the run span.

            Progress counts are annotated as soon as each stage
            completes, so a snapshot taken after a *failed* run still
            carries every count the run got far enough to produce.
            """
            value = resilient_stage(
                stage,
                lambda: func(*args),
                policy=policy,
                store=store,
                resume=resume,
                timings=timings,
            )
            if stage == "topic_modeling":
                run_span.annotate(n_topics=len(value.topics))
            elif stage == "news_event_detection":
                run_span.annotate(n_news_events=len(value))
            elif stage == "twitter_event_detection":
                run_span.annotate(n_twitter_events=len(value))
            elif stage == "feature_creation":
                run_span.annotate(n_event_tweets=len(value))
            return value

        news_tm = staged("preprocess_news_tm", self.preprocess_news_tm, world)
        news_ed = staged("preprocess_news_ed", self.preprocess_news_ed, world)
        twitter_ed = staged(
            "preprocess_twitter_ed", self.preprocess_twitter_ed, world
        )

        nmf = staged("topic_modeling", self.extract_news_topics, news_tm)
        news_events = staged("news_event_detection", self.detect_news_events, news_ed)
        twitter_events = staged(
            "twitter_event_detection", self.detect_twitter_events, twitter_ed
        )
        embeddings = staged(
            "embeddings", self.train_embeddings, news_ed, twitter_ed, news_tm
        )

        trending_module = TrendingNewsModule(
            embeddings,
            similarity_threshold=self.config.trending_similarity_threshold,
        )
        trending = staged(
            "trending_news", trending_module.extract, nmf.topics, news_events
        )

        correlation_module = CorrelationModule(
            embeddings,
            similarity_threshold=self.config.correlation_similarity_threshold,
            start_window=timedelta(days=self.config.start_window_days),
            start_slack=timedelta(days=self.config.start_slack_days),
        )
        correlation = staged(
            "correlation", correlation_module.correlate, trending, twitter_events
        )

        tweet_records = staged("tweet_records", self.tweet_records, world)
        feature_module = FeatureCreationModule(
            min_event_records=self.config.min_event_records,
            related_word_coverage=self.config.related_word_coverage,
        )
        records = staged(
            "feature_creation",
            feature_module.extract,
            correlation.pairs,
            tweet_records,
        )

        datasets: Dict[str, Dataset] = {}
        if records:
            datasets = staged(
                "dataset_building",
                build_all_datasets,
                records,
                embeddings,
                VARIANT_NAMES,
                self.config.workers or None,
            )

        return PipelineResult(
            topics=nmf.topics,
            nmf=nmf,
            news_events=news_events,
            twitter_events=twitter_events,
            trending=trending,
            correlation=correlation,
            event_tweets=records,
            datasets=datasets,
            embeddings=embeddings,
            timings_seconds=timings,
        )

    def run_with_prediction(
        self,
        world: World,
        targets: Sequence[str] = ("likes", "retweets"),
        variants: Sequence[str] = ("A1", "A2"),
        networks: Sequence[str] = ("MLP 1", "CNN 1"),
    ) -> Dict[str, Dict[str, Dict[str, TrainingOutcome]]]:
        """Pipeline + prediction grids; returns {target: grid}."""
        result = self.run(world)
        if not result.datasets:
            return {}
        predictor = self.build_predictor()
        selected = {
            name: ds for name, ds in result.datasets.items() if name in variants
        }
        grids: Dict[str, Dict[str, Dict[str, TrainingOutcome]]] = {}
        for target in targets:
            with obs.span(f"pipeline.prediction.{target}"):
                grids[target] = predictor.run_grid(
                    selected, target=target, networks=networks
                )
        return grids
