"""Trending News module (§4.5): correlate news topics with news events.

Encodes each NMF topic's keywords (NewsTopic2Vec) and each MABED news
event's main+related terms (NewsEvent2Vec) with the pretrained
embeddings, scores every pair by cosine similarity, keeps each topic's
best-matching event, and declares the pair a *trending news topic* when
the similarity clears the threshold (0.7 in §5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..embeddings import PretrainedEmbeddings, cosine_similarity_matrix, keywords2vec
from ..events import Event
from ..topics import Topic


@dataclass
class TrendingNewsTopic:
    """A <news topic, news event> pair with similarity above threshold."""

    topic: Topic
    event: Event
    similarity: float

    @property
    def start(self):
        """The trending topic inherits its event's start date (S_NE)."""
        return self.event.start

    def describe(self) -> str:
        return (
            f"NT#{self.topic.index} <-> [{self.event.main_word}] "
            f"sim={self.similarity:.2f} start={self.event.start:%Y-%m-%d}"
        )


class TrendingNewsModule:
    """Matches topics to events and filters for developing topics."""

    def __init__(
        self,
        embeddings: PretrainedEmbeddings,
        similarity_threshold: float = 0.7,
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must lie in [0, 1]")
        self.embeddings = embeddings
        self.similarity_threshold = similarity_threshold

    def encode_topics(self, topics: Sequence[Topic]) -> np.ndarray:
        """NewsTopic2Vec: one row per topic."""
        return np.vstack(
            [keywords2vec(t.keywords, self.embeddings) for t in topics]
        )

    def encode_events(self, events: Sequence[Event]) -> np.ndarray:
        """NewsEvent2Vec: one row per event (main + related terms)."""
        return np.vstack(
            [keywords2vec(e.vocabulary, self.embeddings) for e in events]
        )

    def similarity_matrix(
        self, topics: Sequence[Topic], events: Sequence[Event]
    ) -> np.ndarray:
        """Cosine similarities, topics on rows, events on columns."""
        if not topics or not events:
            return np.zeros((len(topics), len(events)))
        return cosine_similarity_matrix(
            self.encode_topics(topics), self.encode_events(events)
        )

    def extract(
        self, topics: Sequence[Topic], events: Sequence[Event]
    ) -> List[TrendingNewsTopic]:
        """The trending news topics: best event per topic, thresholded."""
        sims = self.similarity_matrix(topics, events)
        trending: List[TrendingNewsTopic] = []
        for i, topic in enumerate(topics):
            if sims.shape[1] == 0:
                break
            j = int(np.argmax(sims[i]))
            similarity = float(sims[i, j])
            if similarity >= self.similarity_threshold:
                trending.append(
                    TrendingNewsTopic(
                        topic=topic, event=events[j], similarity=similarity
                    )
                )
        return trending

    def best_match(
        self, topic: Topic, events: Sequence[Event]
    ) -> Optional[TrendingNewsTopic]:
        """Best-matching event for one topic, regardless of threshold."""
        if not events:
            return None
        sims = self.similarity_matrix([topic], events)[0]
        j = int(np.argmax(sims))
        return TrendingNewsTopic(
            topic=topic, event=events[j], similarity=float(sims[j])
        )
