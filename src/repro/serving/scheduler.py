"""Micro-batching dispatcher: many single-tweet requests, one forward.

Requests enqueue onto a bounded deque; a single worker thread collects
up to ``max_batch_size`` of them — waiting at most ``max_wait_ms`` after
the first arrival — and hands the whole batch to a runner callable that
performs one NumPy forward pass.  Per-request deadlines and queue
capacity surface as typed :class:`~repro.serving.errors.ServingError`s,
never as dropped requests.

Queue depth and realised batch sizes stream into ``repro.obs``
histograms (``serving.queue_depth`` / ``serving.batch_size``) so a load
test shows whether micro-batching actually engaged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, List, Optional, Sequence

from .. import obs
from ..tools.annotations import guarded_by
from .errors import DeadlineExceeded, ModelUnavailable, QueueFull, ServingError
from .requests import PredictRequest, PredictResponse

#: runner(requests) -> one response per request, same order.
BatchRunner = Callable[[Sequence[PredictRequest]], List[PredictResponse]]


#: Optional completion observer: ``on_done(response, error)`` — exactly
#: one of the two is non-None.  Used by shadow deployments to record a
#: mirrored request's outcome without anyone blocking on the handle.
DoneCallback = Callable[[Optional[PredictResponse], Optional[BaseException]], None]


class PendingRequest:
    """A submitted request awaiting its batch's completion."""

    __slots__ = (
        "request", "deadline", "enqueued_at", "_done", "response", "error", "on_done",
    )

    def __init__(
        self,
        request: PredictRequest,
        deadline: Optional[float],
        on_done: Optional[DoneCallback] = None,
    ) -> None:
        self.request = request
        self.deadline = deadline
        self.enqueued_at = time.perf_counter()
        self._done = threading.Event()
        self.response: Optional[PredictResponse] = None
        self.error: Optional[BaseException] = None
        self.on_done = on_done

    def resolve(self, response: PredictResponse) -> None:
        """Deliver the response and wake the waiting caller."""
        response.latency_ms = (time.perf_counter() - self.enqueued_at) * 1000.0
        self.response = response
        self._done.set()
        if self.on_done is not None:
            self.on_done(response, None)

    def fail(self, error: BaseException) -> None:
        """Deliver a failure and wake the waiting caller."""
        self.error = error
        self._done.set()
        if self.on_done is not None:
            self.on_done(None, error)

    def wait(self, timeout_s: Optional[float]) -> PredictResponse:
        """Block until resolved; raises the typed error on failure."""
        if not self._done.wait(timeout_s):
            obs.counter("serving.timeouts").inc()
            raise DeadlineExceeded(
                f"no response within {timeout_s:.3f}s (request still queued)"
            )
        if self.error is not None:
            raise self.error
        assert self.response is not None
        return self.response

    def expired(self, now: float) -> bool:
        """True when the request's deadline has already passed."""
        return self.deadline is not None and now >= self.deadline


@guarded_by(
    "_cond",
    "_queue",
    "_closed",
    "batches",
    "batched_rows",
    "submitted",
    "rejected",
    "expired",
)
class BatchScheduler:
    """Queues requests and flushes micro-batches through a runner.

    All mutable state is guarded by ``_cond`` (a condition over an
    RLock, so the stats helpers can nest); the worker thread and any
    number of submitters synchronise on it.
    """

    def __init__(
        self,
        runner: BatchRunner,
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        max_queue: int = 256,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.max_queue = max_queue
        self._queue: "deque[PendingRequest]" = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.batches = 0
        self.batched_rows = 0
        self.submitted = 0
        self.rejected = 0
        self.expired = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._worker.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        request: PredictRequest,
        timeout_s: Optional[float] = None,
        on_done: Optional[DoneCallback] = None,
    ) -> PendingRequest:
        """Enqueue *request*; returns a handle to wait on.

        Raises :class:`QueueFull` when the bounded queue is at capacity
        (backpressure — the caller should shed or retry with backoff),
        :class:`DeadlineExceeded` for an already-dead deadline, and
        :class:`ModelUnavailable` after :meth:`close`.  *on_done* fires
        exactly once when the request resolves or fails, on whichever
        thread resolves it — shadow mirroring records outcomes through
        it without blocking anybody.
        """
        if timeout_s is not None and timeout_s <= 0:
            obs.counter("serving.timeouts").inc()
            raise DeadlineExceeded(
                f"deadline of {timeout_s:.3f}s is already unmeetable at submit"
            )
        deadline = time.perf_counter() + timeout_s if timeout_s is not None else None
        pending = PendingRequest(request, deadline, on_done=on_done)
        with self._cond:
            if self._closed:
                raise ModelUnavailable("scheduler is shut down")
            if len(self._queue) >= self.max_queue:
                self.rejected += 1
                obs.counter("serving.queue_rejections").inc()
                raise QueueFull(
                    f"request queue at capacity ({self.max_queue}); retry later"
                )
            self._queue.append(pending)
            self.submitted += 1
            obs.counter("serving.requests").inc()
            obs.histogram("serving.queue_depth").observe(len(self._queue))
            self._cond.notify()
        return pending

    def predict(
        self, request: PredictRequest, timeout_s: Optional[float] = None
    ) -> PredictResponse:
        """Submit and block for the response (convenience wrapper)."""
        return self.submit(request, timeout_s=timeout_s).wait(timeout_s)

    # -- worker --------------------------------------------------------------

    def _collect(self) -> Optional[List[PendingRequest]]:
        """Wait for work, then gather one micro-batch.

        Requests whose deadline already passed are dropped *here* —
        before they are dispatched into a batch — so an expired request
        never occupies a batch slot and fails with
        :class:`DeadlineExceeded` without ever reaching the runner.
        Returns ``None`` only when closed and fully drained; an empty
        list means every queued request had expired.
        """
        overdue: List[PendingRequest] = []
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return None
            if self.max_wait_s > 0 and not self._closed:
                flush_at = time.perf_counter() + self.max_wait_s
                while len(self._queue) < self.max_batch_size and not self._closed:
                    remaining = flush_at - time.perf_counter()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
            now = time.perf_counter()
            batch: List[PendingRequest] = []
            while self._queue and len(batch) < self.max_batch_size:
                pending = self._queue.popleft()
                if pending.expired(now):
                    overdue.append(pending)
                else:
                    batch.append(pending)
            self.expired += len(overdue)
        # Failing the overdue requests happens outside the lock: fail()
        # wakes waiters and may run an on_done callback, neither of
        # which should ever execute under the scheduler's condition.
        for pending in overdue:
            obs.counter("serving.timeouts").inc()
            pending.fail(
                DeadlineExceeded(
                    "deadline expired while queued (dropped before batch dispatch)"
                )
            )
        return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            if not batch:
                continue
            self._flush(batch)

    def _flush(self, batch: List[PendingRequest]) -> None:
        """Expire overdue requests, run the rest, deliver results."""
        now = time.perf_counter()
        live: List[PendingRequest] = []
        expired_now = 0
        for pending in batch:
            if pending.expired(now):
                expired_now += 1
                obs.counter("serving.timeouts").inc()
                pending.fail(
                    DeadlineExceeded("deadline expired while queued for a batch")
                )
            else:
                live.append(pending)
        with self._cond:
            self.expired += expired_now
            self.batches += 1
            self.batched_rows += len(live)
        obs.counter("serving.batches").inc()
        obs.histogram("serving.batch_size").observe(len(live))
        try:
            responses = self._runner([p.request for p in live])
        except ServingError as exc:
            for pending in live:
                pending.fail(exc)
            return
        except Exception as exc:  # staticcheck: disable=broad-except
            # The worker thread must survive arbitrary runner bugs:
            # every caller gets the failure, the loop keeps serving.
            obs.counter("serving.runner_errors").inc()
            for pending in live:
                pending.fail(ServingError(f"batch runner failed: {exc!r}"))
            return
        if len(responses) != len(live):
            for pending in live:
                pending.fail(
                    ServingError(
                        f"runner returned {len(responses)} responses "
                        f"for {len(live)} requests"
                    )
                )
            return
        for pending, response in zip(live, responses):
            pending.resolve(response)

    # -- lifecycle -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a batch."""
        with self._cond:
            return len(self._queue)

    @property
    def mean_batch_size(self) -> float:
        """Average realised batch size across all flushes so far."""
        with self._cond:
            return self.batched_rows / self.batches if self.batches else 0.0

    def stats(self) -> dict:
        """Scheduler counters for ``/metrics`` (one consistent snapshot)."""
        with self._cond:
            return {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "expired": self.expired,
                "batches": self.batches,
                "batched_rows": self.batched_rows,
                "mean_batch_size": self.mean_batch_size,
                "queue_depth": len(self._queue),
            }

    def close(self) -> None:
        """Stop accepting work, drain the queue, join the worker."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()
