"""Clients for the serving service: in-process and HTTP.

:class:`ServingClient` drives a :class:`~repro.serving.service.ServingService`
(or a :class:`~repro.serving.fleet.FleetService`) directly (no sockets) —
the concurrency tests and the in-process load generator use it.
:class:`HTTPServingClient` speaks the JSON contract of
:mod:`repro.serving.httpd` over ``urllib`` and is what the CI smoke job
exercises end to end.

Transport failures surface as the typed
:class:`~repro.serving.errors.ServingUnavailable` (never a raw
``URLError``), and **idempotent** calls — the GET endpoints — are
retried under a seeded :class:`~repro.resilience.RetryPolicy` so a
health poll rides out a connection reset during server restart.  POSTs
are never retried: a ``/predict`` or ``/swap`` whose reply was lost may
have executed.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from datetime import datetime
from typing import Dict, Optional

from ..resilience import RetryError, RetryPolicy
from .errors import (
    AdmissionRejected,
    ArtifactError,
    BadRequest,
    DeadlineExceeded,
    ModelUnavailable,
    QueueFull,
    ReplicaFailure,
    ServingError,
    ServingUnavailable,
    SwapError,
)
from .requests import PredictRequest, PredictResponse
from .service import ServingService

#: kind -> exception class, for rehydrating HTTP error bodies.
_ERROR_KINDS = {
    cls.__name__: cls
    for cls in (
        ServingError,
        BadRequest,
        QueueFull,
        ModelUnavailable,
        ServingUnavailable,
        AdmissionRejected,
        ReplicaFailure,
        DeadlineExceeded,
        SwapError,
        ArtifactError,
    )
}

#: Default retry for idempotent HTTP calls: three attempts, seeded
#: jitter, only transport-level unavailability is ever retried.
DEFAULT_HTTP_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay_s=0.05,
    max_delay_s=0.5,
    seed=0,
    retryable=(ServingUnavailable,),
)


class ServingClient:
    """In-process client: the test-facing face of a service."""

    def __init__(self, service: ServingService) -> None:
        self.service = service

    def predict(
        self,
        tokens,
        followers: int = 0,
        created_at: Optional[datetime] = None,
        vocabulary=None,
        magnitudes: Optional[Dict[str, float]] = None,
        timeout_s: Optional[float] = None,
        priority: str = "normal",
    ) -> PredictResponse:
        """Score one tweet; blocks until its micro-batch completes."""
        request = PredictRequest.build(
            tokens,
            followers=followers,
            created_at=created_at,
            vocabulary=vocabulary,
            magnitudes=magnitudes,
        )
        return self.service.predict(request, timeout_s=timeout_s, priority=priority)

    def healthz(self) -> dict:
        """Service liveness + active model summary."""
        return self.service.healthz()

    def metrics(self) -> dict:
        """Service metrics snapshot."""
        return self.service.metrics()

    def swap(self, artifact: str, expect_fingerprint: Optional[str] = None) -> dict:
        """Hot-swap to the artifact at *artifact* (a directory path)."""
        return self.service.swap(artifact, expect_fingerprint=expect_fingerprint)


def _raise_from_body(status: int, body: bytes) -> None:
    """Re-raise a typed ServingError from a JSON error body."""
    try:
        payload = json.loads(body.decode("utf-8"))
        kind = payload.get("error", "ServingError")
        message = payload.get("message", f"HTTP {status}")
    except (ValueError, UnicodeDecodeError):
        kind, message = "ServingError", f"HTTP {status}: {body[:200]!r}"
    raise _ERROR_KINDS.get(kind, ServingError)(message)


class HTTPServingClient:
    """Minimal JSON/HTTP client for a :class:`ServingServer`."""

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retry_policy = retry_policy or DEFAULT_HTTP_RETRY

    def _call_once(self, method: str, path: str, payload: Optional[dict]) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            _raise_from_body(exc.code, exc.read())
            raise  # unreachable; keeps type-checkers happy
        except urllib.error.URLError as exc:
            raise ServingUnavailable(f"server unreachable: {exc.reason}") from exc

    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        idempotent: bool = False,
    ) -> dict:
        """One HTTP exchange; *idempotent* calls retry on unavailability.

        Only transport-level failures (:class:`ServingUnavailable`) are
        ever retried — an HTTP error body is a server answer and
        re-raises as its typed kind immediately.
        """
        if not idempotent:
            return self._call_once(method, path, payload)
        try:
            return self.retry_policy.call(
                lambda: self._call_once(method, path, payload),
                site=f"serving.client.{method}{path.replace('/', '.')}",
            )
        except RetryError as exc:
            raise exc.last

    def predict(
        self,
        tokens,
        followers: int = 0,
        created_at: Optional[str] = None,
        vocabulary=None,
        magnitudes: Optional[Dict[str, float]] = None,
        priority: Optional[str] = None,
    ) -> dict:
        """POST /predict; returns the JSON response body."""
        payload: dict = {"tokens": list(tokens), "followers": followers}
        if created_at is not None:
            payload["created_at"] = created_at
        if vocabulary is not None:
            payload["vocabulary"] = list(vocabulary)
        if magnitudes is not None:
            payload["magnitudes"] = dict(magnitudes)
        if priority is not None:
            payload["priority"] = priority
        return self._call("POST", "/predict", payload)

    def healthz(self) -> dict:
        """GET /healthz (idempotent: retried on connection failures)."""
        return self._call("GET", "/healthz", idempotent=True)

    def metrics(self) -> dict:
        """GET /metrics (idempotent: retried on connection failures)."""
        return self._call("GET", "/metrics", idempotent=True)

    def swap(self, artifact: str, expect_fingerprint: Optional[str] = None) -> dict:
        """POST /swap with the artifact directory path."""
        payload: dict = {"artifact": artifact}
        if expect_fingerprint is not None:
            payload["expect_fingerprint"] = expect_fingerprint
        return self._call("POST", "/swap", payload)

    def canary_start(
        self,
        artifact: str,
        mode: str = "canary",
        fraction: Optional[float] = None,
        window: Optional[int] = None,
        expect_fingerprint: Optional[str] = None,
    ) -> dict:
        """POST /canary — stage a candidate on a fleet server."""
        payload: dict = {"artifact": artifact, "mode": mode}
        if fraction is not None:
            payload["fraction"] = fraction
        if window is not None:
            payload["window"] = window
        if expect_fingerprint is not None:
            payload["expect_fingerprint"] = expect_fingerprint
        return self._call("POST", "/canary", payload)

    def canary_status(self) -> dict:
        """GET /canary (idempotent: retried on connection failures)."""
        return self._call("GET", "/canary", idempotent=True)

    def canary_abort(self) -> dict:
        """POST /canary/abort — roll back the active deployment."""
        return self._call("POST", "/canary/abort", {})
