"""Clients for the serving service: in-process and HTTP.

:class:`ServingClient` drives a :class:`~repro.serving.service.ServingService`
directly (no sockets) — the concurrency tests and the in-process load
generator use it.  :class:`HTTPServingClient` speaks the JSON contract
of :mod:`repro.serving.httpd` over ``urllib`` and is what the CI smoke
job exercises end to end.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from datetime import datetime
from typing import Dict, Optional

from .errors import (
    ArtifactError,
    BadRequest,
    DeadlineExceeded,
    ModelUnavailable,
    QueueFull,
    ServingError,
    SwapError,
)
from .requests import PredictRequest, PredictResponse
from .service import ServingService

#: kind -> exception class, for rehydrating HTTP error bodies.
_ERROR_KINDS = {
    cls.__name__: cls
    for cls in (
        ServingError,
        BadRequest,
        QueueFull,
        ModelUnavailable,
        DeadlineExceeded,
        SwapError,
        ArtifactError,
    )
}


class ServingClient:
    """In-process client: the test-facing face of a service."""

    def __init__(self, service: ServingService) -> None:
        self.service = service

    def predict(
        self,
        tokens,
        followers: int = 0,
        created_at: Optional[datetime] = None,
        vocabulary=None,
        magnitudes: Optional[Dict[str, float]] = None,
        timeout_s: Optional[float] = None,
    ) -> PredictResponse:
        """Score one tweet; blocks until its micro-batch completes."""
        request = PredictRequest.build(
            tokens,
            followers=followers,
            created_at=created_at,
            vocabulary=vocabulary,
            magnitudes=magnitudes,
        )
        return self.service.predict(request, timeout_s=timeout_s)

    def healthz(self) -> dict:
        """Service liveness + active model summary."""
        return self.service.healthz()

    def metrics(self) -> dict:
        """Service metrics snapshot."""
        return self.service.metrics()

    def swap(self, artifact: str, expect_fingerprint: Optional[str] = None) -> dict:
        """Hot-swap to the artifact at *artifact* (a directory path)."""
        return self.service.swap(artifact, expect_fingerprint=expect_fingerprint)


def _raise_from_body(status: int, body: bytes) -> None:
    """Re-raise a typed ServingError from a JSON error body."""
    try:
        payload = json.loads(body.decode("utf-8"))
        kind = payload.get("error", "ServingError")
        message = payload.get("message", f"HTTP {status}")
    except (ValueError, UnicodeDecodeError):
        kind, message = "ServingError", f"HTTP {status}: {body[:200]!r}"
    raise _ERROR_KINDS.get(kind, ServingError)(message)


class HTTPServingClient:
    """Minimal JSON/HTTP client for a :class:`ServingServer`."""

    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _call(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            _raise_from_body(exc.code, exc.read())
            raise  # unreachable; keeps type-checkers happy
        except urllib.error.URLError as exc:
            raise ModelUnavailable(f"server unreachable: {exc.reason}") from exc

    def predict(
        self,
        tokens,
        followers: int = 0,
        created_at: Optional[str] = None,
        vocabulary=None,
        magnitudes: Optional[Dict[str, float]] = None,
    ) -> dict:
        """POST /predict; returns the JSON response body."""
        payload: dict = {"tokens": list(tokens), "followers": followers}
        if created_at is not None:
            payload["created_at"] = created_at
        if vocabulary is not None:
            payload["vocabulary"] = list(vocabulary)
        if magnitudes is not None:
            payload["magnitudes"] = dict(magnitudes)
        return self._call("POST", "/predict", payload)

    def healthz(self) -> dict:
        """GET /healthz."""
        return self._call("GET", "/healthz")

    def metrics(self) -> dict:
        """GET /metrics."""
        return self._call("GET", "/metrics")

    def swap(self, artifact: str, expect_fingerprint: Optional[str] = None) -> dict:
        """POST /swap with the artifact directory path."""
        payload: dict = {"artifact": artifact}
        if expect_fingerprint is not None:
            payload["expect_fingerprint"] = expect_fingerprint
        return self._call("POST", "/swap", payload)
