"""Tuning knobs of the serving layer (constructor args + ``REPRO_SERVE_*``).

Precedence per knob: explicit constructor/CLI value > environment
variable > dataclass default.  ``docs/serving.md`` documents every env
var.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from ..resilience import RetryPolicy

#: Environment-variable prefix for every serving knob.
ENV_PREFIX = "REPRO_SERVE_"


def _env_value(name: str, cast, default):
    """``REPRO_SERVE_<name>`` cast through *cast*, else *default*."""
    raw = os.environ.get(ENV_PREFIX + name)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(
            f"invalid {ENV_PREFIX + name}={raw!r}: expected {cast.__name__}"
        ) from None


@dataclass(frozen=True)
class ServingConfig:
    """All tunables of one serving service instance.

    ``max_batch_size`` doubles as the fixed forward-pass row count
    (``Sequential.predict(pad_to=...)``): every batch is padded to this
    many rows so responses are bitwise-independent of how requests got
    grouped into batches.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 5.0
    max_queue: int = 256
    cache_size: int = 4096
    timeout_s: float = 5.0
    host: str = "127.0.0.1"
    port: int = 8321
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")

    @classmethod
    def from_env(cls, **overrides) -> "ServingConfig":
        """Config from ``REPRO_SERVE_*`` env vars, then *overrides*.

        Override values of ``None`` mean "not given" and fall through
        to the environment/default, so CLI flags plug in directly.
        """
        config = cls(
            max_batch_size=_env_value("MAX_BATCH", int, cls.max_batch_size),
            max_wait_ms=_env_value("MAX_WAIT_MS", float, cls.max_wait_ms),
            max_queue=_env_value("QUEUE", int, cls.max_queue),
            cache_size=_env_value("CACHE", int, cls.cache_size),
            timeout_s=_env_value("TIMEOUT_S", float, cls.timeout_s),
            host=_env_value("HOST", str, cls.host),
            port=_env_value("PORT", int, cls.port),
        )
        supplied = {k: v for k, v in overrides.items() if v is not None}
        return replace(config, **supplied) if supplied else config

    def retry_policy(self, timeout_s: Optional[float] = None) -> RetryPolicy:
        """The :class:`RetryPolicy` guarding swap/load operations."""
        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay_s=self.retry_base_delay_s,
            timeout_s=timeout_s,
            seed=self.seed,
        )


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of a replica fleet (:class:`repro.serving.fleet.FleetService`).

    Layered on top of :class:`ServingConfig` (which still governs each
    replica's scheduler, cache, and timeouts); the fleet knobs cover
    routing, health, admission control, and canary/shadow deployments.
    """

    replicas: int = 2
    router: str = "least_loaded"
    eject_after: int = 3
    probe_after: int = 8
    rate_limit_rps: float = 0.0
    rate_burst: float = 64.0
    shed_normal_fraction: float = 0.85
    shed_low_fraction: float = 0.5
    deadline_margin_ms: float = 5.0
    canary_seed: int = 0
    canary_fraction: float = 0.1
    canary_window: int = 50
    canary_max_error_rate: float = 0.02
    canary_max_latency_ratio: float = 2.0
    canary_max_prediction_delta: float = 0.02

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.eject_after < 1:
            raise ValueError("eject_after must be >= 1")
        if self.probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        if self.rate_limit_rps < 0:
            raise ValueError("rate_limit_rps must be >= 0")
        if self.rate_burst <= 0:
            raise ValueError("rate_burst must be positive")
        for name in ("shed_normal_fraction", "shed_low_fraction"):
            fraction = getattr(self, name)
            if not 0.0 < fraction <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {fraction!r}")
        if self.deadline_margin_ms < 0:
            raise ValueError("deadline_margin_ms must be >= 0")
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must lie in (0, 1]")
        if self.canary_window < 1:
            raise ValueError("canary_window must be >= 1")
        if self.canary_max_error_rate < 0:
            raise ValueError("canary_max_error_rate must be >= 0")
        if self.canary_max_latency_ratio <= 0:
            raise ValueError("canary_max_latency_ratio must be positive")
        if self.canary_max_prediction_delta < 0:
            raise ValueError("canary_max_prediction_delta must be >= 0")

    @classmethod
    def from_env(cls, **overrides) -> "FleetConfig":
        """Config from ``REPRO_SERVE_*`` env vars, then *overrides*.

        Same precedence rules as :meth:`ServingConfig.from_env`:
        explicit non-None overrides beat the environment, which beats
        the dataclass defaults.
        """
        config = cls(
            replicas=_env_value("REPLICAS", int, cls.replicas),
            router=_env_value("ROUTER", str, cls.router),
            eject_after=_env_value("EJECT_AFTER", int, cls.eject_after),
            probe_after=_env_value("PROBE_AFTER", int, cls.probe_after),
            rate_limit_rps=_env_value("RATE_RPS", float, cls.rate_limit_rps),
            rate_burst=_env_value("RATE_BURST", float, cls.rate_burst),
            shed_normal_fraction=_env_value(
                "SHED_NORMAL", float, cls.shed_normal_fraction
            ),
            shed_low_fraction=_env_value("SHED_LOW", float, cls.shed_low_fraction),
            deadline_margin_ms=_env_value(
                "DEADLINE_MARGIN_MS", float, cls.deadline_margin_ms
            ),
            canary_seed=_env_value("CANARY_SEED", int, cls.canary_seed),
            canary_fraction=_env_value("CANARY_FRACTION", float, cls.canary_fraction),
            canary_window=_env_value("CANARY_WINDOW", int, cls.canary_window),
            canary_max_error_rate=_env_value(
                "CANARY_MAX_ERROR_RATE", float, cls.canary_max_error_rate
            ),
            canary_max_latency_ratio=_env_value(
                "CANARY_MAX_LATENCY_RATIO", float, cls.canary_max_latency_ratio
            ),
            canary_max_prediction_delta=_env_value(
                "CANARY_MAX_PREDICTION_DELTA", float, cls.canary_max_prediction_delta
            ),
        )
        supplied = {k: v for k, v in overrides.items() if v is not None}
        return replace(config, **supplied) if supplied else config

    def admission_config(self):
        """The :class:`~repro.serving.admission.AdmissionConfig` this implies."""
        from .admission import AdmissionConfig

        return AdmissionConfig(
            rate_limit_rps=self.rate_limit_rps,
            rate_burst=self.rate_burst,
            queue_thresholds={
                "high": 1.0,
                "normal": self.shed_normal_fraction,
                "low": self.shed_low_fraction,
            },
            deadline_margin_s=self.deadline_margin_ms / 1000.0,
        )
