"""Tuning knobs of the serving layer (constructor args + ``REPRO_SERVE_*``).

Precedence per knob: explicit constructor/CLI value > environment
variable > dataclass default.  ``docs/serving.md`` documents every env
var.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from ..resilience import RetryPolicy

#: Environment-variable prefix for every serving knob.
ENV_PREFIX = "REPRO_SERVE_"


def _env_value(name: str, cast, default):
    """``REPRO_SERVE_<name>`` cast through *cast*, else *default*."""
    raw = os.environ.get(ENV_PREFIX + name)
    if raw is None or raw == "":
        return default
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(
            f"invalid {ENV_PREFIX + name}={raw!r}: expected {cast.__name__}"
        ) from None


@dataclass(frozen=True)
class ServingConfig:
    """All tunables of one serving service instance.

    ``max_batch_size`` doubles as the fixed forward-pass row count
    (``Sequential.predict(pad_to=...)``): every batch is padded to this
    many rows so responses are bitwise-independent of how requests got
    grouped into batches.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 5.0
    max_queue: int = 256
    cache_size: int = 4096
    timeout_s: float = 5.0
    host: str = "127.0.0.1"
    port: int = 8321
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")

    @classmethod
    def from_env(cls, **overrides) -> "ServingConfig":
        """Config from ``REPRO_SERVE_*`` env vars, then *overrides*.

        Override values of ``None`` mean "not given" and fall through
        to the environment/default, so CLI flags plug in directly.
        """
        config = cls(
            max_batch_size=_env_value("MAX_BATCH", int, cls.max_batch_size),
            max_wait_ms=_env_value("MAX_WAIT_MS", float, cls.max_wait_ms),
            max_queue=_env_value("QUEUE", int, cls.max_queue),
            cache_size=_env_value("CACHE", int, cls.cache_size),
            timeout_s=_env_value("TIMEOUT_S", float, cls.timeout_s),
            host=_env_value("HOST", str, cls.host),
            port=_env_value("PORT", int, cls.port),
        )
        supplied = {k: v for k, v in overrides.items() if v is not None}
        return replace(config, **supplied) if supplied else config

    def retry_policy(self, timeout_s: Optional[float] = None) -> RetryPolicy:
        """The :class:`RetryPolicy` guarding swap/load operations."""
        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay_s=self.retry_base_delay_s,
            timeout_s=timeout_s,
            seed=self.seed,
        )
