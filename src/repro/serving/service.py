"""The serving service: registry + feature cache + batch scheduler.

One :class:`ServingService` owns the whole online path:

    request -> BatchScheduler queue -> [flush] -> resolve active version
            -> encode rows (FeatureCache) -> one padded forward pass
            -> per-request PredictResponse

The active :class:`~repro.serving.registry.ModelVersion` is resolved
**once per flush**, so a hot-swap lands between batches: every request
in a batch is answered by exactly one version, and in-flight batches
finish on the version they started with.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..datasets.builders import document_vector
from ..datasets.encoding import encode_count
from ..tools.annotations import guarded_by
from .cache import FeatureCache
from .config import ServingConfig
from .errors import BadRequest, ServingError
from .registry import ModelRegistry, ModelVersion
from .requests import PredictRequest, PredictResponse
from .scheduler import BatchScheduler


def _percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile of *values* (0.0 for an empty series)."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def encode_request(
    cache: FeatureCache, request: PredictRequest, version: ModelVersion
) -> np.ndarray:
    """One feature row, bitwise-equal to the offline dataset row.

    Document vectors go through the per-version LRU cache; the
    metadata/followers tail is tiny and recomputed [cached by
    ``(followers, weekday)``] exactly like
    :func:`repro.datasets.encode_record` builds it.  Shared by the
    single-worker :class:`ServingService` and every fleet replica, so
    both paths stay feature-identical by construction.
    """
    record = request.to_record()
    key = cache.document_key(
        version.version_id,
        version.family,
        request.tokens,
        request.vocabulary,
        request.magnitudes,
    )
    parts = [
        cache.document_vector(
            key,
            lambda: document_vector(record, version.embeddings, version.family),
        )
    ]
    if version.with_metadata:
        parts.append(cache.metadata_vector(record.followers, record.created_at))
    if version.with_followers:
        parts.append(np.array([float(encode_count(record.followers))]))
    row = np.concatenate(parts)
    if row.shape[0] != version.input_dim:
        raise BadRequest(
            f"request encodes to {row.shape[0]} features but the model "
            f"expects {version.input_dim} (wrong embedding dimension?)"
        )
    return row


def score_requests(
    cache: FeatureCache,
    version: ModelVersion,
    requests: Sequence[PredictRequest],
    pad_to: int,
    model=None,
) -> List[PredictResponse]:
    """Encode + score one micro-batch with a single padded forward pass.

    *model* overrides the network to run (a replica's zero-copy view of
    *version*'s weights); the default is the version's own model.  The
    fixed ``pad_to`` row count keeps outputs bitwise-independent of how
    requests were grouped into batches.
    """
    rows = [encode_request(cache, request, version) for request in requests]
    X = np.vstack(rows) if rows else np.zeros((0, version.input_dim))
    network = model if model is not None else version.model
    probabilities = network.predict(X, batch_size=pad_to, pad_to=pad_to)
    labels = (
        np.argmax(probabilities, axis=1)
        if len(probabilities)
        else np.zeros(0, dtype=int)
    )
    return [
        PredictResponse(
            probabilities=probabilities[i].tolist(),
            label=int(labels[i]),
            model_version=version.version_id,
            fingerprint=version.fingerprint,
            batch_rows=len(requests),
        )
        for i in range(len(requests))
    ]


@guarded_by("_stats_lock", "_responses", "_errors", "_swaps", "_latencies")
class ServingService:
    """Online audience-interest prediction over a model registry."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServingConfig()
        self.cache = FeatureCache(self.config.cache_size)
        self.scheduler = BatchScheduler(
            self._run_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
        )
        self._stats_lock = threading.Lock()
        self._responses = 0
        self._errors = 0
        self._swaps = 0
        self._latencies: "deque[float]" = deque(maxlen=4096)

    # -- the batched hot path ------------------------------------------------

    def _run_batch(
        self, requests: Sequence[PredictRequest]
    ) -> List[PredictResponse]:
        """Encode + score one micro-batch with a single forward pass."""
        version = self.registry.active()  # resolved once per flush
        with obs.span("serving.flush") as flush_span:
            responses = score_requests(
                self.cache, version, requests, pad_to=self.config.max_batch_size
            )
            flush_span.annotate(
                rows=len(requests), model_version=version.version_id
            )
        return responses

    # -- public API ----------------------------------------------------------

    def predict(
        self,
        request: PredictRequest,
        timeout_s: Optional[float] = None,
        priority: str = "normal",
    ) -> PredictResponse:
        """Score one request, blocking until its batch completes.

        *priority* is accepted for interface parity with
        :class:`~repro.serving.fleet.FleetService`; the single-worker
        service has no admission classes, so it is ignored.
        """
        timeout = timeout_s if timeout_s is not None else self.config.timeout_s
        try:
            response = self.scheduler.predict(request, timeout_s=timeout)
        except ServingError:
            with self._stats_lock:
                self._errors += 1
            obs.counter("serving.errors").inc()
            raise
        with self._stats_lock:
            self._responses += 1
            self._latencies.append(response.latency_ms)
        obs.counter("serving.responses").inc()
        obs.histogram("serving.latency_ms").observe(response.latency_ms)
        return response

    def swap(self, source, expect_fingerprint: Optional[str] = None) -> dict:
        """Hot-swap the registry to a new artifact; returns its summary."""
        version = self.registry.swap(source, expect_fingerprint=expect_fingerprint)
        with self._stats_lock:
            self._swaps += 1
        return version.describe()

    def healthz(self) -> dict:
        """Liveness + active-model summary for ``/healthz``."""
        active = self.registry.active()
        return {"status": "ok", "model": active.describe()}

    def metrics(self) -> Dict[str, object]:
        """Counters, cache stats, and latency percentiles for ``/metrics``."""
        with self._stats_lock:
            latencies = list(self._latencies)
            responses = self._responses
            errors = self._errors
            swaps = self._swaps
        return {
            "responses": responses,
            "errors": errors,
            "swaps": swaps,
            "scheduler": self.scheduler.stats(),
            "cache": self.cache.stats(),
            "cache_hit_rate": self.cache.hit_rate,
            "latency_ms": {
                "p50": _percentile(latencies, 50),
                "p95": _percentile(latencies, 95),
                "p99": _percentile(latencies, 99),
            },
        }

    def close(self) -> None:
        """Drain the scheduler and stop the worker thread."""
        self.scheduler.close()

    def __enter__(self) -> "ServingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
