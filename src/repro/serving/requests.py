"""Request/response dataclasses shared by every serving front-end.

A :class:`PredictRequest` is the online analogue of one offline
:class:`~repro.datasets.EventTweet` row: the scheduler encodes it with
the *same* :func:`repro.datasets.encode_record` path the dataset
builders use, which is what makes served probabilities bitwise-equal to
offline ``Sequential.predict`` outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional, Tuple

from ..datasets import EventTweet
from .errors import BadRequest

#: created_at used when a request does not carry one (a Monday, so the
#: day-of-week feature is exactly 0.0).  Fixed — never "now" — to keep
#: replayed request streams deterministic.
DEFAULT_CREATED_AT = datetime(2021, 1, 4)


@dataclass(frozen=True)
class PredictRequest:
    """One tweet to score for audience interest."""

    tokens: Tuple[str, ...]
    followers: int = 0
    created_at: datetime = DEFAULT_CREATED_AT
    vocabulary: Optional[Tuple[str, ...]] = None
    magnitudes: Optional[Tuple[Tuple[str, float], ...]] = None

    @classmethod
    def build(
        cls,
        tokens,
        followers: int = 0,
        created_at: Optional[datetime] = None,
        vocabulary=None,
        magnitudes: Optional[Dict[str, float]] = None,
    ) -> "PredictRequest":
        """Validate and normalise loose inputs into a hashable request."""
        if tokens is None or isinstance(tokens, (str, bytes)):
            raise BadRequest("tokens must be a sequence of strings")
        token_tuple = tuple(str(t) for t in tokens)
        try:
            followers = int(followers)
        except (TypeError, ValueError):
            raise BadRequest(f"followers must be an integer, got {followers!r}") from None
        if followers < 0:
            raise BadRequest("followers cannot be negative")
        if isinstance(created_at, str):
            try:
                created_at = datetime.fromisoformat(created_at)
            except ValueError:
                raise BadRequest(
                    f"created_at must be ISO-8601, got {created_at!r}"
                ) from None
        return cls(
            tokens=token_tuple,
            followers=followers,
            created_at=created_at if created_at is not None else DEFAULT_CREATED_AT,
            vocabulary=None if vocabulary is None
            else tuple(sorted({str(w) for w in vocabulary})),
            magnitudes=None if magnitudes is None
            else tuple(sorted((str(k), float(v)) for k, v in dict(magnitudes).items())),
        )

    def to_record(self) -> EventTweet:
        """The offline :class:`EventTweet` this request encodes as.

        The vocabulary defaults to the request's own tokens (every term
        participates), mirroring how an event's vocabulary always
        contains the terms it was detected from.
        """
        vocabulary = set(self.vocabulary if self.vocabulary is not None else self.tokens)
        return EventTweet(
            tokens=list(self.tokens),
            event_vocabulary=vocabulary,
            magnitudes=dict(self.magnitudes or ()),
            author="<online>",
            followers=self.followers,
            likes=0,
            retweets=0,
            created_at=self.created_at,
        )


@dataclass
class PredictResponse:
    """The scored result for one :class:`PredictRequest`."""

    probabilities: List[float]
    label: int
    model_version: int
    fingerprint: str
    batch_rows: int
    cached: bool = False
    latency_ms: float = 0.0

    def to_json(self) -> dict:
        """JSON-able body for the HTTP front-end."""
        return {
            "probabilities": list(self.probabilities),
            "label": self.label,
            "model_version": self.model_version,
            "fingerprint": self.fingerprint,
            "batch_rows": self.batch_rows,
            "cached": self.cached,
            "latency_ms": self.latency_ms,
        }
