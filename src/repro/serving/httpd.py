"""stdlib ``http.server`` JSON front-end for the serving service.

Endpoints (see ``docs/serving.md`` for the full contract):

    POST /predict       {"tokens": [...], "followers": 0, "priority": ...}
    GET  /healthz       liveness + active model summary
    GET  /metrics       counters, cache stats, latency percentiles
    POST /swap          {"artifact": "<dir>"} -> hot-swap the model
    POST /canary        {"artifact": "<dir>", "mode": "canary"|"shadow", ...}
    GET  /canary        canary/shadow deployment status
    POST /canary/abort  roll back the active deployment

The ``/canary`` endpoints need a fleet service
(:class:`~repro.serving.fleet.FleetService`, ``--replicas > 1`` or
``--fleet`` on the CLI); on a single-worker service they answer 400.

Failures map to the :class:`~repro.serving.errors.ServingError`
hierarchy's HTTP statuses with ``{"error": kind, "message": ...}``
bodies.  The server is a ``ThreadingHTTPServer``: each connection gets
a thread, and the micro-batching scheduler coalesces their requests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .errors import BadRequest, ServingError
from .requests import PredictRequest
from .service import ServingService

_MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is plenty for one tweet


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning server's service."""

    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ServingService:
        """The service owned by the :class:`ServingServer`."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (obs holds the metrics)."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > _MAX_BODY_BYTES:
            raise BadRequest(f"request body must be 1..{_MAX_BODY_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServingError as exc:
            self._send_json(exc.status, {"error": exc.kind, "message": str(exc)})
        except Exception as exc:  # staticcheck: disable=broad-except
            # A handler bug must answer the socket, not kill the thread.
            self._send_json(
                500, {"error": "ServingError", "message": f"internal error: {exc!r}"}
            )
        else:
            self._send_json(status, payload)

    def _fleet_service(self):
        """The service, if it supports canary deployments (else 400)."""
        service = self.service
        if not hasattr(service, "canary_start"):
            raise BadRequest(
                "canary deployments need a fleet service; restart with "
                "--replicas > 1 (or --fleet)"
            )
        return service

    def do_GET(self) -> None:
        """GET /healthz, /metrics, and /canary."""

        def handler() -> Tuple[int, dict]:
            if self.path == "/healthz":
                return 200, self.service.healthz()
            if self.path == "/metrics":
                return 200, self.service.metrics()
            if self.path == "/canary":
                return 200, self._fleet_service().canary_status()
            raise BadRequest(f"unknown path {self.path!r}")

        self._dispatch(handler)

    def do_POST(self) -> None:
        """POST /predict and /swap."""

        def handler() -> Tuple[int, dict]:
            if self.path == "/predict":
                payload = self._read_json()
                if "tokens" not in payload:
                    raise BadRequest("predict payload must carry 'tokens'")
                request = PredictRequest.build(
                    payload["tokens"],
                    followers=payload.get("followers", 0),
                    created_at=payload.get("created_at"),
                    vocabulary=payload.get("vocabulary"),
                    magnitudes=payload.get("magnitudes"),
                )
                priority = payload.get("priority", "normal")
                if not isinstance(priority, str):
                    raise BadRequest("priority must be a string")
                return 200, self.service.predict(request, priority=priority).to_json()
            if self.path == "/swap":
                payload = self._read_json()
                artifact = payload.get("artifact")
                if not isinstance(artifact, str) or not artifact:
                    raise BadRequest("swap payload must carry an 'artifact' path")
                return 200, self.service.swap(
                    artifact,
                    expect_fingerprint=payload.get("expect_fingerprint"),
                )
            if self.path == "/canary":
                payload = self._read_json()
                artifact = payload.get("artifact")
                if not isinstance(artifact, str) or not artifact:
                    raise BadRequest("canary payload must carry an 'artifact' path")
                return 200, self._fleet_service().canary_start(
                    artifact,
                    mode=payload.get("mode", "canary"),
                    fraction=payload.get("fraction"),
                    window=payload.get("window"),
                    expect_fingerprint=payload.get("expect_fingerprint"),
                )
            if self.path == "/canary/abort":
                # Drain any (optional) body so the keep-alive stream
                # stays aligned for the next request.
                length = int(self.headers.get("Content-Length") or 0)
                if 0 < length <= _MAX_BODY_BYTES:
                    self.rfile.read(length)
                return 200, self._fleet_service().canary_abort()
            raise BadRequest(f"unknown path {self.path!r}")

        self._dispatch(handler)


class ServingServer:
    """Owns a ThreadingHTTPServer bound to the service."""

    def __init__(
        self,
        service: ServingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServingServer":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serving-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Shut the listener down and drain the service."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.close()
