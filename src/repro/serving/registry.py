"""Model registry: versioned, hot-swappable serving models.

A :class:`ModelVersion` is one immutable, ready-to-serve unit — built
network, frozen embeddings, variant spec — identified by a monotonically
increasing integer.  :class:`ModelRegistry` owns the *active* pointer;
:meth:`ModelRegistry.swap` fully loads and validates a candidate before
an atomic pointer flip, so in-flight batches keep the version object
they resolved and no request ever observes a half-loaded model.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Union

from .. import obs
from ..resilience import RetryPolicy, faults
from ..tools.annotations import guarded_by
from .artifacts import ServingArtifact, load_artifact
from .errors import ArtifactError, ModelUnavailable, SwapError


class ModelVersion:
    """One published model version (immutable once constructed)."""

    def __init__(self, version_id: int, artifact: ServingArtifact) -> None:
        from ..datasets.builders import variant_spec

        self.version_id = version_id
        self.artifact = artifact
        self.variant = artifact.variant
        self.network = artifact.network
        self.input_dim = artifact.input_dim
        self.n_classes = artifact.n_classes
        self.fingerprint = artifact.fingerprint
        self.family, self.with_metadata, self.with_followers = variant_spec(
            artifact.variant
        )
        self.model = artifact.build_model()
        self.embeddings = artifact.build_embeddings()

    def predict(self, X, pad_to: Optional[int] = None):
        """Forward pass through this version's network.

        *pad_to* fixes the BLAS row count (see ``Sequential.predict``)
        so online micro-batches reproduce offline outputs bitwise.
        """
        return self.model.predict(X, batch_size=pad_to or 1024, pad_to=pad_to)

    def replica_model(self):
        """A per-replica forward-pass clone sharing this version's weights.

        The fused inference kernels reuse per-layer scratch buffers, so
        one ``Sequential`` instance must never run forward passes from
        two threads at once.  Each fleet replica therefore gets its own
        layer stack (own buffers) whose parameter arrays are **aliased**
        to this version's arrays — zero-copy, and marked read-only so a
        stray in-place write on any replica fails loudly instead of
        corrupting every replica at once.  Outputs are bitwise-identical
        to :meth:`predict` because the maths reads the same bits.
        """
        from ..nn import build_paper_network

        clone = build_paper_network(
            self.network, input_dim=self.input_dim, n_classes=self.n_classes
        )
        clone.build((self.input_dim,))
        shared = [
            param
            for layer in self.model.layers
            for _name, param, _grad in layer.parameters()
        ]
        slots = [
            (layer, name)
            for layer in clone.layers
            for name, _param, _grad in layer.parameters()
        ]
        assert len(shared) == len(slots), "replica architecture drifted from source"
        for (layer, name), param in zip(slots, shared):
            param.setflags(write=False)
            setattr(layer, name, param)
        return clone

    def describe(self) -> dict:
        """JSON-able summary for ``/healthz`` and swap results."""
        return {
            "version": self.version_id,
            "network": self.network,
            "variant": self.variant,
            "input_dim": self.input_dim,
            "n_classes": self.n_classes,
            "fingerprint": self.fingerprint,
            "vocabulary_size": len(self.embeddings),
            "metadata": dict(self.artifact.metadata),
        }


ArtifactSource = Union[str, ServingArtifact]


@guarded_by("_lock", "_active", "_history", "_next_id")
class ModelRegistry:
    """Loads artifacts and atomically publishes model versions."""

    def __init__(self, retry_policy: Optional[RetryPolicy] = None) -> None:
        self._lock = threading.RLock()
        self._active: Optional[ModelVersion] = None
        self._history: List[ModelVersion] = []
        self._next_id = 1
        self.retry_policy = retry_policy

    def _load(
        self, source: ArtifactSource, site: str = "serving.registry.load"
    ) -> ServingArtifact:
        """Resolve *source* into a validated artifact (with retries).

        *site* names the fault-injection/retry site so chaos plans can
        target initial loads and hot-swaps independently.
        """

        def attempt() -> ServingArtifact:
            faults.inject(site)
            if isinstance(source, ServingArtifact):
                return source
            return load_artifact(source)

        if self.retry_policy is None:
            return attempt()
        return self.retry_policy.call(attempt, site=site)

    def _check_fingerprint(
        self, artifact: ServingArtifact, expect_fingerprint: Optional[str]
    ) -> None:
        if (
            expect_fingerprint is not None
            and artifact.fingerprint != expect_fingerprint
        ):
            raise ArtifactError(
                f"fingerprint mismatch: artifact carries "
                f"{artifact.fingerprint[:12]}..., expected "
                f"{expect_fingerprint[:12]}... — the artifact was trained "
                f"under a different pipeline configuration"
            )

    def load(
        self,
        source: ArtifactSource,
        expect_fingerprint: Optional[str] = None,
    ) -> ModelVersion:
        """Load *source* and publish it as the active version."""
        artifact = self._load(source)
        self._check_fingerprint(artifact, expect_fingerprint)
        with self._lock:
            version = ModelVersion(self._next_id, artifact)
            self._next_id += 1
            self._active = version
            self._history.append(version)
        obs.counter("serving.versions_published").inc()
        return version

    def _validated_candidate(
        self,
        source: ArtifactSource,
        expect_fingerprint: Optional[str],
        site: str,
    ) -> ServingArtifact:
        """Load + validate a candidate artifact against the active setup."""
        active = self.active()
        try:
            artifact = self._load(source, site=site)
            self._check_fingerprint(artifact, expect_fingerprint)
        except ArtifactError as exc:
            obs.counter("serving.swap_failures").inc()
            raise SwapError(f"swap rejected: {exc}") from exc
        for attr in ("variant", "network", "input_dim", "n_classes"):
            expected = getattr(active, attr)
            actual = getattr(artifact, attr)
            if expected != actual:
                obs.counter("serving.swap_failures").inc()
                raise SwapError(
                    f"swap rejected: candidate {attr} {actual!r} does not "
                    f"match the serving setup {expected!r}"
                )
        return artifact

    def swap(
        self,
        source: ArtifactSource,
        expect_fingerprint: Optional[str] = None,
    ) -> ModelVersion:
        """Hot-swap to a new version without dropping in-flight work.

        The candidate is loaded, built, and compatibility-checked
        entirely off to the side; only then does the active pointer
        flip (a single reference assignment under the lock).  Batches
        that already resolved the old version keep serving from it —
        the old :class:`ModelVersion` object stays alive in history.
        """
        artifact = self._validated_candidate(
            source, expect_fingerprint, site="serving.swap"
        )
        with self._lock:
            version = ModelVersion(self._next_id, artifact)
            self._next_id += 1
            self._active = version
            self._history.append(version)
        obs.counter("serving.swaps").inc()
        obs.counter("serving.versions_published").inc()
        return version

    def stage(
        self,
        source: ArtifactSource,
        expect_fingerprint: Optional[str] = None,
    ) -> ModelVersion:
        """Load + validate a candidate **without** publishing it.

        The returned :class:`ModelVersion` is fully built and swap
        compatible with the active setup, but the active pointer is
        untouched: canary/shadow deployments serve it to a slice of
        traffic first and only :meth:`promote` it if the metrics hold.
        """
        artifact = self._validated_candidate(
            source, expect_fingerprint, site="serving.stage"
        )
        with self._lock:
            version = ModelVersion(self._next_id, artifact)
            self._next_id += 1
        obs.counter("serving.versions_staged").inc()
        return version

    def promote(self, version: ModelVersion) -> ModelVersion:
        """Atomically publish a previously :meth:`stage`-d version.

        A single pointer flip under the lock, exactly like the tail of
        :meth:`swap`: in-flight batches finish on the version they
        resolved, new flushes resolve the promoted one.
        """
        with self._lock:
            self._active = version
            self._history.append(version)
        obs.counter("serving.promotions").inc()
        obs.counter("serving.versions_published").inc()
        return version

    def active(self) -> ModelVersion:
        """The currently published version (raises when none is)."""
        with self._lock:
            if self._active is None:
                raise ModelUnavailable("no model version has been published")
            return self._active

    def versions(self) -> List[dict]:
        """Summaries of every version ever published, oldest first."""
        with self._lock:
            return [v.describe() for v in self._history]
