"""Serving fleet: replica pool, canary/shadow deploys, admission control.

One :class:`FleetService` runs N :class:`Replica` workers behind a
:class:`~repro.serving.router.Router`:

* every replica owns its **own** :class:`~repro.serving.scheduler.BatchScheduler`
  and its own forward-pass layer stack, but the parameter arrays are
  **zero-copy views** of the registry's published weights
  (:meth:`~repro.serving.registry.ModelVersion.replica_model`) and the
  :class:`~repro.serving.cache.FeatureCache` is shared — features are
  thread-safe to share, scratch buffers are not;
* an :class:`~repro.serving.admission.AdmissionController` sheds work at
  enqueue time (rate limit, priority queue thresholds, deadline
  feasibility) before it costs a queue slot;
* a replica that keeps failing is ejected from rotation and probed back
  to health (see :mod:`repro.serving.router`); a single failed batch is
  retried on another replica through the fleet's
  :class:`~repro.resilience.RetryPolicy`;
* :class:`CanaryController` stages a candidate model next to the pool
  and routes (canary mode) or mirrors (shadow mode) a seeded, bitwise
  deterministic slice of traffic to it, then auto-promotes or
  auto-rolls-back on error-rate / latency-tail / prediction-delta
  metrics computed with :class:`repro.obs.metrics.Histogram`.

Everything the fleet decides is observable under ``serving.fleet.*``
counters and the :meth:`FleetService.metrics` snapshot.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..obs.metrics import Histogram
from ..resilience import RetryError, RetryPolicy, faults
from ..tools.annotations import guarded_by
from .admission import AdmissionController
from .cache import FeatureCache
from .config import FleetConfig, ServingConfig
from .errors import (
    AdmissionRejected,
    BadRequest,
    ReplicaFailure,
    ServingError,
)
from .registry import ModelRegistry, ModelVersion
from .requests import PredictRequest, PredictResponse
from .router import Router
from .scheduler import BatchScheduler
from .service import score_requests

#: Tokens of the synthetic request routed through an ejected replica's
#: full scheduler path to decide re-admission.
PROBE_TOKENS = ("__fleet_probe__",)


def traffic_split(seed: int, index: int, fraction: float) -> bool:
    """Deterministic per-request canary assignment.

    Hashes ``seed:index`` (the request's admission order) into a uniform
    draw in [0, 1); a draw below *fraction* goes to the candidate.  Pure
    arithmetic on the arrival index — the same seed and traffic order
    produce the same split on every machine, which is what lets the
    canary tests pin promote/rollback outcomes bitwise.
    """
    digest = hashlib.sha256(f"{seed}:{index}".encode("utf-8")).digest()
    draw = int.from_bytes(digest[:8], "big") / 2**64
    return draw < fraction


@guarded_by("_lock", "served", "failed", "_consecutive_failures", "_ejected")
class Replica:
    """One serving worker: private scheduler + zero-copy model view."""

    def __init__(
        self,
        index,
        registry: ModelRegistry,
        cache: FeatureCache,
        config: ServingConfig,
        eject_after: int = 3,
        version_resolver: Optional[Callable[[], ModelVersion]] = None,
        latency_sink: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.index = index
        self.registry = registry
        self.cache = cache
        self.config = config
        self.eject_after = eject_after
        self.fault_site = f"serving.fleet.replica.{index}"
        self._resolve = version_resolver or registry.active
        self._latency_sink = latency_sink
        # Model views are only touched by this replica's single worker
        # thread (inside _run_batch), so the dict needs no lock.  At
        # most two versions stay materialised: the active one and the
        # one an in-flight batch resolved just before a swap.
        self._views: Dict[int, object] = {}
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._ejected = False
        self.served = 0
        self.failed = 0
        self.scheduler = BatchScheduler(
            self._run_batch,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            max_queue=config.max_queue,
        )

    # -- the batched hot path ------------------------------------------------

    def _view(self, version: ModelVersion):
        """This replica's forward-pass clone of *version* (cached)."""
        model = self._views.get(version.version_id)
        if model is None:
            model = version.replica_model()
            self._views[version.version_id] = model
            while len(self._views) > 2:
                self._views.pop(next(iter(self._views)))
        return model

    def _run_batch(
        self, requests: Sequence[PredictRequest]
    ) -> List[PredictResponse]:
        """Score one micro-batch on this replica's model view.

        ``serving.fleet.replica.<index>`` is the chaos site: an injected
        fault here surfaces as :class:`ReplicaFailure`, counts toward
        ejection, and the fleet retries the requests on another replica.
        :class:`BadRequest` is the *request's* fault and never counts.
        """
        started = time.perf_counter()
        try:
            faults.inject(self.fault_site)
            version = self._resolve()
            responses = score_requests(
                self.cache,
                version,
                requests,
                pad_to=self.config.max_batch_size,
                model=self._view(version),
            )
        except BadRequest:
            raise
        except Exception as exc:
            # Any replica-side failure — injected fault, resolver error,
            # kernel bug — is one failure against this replica's health.
            self._note_failure()
            if isinstance(exc, ServingError):
                raise
            raise ReplicaFailure(
                f"replica {self.index} failed a batch: {exc!r}"
            ) from exc
        self._note_success(len(requests))
        if self._latency_sink is not None:
            self._latency_sink(time.perf_counter() - started)
        return responses

    # -- health --------------------------------------------------------------

    def _note_failure(self) -> None:
        ejected_now = False
        with self._lock:
            self.failed += 1
            self._consecutive_failures += 1
            if not self._ejected and self._consecutive_failures >= self.eject_after:
                self._ejected = True
                ejected_now = True
        obs.counter("serving.fleet.replica.failures").inc()
        if ejected_now:
            obs.counter("serving.fleet.replica.ejected").inc()

    def _note_success(self, rows: int) -> None:
        with self._lock:
            self.served += rows
            self._consecutive_failures = 0

    def available(self) -> bool:
        """True while the replica is in rotation."""
        with self._lock:
            return not self._ejected

    def readmit(self) -> None:
        """Put an ejected replica back into rotation (probe passed)."""
        with self._lock:
            self._ejected = False
            self._consecutive_failures = 0
        obs.counter("serving.fleet.replica.readmitted").inc()

    def probe(self) -> bool:
        """Health-check the full scheduler + forward-pass path.

        A synthetic one-token request runs through the same batch
        machinery as real traffic; a healthy answer re-admits the
        replica.  Returns False (still ejected) on any serving error.
        """
        request = PredictRequest.build(list(PROBE_TOKENS))
        try:
            self.scheduler.predict(request, timeout_s=self.config.timeout_s)
        except ServingError:
            obs.counter("serving.fleet.replica.probe_failures").inc()
            return False
        self.readmit()
        return True

    # -- plumbing ------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting in this replica's scheduler."""
        return self.scheduler.queue_depth

    def predict(
        self, request: PredictRequest, timeout_s: Optional[float] = None
    ) -> PredictResponse:
        """Submit to this replica and block for the response."""
        return self.scheduler.predict(request, timeout_s=timeout_s)

    def submit(self, request: PredictRequest, timeout_s=None, on_done=None):
        """Non-blocking submit (shadow mirroring path)."""
        return self.scheduler.submit(request, timeout_s=timeout_s, on_done=on_done)

    def describe(self) -> dict:
        """Health + throughput summary for ``/metrics``."""
        # Snapshot the depth before taking our lock: queue_depth
        # acquires the scheduler's condition, and nesting it under
        # Replica._lock would add a lock-order edge for no benefit.
        depth = self.scheduler.queue_depth
        with self._lock:
            return {
                "index": self.index,
                "ejected": self._ejected,
                "consecutive_failures": self._consecutive_failures,
                "served": self.served,
                "failed": self.failed,
                "queue_depth": depth,
            }

    def close(self) -> None:
        """Drain and stop this replica's scheduler."""
        self.scheduler.close()


#: Canary deployment states.
CANARY_STATES = ("idle", "canary", "shadow", "promoted", "rolled_back")


@guarded_by(
    "_lock",
    "_state",
    "_mode",
    "_reason",
    "_version",
    "_replica",
    "_finished_replica",
    "_fraction",
    "_window",
    "_next_index",
    "_candidate_samples",
    "_candidate_errors",
    "_shadow_pairs",
    "_shadow_mismatches",
)
class CanaryController:
    """Stages a candidate model and decides its fate from live metrics.

    State machine: ``idle -> canary|shadow -> promoted|rolled_back``
    (the terminal state doubles as the last outcome; :meth:`start`
    re-arms from any non-active state).  In **canary** mode the
    candidate *answers* its traffic slice; in **shadow** mode it only
    mirrors — its responses are recorded and never returned, so a bad
    candidate is provably invisible to clients.

    The decision fires exactly when ``window`` candidate samples have
    been recorded, and rolls back when any check trips:

    * candidate error rate   > ``max_error_rate``;
    * candidate p95 latency  > ``max_latency_ratio`` x pool p95;
    * (shadow only) label disagreement rate > ``max_prediction_delta``.

    Latency tails come from :class:`repro.obs.metrics.Histogram`
    instances owned by the deployment, so the verdict is a pure function
    of the recorded samples.  Promotion is the registry's atomic pointer
    flip (:meth:`~repro.serving.registry.ModelRegistry.promote`);
    rollback simply discards the staged version — the active pointer
    never moved.
    """

    def __init__(self, registry: ModelRegistry, config: FleetConfig) -> None:
        self.registry = registry
        self.config = config
        self._lock = threading.Lock()
        self._state = "idle"
        self._mode: Optional[str] = None
        self._reason: Optional[str] = None
        self._version: Optional[ModelVersion] = None
        self._replica: Optional[Replica] = None
        self._finished_replica: Optional[Replica] = None
        self._fraction = config.canary_fraction
        self._window = config.canary_window
        self._next_index = 0
        self._candidate_samples = 0
        self._candidate_errors = 0
        self._shadow_pairs = 0
        self._shadow_mismatches = 0
        self._candidate_latency = Histogram("serving.fleet.canary.latency_ms")
        self._primary_latency = Histogram("serving.fleet.primary.latency_ms")

    # -- lifecycle -----------------------------------------------------------

    def start(
        self,
        version: ModelVersion,
        replica: Replica,
        mode: str = "canary",
        fraction: Optional[float] = None,
        window: Optional[int] = None,
    ) -> dict:
        """Arm a deployment for *version* served by *replica*."""
        if mode not in ("canary", "shadow"):
            raise BadRequest(f"canary mode must be 'canary' or 'shadow', got {mode!r}")
        fraction = fraction if fraction is not None else self.config.canary_fraction
        window = window if window is not None else self.config.canary_window
        if not 0.0 < fraction <= 1.0:
            raise BadRequest("canary fraction must lie in (0, 1]")
        if window < 1:
            raise BadRequest("canary window must be >= 1")
        with self._lock:
            if self._state in ("canary", "shadow"):
                raise ServingError(
                    f"a {self._state} deployment of version "
                    f"{self._version.version_id} is already active"
                )
            self._state = mode
            self._mode = mode
            self._reason = None
            self._version = version
            self._replica = replica
            self._fraction = fraction
            self._window = window
            self._next_index = 0
            self._candidate_samples = 0
            self._candidate_errors = 0
            self._shadow_pairs = 0
            self._shadow_mismatches = 0
            self._candidate_latency = Histogram("serving.fleet.canary.latency_ms")
            self._primary_latency = Histogram("serving.fleet.primary.latency_ms")
        obs.counter(f"serving.fleet.canary.started_{mode}").inc()
        return self.status()

    def active(self) -> bool:
        """True while a canary/shadow deployment is taking traffic."""
        with self._lock:
            return self._state in ("canary", "shadow")

    def abort(self, reason: str = "aborted by operator") -> None:
        """Roll back an active deployment unconditionally."""
        with self._lock:
            if self._state not in ("canary", "shadow"):
                return
            self._state = "rolled_back"
            self._reason = reason
            self._finished_replica = self._replica
            self._replica = None
        obs.counter("serving.fleet.canary.rollbacks").inc()

    def reap(self) -> None:
        """Close the finished deployment's replica, if one is pending.

        Deferred out of the decision path on purpose: in shadow mode the
        verdict can fire on the candidate scheduler's own worker thread
        (inside an ``on_done`` callback), and a scheduler cannot join
        itself.  Callers on ordinary client threads — ``predict``,
        ``canary_status``, ``close`` — do the actual closing.
        """
        with self._lock:
            replica, self._finished_replica = self._finished_replica, None
        if replica is not None:
            replica.close()

    # -- traffic -------------------------------------------------------------

    def assign(self) -> Optional[tuple]:
        """``(candidate_replica, mode)`` when this request is in the slice.

        Consumes one index from the deterministic splitter; returns
        ``None`` while idle or for requests outside the slice.
        """
        with self._lock:
            if self._state not in ("canary", "shadow"):
                return None
            index = self._next_index
            self._next_index += 1
            if not traffic_split(self.config.canary_seed, index, self._fraction):
                return None
            return self._replica, self._mode

    def record_primary(self, latency_ms: float) -> None:
        """A pool-served response's latency (the comparison baseline)."""
        with self._lock:
            if self._state not in ("canary", "shadow"):
                return
            self._primary_latency.observe(latency_ms)

    def record_candidate(self, latency_ms: Optional[float], error: bool) -> None:
        """A candidate-served outcome in **canary** mode."""
        with self._lock:
            if self._state != "canary":
                return
            self._candidate_samples += 1
            if error:
                self._candidate_errors += 1
            elif latency_ms is not None:
                self._candidate_latency.observe(latency_ms)
        if error:
            obs.counter("serving.fleet.canary.candidate_errors").inc()
        self._maybe_decide()

    def record_shadow(
        self,
        primary_label: int,
        response: Optional[PredictResponse],
        error: Optional[BaseException],
    ) -> None:
        """A mirrored request's outcome in **shadow** mode.

        Wired as the candidate scheduler's ``on_done`` callback — the
        primary already answered the client; this only scores the
        candidate's agreement, latency, and error rate.
        """
        with self._lock:
            if self._state != "shadow":
                return
            self._candidate_samples += 1
            self._shadow_pairs += 1
            if error is not None:
                self._candidate_errors += 1
            else:
                assert response is not None
                self._candidate_latency.observe(response.latency_ms)
                if response.label != primary_label:
                    self._shadow_mismatches += 1
        obs.counter("serving.fleet.canary.mirrored").inc()
        if error is not None:
            obs.counter("serving.fleet.canary.candidate_errors").inc()
        self._maybe_decide()

    # -- the verdict ---------------------------------------------------------

    def _metrics_locked(self) -> dict:
        samples = self._candidate_samples
        error_rate = self._candidate_errors / samples if samples else 0.0
        candidate_p95 = self._candidate_latency.percentile(95)
        primary_p95 = self._primary_latency.percentile(95)
        latency_ratio = (
            candidate_p95 / primary_p95
            if candidate_p95 is not None and primary_p95
            else None
        )
        prediction_delta = (
            self._shadow_mismatches / self._shadow_pairs if self._shadow_pairs else 0.0
        )
        return {
            "samples": samples,
            "errors": self._candidate_errors,
            "error_rate": error_rate,
            "candidate_p95_ms": candidate_p95,
            "primary_p95_ms": primary_p95,
            "latency_ratio": latency_ratio,
            "shadow_pairs": self._shadow_pairs,
            "shadow_mismatches": self._shadow_mismatches,
            "prediction_delta": prediction_delta,
        }

    def _verdict_locked(self) -> tuple:
        """(outcome, reason) once the window is full.  Pure maths."""
        metrics = self._metrics_locked()
        cfg = self.config
        if metrics["error_rate"] > cfg.canary_max_error_rate:
            return "rolled_back", (
                f"error rate {metrics['error_rate']:.1%} exceeds "
                f"{cfg.canary_max_error_rate:.1%}"
            )
        ratio = metrics["latency_ratio"]
        if ratio is not None and ratio > cfg.canary_max_latency_ratio:
            return "rolled_back", (
                f"p95 latency ratio {ratio:.2f} exceeds "
                f"{cfg.canary_max_latency_ratio:.2f}"
            )
        if (
            self._mode == "shadow"
            and metrics["prediction_delta"] > cfg.canary_max_prediction_delta
        ):
            return "rolled_back", (
                f"prediction delta {metrics['prediction_delta']:.1%} exceeds "
                f"{cfg.canary_max_prediction_delta:.1%}"
            )
        return "promoted", "all canary gates passed"

    def _maybe_decide(self) -> None:
        """Evaluate the deployment once the decision window fills.

        The verdict is computed (and the state flipped) under the lock;
        the *execution* — the registry's pointer flip — happens outside
        it, keeping the lock graph free of canary -> registry edges with
        the lock held.
        """
        promote_version: Optional[ModelVersion] = None
        decided = None
        with self._lock:
            if self._state not in ("canary", "shadow"):
                return
            if self._candidate_samples < self._window:
                return
            outcome, reason = self._verdict_locked()
            self._state = outcome
            self._reason = reason
            self._finished_replica = self._replica
            self._replica = None
            decided = outcome
            if outcome == "promoted":
                promote_version = self._version
        if promote_version is not None:
            self.registry.promote(promote_version)
            obs.counter("serving.fleet.canary.promotions").inc()
        elif decided is not None:
            obs.counter("serving.fleet.canary.rollbacks").inc()

    def status(self) -> dict:
        """The deployment's state, knobs, and decision metrics."""
        with self._lock:
            return {
                "state": self._state,
                "mode": self._mode,
                "reason": self._reason,
                "candidate_version": (
                    self._version.version_id if self._version else None
                ),
                "fraction": self._fraction,
                "window": self._window,
                "assigned_indices": self._next_index,
                "metrics": self._metrics_locked(),
            }


@guarded_by("_stats_lock", "_responses", "_errors", "_batch_latency_s")
class FleetService:
    """A replica fleet behind admission control and canary deploys.

    Drop-in superset of :class:`~repro.serving.service.ServingService`:
    same ``predict/swap/healthz/metrics/close`` surface (so the HTTP
    front-end serves either), plus ``canary_start/canary_status/
    canary_abort`` and priority-aware admission.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServingConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServingConfig()
        self.fleet_config = fleet_config or FleetConfig()
        self.cache = FeatureCache(self.config.cache_size)
        self.replicas = [
            Replica(
                index,
                registry,
                self.cache,
                self.config,
                eject_after=self.fleet_config.eject_after,
                latency_sink=self._note_batch_latency,
            )
            for index in range(self.fleet_config.replicas)
        ]
        self.router = Router(
            self.replicas,
            policy=self.fleet_config.router,
            probe_after=self.fleet_config.probe_after,
        )
        self.admission = AdmissionController(self.fleet_config.admission_config())
        self.canary = CanaryController(registry, self.fleet_config)
        self._retry = RetryPolicy(
            max_attempts=len(self.replicas) + 1,
            base_delay_s=0.0,
            jitter=0.0,
            seed=self.config.seed,
            retryable=(ReplicaFailure,),
        )
        self._stats_lock = threading.Lock()
        self._responses = 0
        self._errors = 0
        self._batch_latency_s: Optional[float] = None
        self._swaps = 0

    # -- internals -----------------------------------------------------------

    def _note_batch_latency(self, seconds: float) -> None:
        """EWMA of per-flush latency feeding the admission estimator."""
        with self._stats_lock:
            if self._batch_latency_s is None:
                self._batch_latency_s = seconds
            else:
                self._batch_latency_s = 0.8 * self._batch_latency_s + 0.2 * seconds

    def observed_batch_latency(self) -> Optional[float]:
        """Smoothed flush latency in seconds (None before any flush)."""
        with self._stats_lock:
            return self._batch_latency_s

    def _pool_predict(
        self, request: PredictRequest, timeout_s: Optional[float]
    ) -> PredictResponse:
        """Route into the healthy pool, retrying across replicas.

        A :class:`ReplicaFailure` fails one replica's batch, bumps that
        replica's health counters, and is retried on whichever replica
        the router picks next (the failing one ejects itself after
        ``eject_after`` strikes).  Anything else propagates unchanged.
        """

        def attempt() -> PredictResponse:
            replica = self.router.route()
            return replica.predict(request, timeout_s=timeout_s)

        try:
            return self._retry.call(attempt, site="serving.fleet.route")
        except RetryError as exc:
            raise exc.last

    def _candidate_predict(
        self,
        candidate: Replica,
        request: PredictRequest,
        timeout_s: Optional[float],
    ) -> Optional[PredictResponse]:
        """Canary-mode candidate attempt; None means fall back to pool.

        The candidate's failure is *recorded* (it counts against the
        deployment's error gate) but never surfaced: the client gets a
        pool answer instead, so a broken candidate degrades the canary
        metrics, not the service.
        """
        try:
            response = candidate.predict(request, timeout_s=timeout_s)
        except BadRequest:
            raise
        except ServingError:
            self.canary.record_candidate(None, error=True)
            return None
        self.canary.record_candidate(response.latency_ms, error=False)
        obs.counter("serving.fleet.canary.assigned").inc()
        return response

    # -- public API ----------------------------------------------------------

    def predict(
        self,
        request: PredictRequest,
        timeout_s: Optional[float] = None,
        priority: str = "normal",
    ) -> PredictResponse:
        """Admit, route, and score one request.

        Raises :class:`~repro.serving.errors.AdmissionRejected` when the
        fleet sheds the request (rate limit, queue pressure, or an
        unmeetable deadline) — before it costs a queue slot anywhere.
        """
        timeout = timeout_s if timeout_s is not None else self.config.timeout_s
        depth = self.router.min_queue_depth() or 0
        try:
            self.admission.admit(
                priority,
                queue_depth=depth,
                queue_capacity=self.config.max_queue,
                max_batch_size=self.config.max_batch_size,
                batch_latency_s=self.observed_batch_latency(),
                deadline_s=timeout,
            )
        except AdmissionRejected:
            with self._stats_lock:
                self._errors += 1
            raise
        self.canary.reap()
        assignment = self.canary.assign()
        candidate, mode = assignment if assignment is not None else (None, None)
        try:
            response: Optional[PredictResponse] = None
            if candidate is not None and mode == "canary":
                response = self._candidate_predict(candidate, request, timeout)
            if response is None:
                response = self._pool_predict(request, timeout)
                self.canary.record_primary(response.latency_ms)
                if candidate is not None and mode == "shadow":
                    self._mirror(candidate, request, response, timeout)
        except ServingError:
            with self._stats_lock:
                self._errors += 1
            obs.counter("serving.errors").inc()
            raise
        with self._stats_lock:
            self._responses += 1
        obs.counter("serving.responses").inc()
        obs.histogram("serving.latency_ms").observe(response.latency_ms)
        return response

    def _mirror(
        self,
        candidate: Replica,
        request: PredictRequest,
        primary: PredictResponse,
        timeout_s: Optional[float],
    ) -> None:
        """Shadow-mode mirror: fire-and-forget onto the candidate.

        The client already holds the pool's answer; the candidate's
        verdict arrives through ``on_done`` on the candidate's worker
        thread and is only ever *recorded*.  A full candidate queue is
        itself recorded as a candidate error.
        """
        primary_label = primary.label

        def on_done(response, error):
            self.canary.record_shadow(primary_label, response, error)

        try:
            candidate.submit(request, timeout_s=timeout_s, on_done=on_done)
        except ServingError as exc:
            self.canary.record_shadow(primary_label, None, exc)

    def swap(self, source, expect_fingerprint: Optional[str] = None) -> dict:
        """Hot-swap every replica to a new artifact atomically.

        One registry pointer flip; each replica's next flush resolves
        the new version and builds its zero-copy view on first use.
        """
        version = self.registry.swap(source, expect_fingerprint=expect_fingerprint)
        with self._stats_lock:
            self._swaps += 1
        return version.describe()

    # -- canary/shadow -------------------------------------------------------

    def canary_start(
        self,
        source,
        mode: str = "canary",
        fraction: Optional[float] = None,
        window: Optional[int] = None,
        expect_fingerprint: Optional[str] = None,
    ) -> dict:
        """Stage *source* and start routing/mirroring a traffic slice.

        The candidate is validated exactly like a swap target
        (:meth:`~repro.serving.registry.ModelRegistry.stage`) but the
        active pointer does not move until the deployment promotes.
        """
        self.canary.reap()
        version = self.registry.stage(source, expect_fingerprint=expect_fingerprint)
        candidate = Replica(
            "candidate",
            self.registry,
            self.cache,
            self.config,
            eject_after=self.fleet_config.eject_after,
            version_resolver=lambda: version,
        )
        try:
            return self.canary.start(
                version, candidate, mode=mode, fraction=fraction, window=window
            )
        except Exception:
            candidate.close()
            raise

    def canary_status(self) -> dict:
        """The active (or last finished) deployment's status."""
        self.canary.reap()
        return self.canary.status()

    def canary_abort(self) -> dict:
        """Operator-initiated rollback of the active deployment."""
        self.canary.abort()
        self.canary.reap()
        return self.canary.status()

    # -- health + metrics ----------------------------------------------------

    def healthz(self) -> dict:
        """Liveness: active model + per-replica health."""
        active = self.registry.active()
        healthy = self.router.healthy_indices()
        return {
            "status": "ok" if healthy else "degraded",
            "model": active.describe(),
            "replicas": len(self.replicas),
            "healthy_replicas": len(healthy),
        }

    def metrics(self) -> Dict[str, object]:
        """Fleet-wide counters: admission, routing, canary, schedulers."""
        with self._stats_lock:
            responses = self._responses
            errors = self._errors
            swaps = self._swaps
            batch_latency = self._batch_latency_s
        schedulers = [replica.scheduler.stats() for replica in self.replicas]
        return {
            "responses": responses,
            "errors": errors,
            "swaps": swaps,
            "replicas": len(self.replicas),
            "batch_latency_s": batch_latency,
            "admission": self.admission.stats(),
            "router": self.router.stats(),
            "canary": self.canary.status(),
            "schedulers": schedulers,
            "cache": self.cache.stats(),
            "cache_hit_rate": self.cache.hit_rate,
        }

    def close(self) -> None:
        """Abort any deployment and drain every replica."""
        self.canary.abort("service shutting down")
        self.canary.reap()
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
