"""LRU feature cache: repeated tweets skip the embedding hot path.

Two small caches sit in front of request encoding:

* **document vectors**, keyed on ``(model_version, token-hash)`` — the
  hash covers tokens, event vocabulary, magnitudes, *and* the embedding
  family, so two requests share an entry only when their §4.7 document
  embedding is provably identical.  The model version participates
  because a hot-swap ships a new embedding matrix;
* **metadata vectors**, keyed on ``(followers, weekday)`` — the only
  inputs :func:`repro.datasets.metadata_vector` reads.

Entries are immutable (arrays are handed out with the writable flag
cleared), so cache hits are bitwise-identical replays, not recomputes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from datetime import datetime
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from .. import obs
from ..datasets import metadata_vector
from ..tools.annotations import guarded_by


@guarded_by("_lock", "_data", "hits", "misses", "evictions")
class LRUCache:
    """A thread-safe bounded mapping with least-recently-used eviction.

    ``capacity=0`` disables caching (every lookup misses) without
    callers needing a separate code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable):
        """The cached value for *key*, or None; refreshes recency."""
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                return None
            self._data[key] = value
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh *key*; evicts the LRU entry beyond capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]):
        """Cached value for *key*, computing and inserting on a miss."""
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    @property
    def hit_rate(self) -> float:
        """Hit fraction so far; 0.0 on a cold (or disabled) cache.

        The explicit zero-total guard is load-bearing: ``/metrics`` is
        often scraped before the first request lands, and a cold cache
        must render as ``0.0`` rather than raise ``ZeroDivisionError``.
        """
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        # Caller holds self._lock.
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counts, current size, and hit rate."""
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self._hit_rate_locked(),
            }


def _frozen(vector: np.ndarray) -> np.ndarray:
    """Mark *vector* read-only so cached arrays cannot be mutated."""
    vector = np.asarray(vector)
    vector.setflags(write=False)
    return vector


class FeatureCache:
    """The serving layer's two-tier feature cache (doc + metadata)."""

    def __init__(self, capacity: int) -> None:
        self.documents = LRUCache(capacity)
        self.metadata = LRUCache(min(capacity, 512) if capacity else 0)

    @staticmethod
    def document_key(
        version_id: int,
        family: str,
        tokens: Tuple[str, ...],
        vocabulary: Optional[Tuple[str, ...]],
        magnitudes: Optional[Tuple[Tuple[str, float], ...]],
    ) -> Tuple[int, str]:
        """``(model_version, token-hash)`` key for one document vector."""
        digest = hashlib.sha256()
        digest.update(family.encode("utf-8"))
        for token in tokens:
            digest.update(b"\x00t" + token.encode("utf-8"))
        for word in vocabulary if vocabulary is not None else ():
            digest.update(b"\x00v" + word.encode("utf-8"))
        for word, weight in magnitudes if magnitudes is not None else ():
            digest.update(b"\x00m" + word.encode("utf-8") + repr(weight).encode())
        return (version_id, digest.hexdigest())

    def document_vector(
        self,
        key: Tuple[int, str],
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """Cached document vector for *key* (obs: serving.cache.*)."""
        cached = self.documents.get(key)
        if cached is not None:
            obs.counter("serving.cache.hits").inc()
            return cached
        obs.counter("serving.cache.misses").inc()
        vector = _frozen(compute())
        self.documents.put(key, vector)
        return vector

    def metadata_vector(self, followers: int, created_at: datetime) -> np.ndarray:
        """Cached §4.7 metadata vector (keyed on its true inputs)."""
        key = (followers, created_at.weekday())
        return self.metadata.get_or_compute(
            key, lambda: _frozen(metadata_vector(followers, created_at))
        )

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tier cache statistics for ``/metrics``."""
        return {
            "documents": self.documents.stats(),
            "metadata": self.metadata.stats(),
        }

    @property
    def hit_rate(self) -> float:
        """Document-cache hit fraction (0.0 when untouched)."""
        return self.documents.hit_rate
