"""``repro.serving`` — online inference for audience-interest models.

The §4.9 system scores live tweets; this subsystem turns a trained
pipeline artifact into that online service (see ``docs/serving.md``):

* :class:`ModelRegistry` / :class:`ModelVersion` — load ``Sequential``
  weights + frozen embeddings + config fingerprint from an artifact
  directory, with atomic hot-swap that never drops in-flight requests;
* :class:`BatchScheduler` — micro-batching dispatcher (flush on
  ``max_batch_size`` or ``max_wait_ms``, bounded-queue backpressure,
  per-request deadlines as typed :class:`ServingError`\\ s);
* :class:`FeatureCache` — LRU cache keyed on (model version,
  token-hash) for document vectors and metadata encodings;
* :class:`ServingService` + :class:`ServingClient` (in-process) and
  :class:`ServingServer` + :class:`HTTPServingClient` (stdlib
  ``http.server`` JSON endpoints ``/predict`` ``/healthz`` ``/metrics``
  ``/swap``), driven by ``python -m repro serve``.

Responses are **bitwise-identical** to offline
``Sequential.predict(X, batch_size=B, pad_to=B)`` outputs for the same
tweets: features go through the exact dataset-builder code path and
every forward pass runs at a fixed padded row count.
"""

from .artifacts import ServingArtifact, load_artifact, save_artifact
from .cache import FeatureCache, LRUCache
from .client import HTTPServingClient, ServingClient
from .config import ServingConfig
from .errors import (
    ArtifactError,
    BadRequest,
    DeadlineExceeded,
    ModelUnavailable,
    QueueFull,
    ServingError,
    SwapError,
)
from .httpd import ServingServer
from .registry import ModelRegistry, ModelVersion
from .requests import DEFAULT_CREATED_AT, PredictRequest, PredictResponse
from .scheduler import BatchScheduler, PendingRequest
from .service import ServingService

__all__ = [
    "ArtifactError",
    "BadRequest",
    "BatchScheduler",
    "DEFAULT_CREATED_AT",
    "DeadlineExceeded",
    "FeatureCache",
    "HTTPServingClient",
    "LRUCache",
    "ModelRegistry",
    "ModelUnavailable",
    "ModelVersion",
    "PendingRequest",
    "PredictRequest",
    "PredictResponse",
    "QueueFull",
    "ServingArtifact",
    "ServingClient",
    "ServingConfig",
    "ServingError",
    "ServingServer",
    "ServingService",
    "SwapError",
    "load_artifact",
    "save_artifact",
]
