"""``repro.serving`` — online inference for audience-interest models.

The §4.9 system scores live tweets; this subsystem turns a trained
pipeline artifact into that online service (see ``docs/serving.md``):

* :class:`ModelRegistry` / :class:`ModelVersion` — load ``Sequential``
  weights + frozen embeddings + config fingerprint from an artifact
  directory, with atomic hot-swap that never drops in-flight requests;
* :class:`BatchScheduler` — micro-batching dispatcher (flush on
  ``max_batch_size`` or ``max_wait_ms``, bounded-queue backpressure,
  per-request deadlines as typed :class:`ServingError`\\ s);
* :class:`FeatureCache` — LRU cache keyed on (model version,
  token-hash) for document vectors and metadata encodings;
* :class:`ServingService` + :class:`ServingClient` (in-process) and
  :class:`ServingServer` + :class:`HTTPServingClient` (stdlib
  ``http.server`` JSON endpoints ``/predict`` ``/healthz`` ``/metrics``
  ``/swap`` ``/canary``), driven by ``python -m repro serve``;
* :class:`FleetService` — a replica pool behind a pluggable
  :class:`Router` with :class:`AdmissionController` load shedding and
  :class:`CanaryController` canary/shadow deployments (see
  ``docs/fleet.md``), sharing the exact encode/score path with the
  single-worker service.

Responses are **bitwise-identical** to offline
``Sequential.predict(X, batch_size=B, pad_to=B)`` outputs for the same
tweets: features go through the exact dataset-builder code path and
every forward pass runs at a fixed padded row count.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
    estimate_wait_s,
)
from .artifacts import ServingArtifact, load_artifact, save_artifact
from .cache import FeatureCache, LRUCache
from .client import HTTPServingClient, ServingClient
from .config import FleetConfig, ServingConfig
from .errors import (
    AdmissionRejected,
    ArtifactError,
    BadRequest,
    DeadlineExceeded,
    ModelUnavailable,
    QueueFull,
    ReplicaFailure,
    ServingError,
    ServingUnavailable,
    SwapError,
)
from .fleet import CanaryController, FleetService, Replica, traffic_split
from .httpd import ServingServer
from .registry import ModelRegistry, ModelVersion
from .requests import DEFAULT_CREATED_AT, PredictRequest, PredictResponse
from .router import POLICIES, Router
from .scheduler import BatchScheduler, PendingRequest
from .service import ServingService

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "ArtifactError",
    "BadRequest",
    "BatchScheduler",
    "CanaryController",
    "DEFAULT_CREATED_AT",
    "DeadlineExceeded",
    "FeatureCache",
    "FleetConfig",
    "FleetService",
    "HTTPServingClient",
    "LRUCache",
    "ModelRegistry",
    "ModelUnavailable",
    "ModelVersion",
    "POLICIES",
    "PendingRequest",
    "PredictRequest",
    "PredictResponse",
    "QueueFull",
    "Replica",
    "ReplicaFailure",
    "Router",
    "ServingArtifact",
    "ServingClient",
    "ServingConfig",
    "ServingError",
    "ServingServer",
    "ServingService",
    "ServingUnavailable",
    "SwapError",
    "TokenBucket",
    "estimate_wait_s",
    "load_artifact",
    "save_artifact",
    "traffic_split",
]
