"""Typed failure modes of the online serving layer.

Every way a request or an operator action can fail maps to one
exception class carrying an HTTP status, so the stdlib HTTP front-end,
the in-process client, and the CLI all classify failures the same way
(see ``docs/serving.md``).
"""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class for all serving failures.

    ``status`` is the HTTP status code the JSON front-end responds
    with; in-process callers get the exception itself.
    """

    status = 500

    @property
    def kind(self) -> str:
        """Stable machine-readable name used in JSON error bodies."""
        return type(self).__name__


class BadRequest(ServingError):
    """The request payload is malformed or missing required fields."""

    status = 400


class QueueFull(ServingError):
    """Backpressure: the scheduler's bounded queue is at capacity."""

    status = 429


class ModelUnavailable(ServingError):
    """No model version is published, or the service is shut down."""

    status = 503


class DeadlineExceeded(ServingError):
    """The request's deadline elapsed before a batch could answer it."""

    status = 504


class SwapError(ServingError):
    """A hot-swap was rejected (incompatible or failed candidate)."""

    status = 409


class ArtifactError(ServingError):
    """A serving artifact is missing, corrupt, or fails validation."""

    status = 500
