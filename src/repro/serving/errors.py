"""Typed failure modes of the online serving layer.

Every way a request or an operator action can fail maps to one
exception class carrying an HTTP status, so the stdlib HTTP front-end,
the in-process client, and the CLI all classify failures the same way
(see ``docs/serving.md``).
"""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class for all serving failures.

    ``status`` is the HTTP status code the JSON front-end responds
    with; in-process callers get the exception itself.
    """

    status = 500

    @property
    def kind(self) -> str:
        """Stable machine-readable name used in JSON error bodies."""
        return type(self).__name__


class BadRequest(ServingError):
    """The request payload is malformed or missing required fields."""

    status = 400


class QueueFull(ServingError):
    """Backpressure: the scheduler's bounded queue is at capacity."""

    status = 429


class ModelUnavailable(ServingError):
    """No model version is published, or the service is shut down."""

    status = 503


class ServingUnavailable(ModelUnavailable):
    """The server itself cannot be reached (connection refused/reset).

    A subclass of :class:`ModelUnavailable` so existing callers that
    catch the broader condition keep working; clients raise it to
    distinguish "no route to the server" from "a reachable server with
    no model published".
    """

    status = 503


class DeadlineExceeded(ServingError):
    """The request's deadline elapsed before a batch could answer it."""

    status = 504


class AdmissionRejected(ServingError):
    """The fleet's admission controller shed the request at enqueue time.

    ``reason`` is one of ``"rate"`` (token bucket empty), ``"queue"``
    (priority-class queue threshold crossed), or ``"deadline"`` (the
    deadline cannot be met given current queue depth and observed batch
    latency) — cheaper for everyone than timing out at the queue tail.
    """

    status = 429

    def __init__(self, message: str, reason: str = "queue") -> None:
        super().__init__(message)
        self.reason = reason


class ReplicaFailure(ServingError):
    """A replica's batch runner failed; the router may retry elsewhere."""

    status = 503


class SwapError(ServingError):
    """A hot-swap was rejected (incompatible or failed candidate)."""

    status = 409


class ArtifactError(ServingError):
    """A serving artifact is missing, corrupt, or fails validation."""

    status = 500
