"""Serving artifacts: a trained model + frozen embeddings on disk.

One artifact directory is the unit of deployment the
:class:`~repro.serving.registry.ModelRegistry` loads and hot-swaps:

    artifact/
        artifact.json    metadata: network/variant names, dims, the
                         PipelineConfig fingerprint, vocabulary order
        weights.npz      Sequential parameters (``w0`` .. ``wN``)
        embeddings.npz   the word-vector matrix, rows ordered like the
                         vocabulary list in artifact.json

All writes go through atomic temp-file + rename so a crashed export
never leaves a half-written artifact that a registry could load.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..datasets.builders import variant_spec
from ..embeddings import PretrainedEmbeddings
from ..nn import Sequential, build_paper_network
from ..resilience.checkpoint import atomic_write, config_fingerprint
from .errors import ArtifactError

ARTIFACT_VERSION = 1
METADATA_FILE = "artifact.json"
WEIGHTS_FILE = "weights.npz"
EMBEDDINGS_FILE = "embeddings.npz"


@dataclass
class ServingArtifact:
    """An in-memory, validated serving artifact."""

    network: str
    variant: str
    input_dim: int
    n_classes: int
    embedding_dim: int
    fingerprint: str
    weights: List[np.ndarray]
    words: List[str]
    matrix: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def build_embeddings(self) -> PretrainedEmbeddings:
        """Reconstruct the frozen embedding store."""
        vectors = {w: self.matrix[i] for i, w in enumerate(self.words)}
        return PretrainedEmbeddings(vectors, self.embedding_dim)

    def build_model(self) -> Sequential:
        """Rebuild the network architecture and load the weights."""
        model = build_paper_network(
            self.network, input_dim=self.input_dim, n_classes=self.n_classes
        )
        model.build((self.input_dim,))
        try:
            model.set_weights(self.weights)
        except ValueError as exc:
            raise ArtifactError(f"weights do not fit {self.network!r}: {exc}") from exc
        return model


def _npz_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialize arrays to npz bytes (for atomic single-write output)."""
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def save_artifact(
    directory: str,
    model: Sequential,
    embeddings: PretrainedEmbeddings,
    variant: str,
    network: str,
    config=None,
    fingerprint: Optional[str] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Export *model* + *embeddings* as a loadable artifact directory.

    The fingerprint binds the artifact to the pipeline configuration it
    was trained under: pass the :class:`~repro.core.config.PipelineConfig`
    as *config* (hashed via :func:`repro.resilience.config_fingerprint`)
    or an explicit *fingerprint* string.
    """
    variant_spec(variant)  # validates the name early
    if model._input_shape is None:
        raise ArtifactError("cannot export an unbuilt model")
    if fingerprint is None:
        fingerprint = (
            config_fingerprint(config) if config is not None else "unfingerprinted"
        )
    input_dim = int(model._input_shape[0])
    n_classes = int(model.output_shape((input_dim,))[0])
    words = sorted(embeddings.words())
    matrix = (
        np.vstack([embeddings[w] for w in words])
        if words
        else np.zeros((0, embeddings.dim))
    )
    os.makedirs(directory, exist_ok=True)
    weights = model.get_weights()
    atomic_write(
        os.path.join(directory, WEIGHTS_FILE),
        _npz_bytes({f"w{i}": w for i, w in enumerate(weights)}),
    )
    atomic_write(
        os.path.join(directory, EMBEDDINGS_FILE), _npz_bytes({"matrix": matrix})
    )
    payload = {
        "version": ARTIFACT_VERSION,
        "network": network,
        "variant": variant,
        "input_dim": input_dim,
        "n_classes": n_classes,
        "embedding_dim": embeddings.dim,
        "fingerprint": fingerprint,
        "n_weights": len(weights),
        "words": words,
        "metadata": dict(metadata or {}),
    }
    # Metadata lands last: its presence marks the artifact complete.
    atomic_write(
        os.path.join(directory, METADATA_FILE),
        (json.dumps(payload, indent=2, default=str) + "\n").encode("utf-8"),
    )
    return directory


def load_artifact(directory: str) -> ServingArtifact:
    """Load and validate an artifact directory.

    Raises :class:`ArtifactError` (never a raw traceback type) for any
    missing/corrupt/inconsistent state, so front-ends can turn it into
    a clean operator-facing message.
    """
    meta_path = os.path.join(directory, METADATA_FILE)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ArtifactError(
            f"no serving artifact at {directory!r} (missing {METADATA_FILE})"
        ) from None
    except (json.JSONDecodeError, OSError) as exc:
        raise ArtifactError(f"corrupt {METADATA_FILE} in {directory!r}: {exc}") from exc
    if payload.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"artifact version {payload.get('version')!r} unsupported "
            f"(expected {ARTIFACT_VERSION})"
        )
    required = (
        "network", "variant", "input_dim", "n_classes",
        "embedding_dim", "fingerprint", "n_weights", "words",
    )
    missing = [key for key in required if key not in payload]
    if missing:
        raise ArtifactError(f"artifact metadata missing fields: {missing}")

    def _load_npz(filename: str) -> Dict[str, np.ndarray]:
        path = os.path.join(directory, filename)
        try:
            with np.load(path) as data:
                return {name: data[name] for name in data.files}
        except FileNotFoundError:
            raise ArtifactError(f"artifact at {directory!r} missing {filename}") from None
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"corrupt {filename} in {directory!r}: {exc}") from exc

    weight_arrays = _load_npz(WEIGHTS_FILE)
    n_weights = int(payload["n_weights"])
    try:
        weights = [weight_arrays[f"w{i}"] for i in range(n_weights)]
    except KeyError as exc:
        raise ArtifactError(f"weights.npz missing entry {exc}") from exc
    matrix = _load_npz(EMBEDDINGS_FILE).get("matrix")
    if matrix is None:
        raise ArtifactError(f"embeddings.npz in {directory!r} has no 'matrix' array")
    words = list(payload["words"])
    if matrix.shape != (len(words), int(payload["embedding_dim"])):
        raise ArtifactError(
            f"embedding matrix shape {matrix.shape} does not match "
            f"{len(words)} words x {payload['embedding_dim']} dims"
        )
    artifact = ServingArtifact(
        network=str(payload["network"]),
        variant=str(payload["variant"]),
        input_dim=int(payload["input_dim"]),
        n_classes=int(payload["n_classes"]),
        embedding_dim=int(payload["embedding_dim"]),
        fingerprint=str(payload["fingerprint"]),
        weights=weights,
        words=words,
        matrix=matrix,
        metadata=dict(payload.get("metadata") or {}),
    )
    try:
        variant_spec(artifact.variant)
    except KeyError as exc:
        raise ArtifactError(str(exc)) from exc
    return artifact
