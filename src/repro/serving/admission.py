"""Admission control: priority classes, token bucket, deadline-aware shed.

Overload protection for the serving fleet happens **at enqueue time**,
before a request ever occupies a queue slot:

* a :class:`TokenBucket` rate limiter bounds sustained request rate
  (burst-tolerant, deterministic under an injected clock);
* per-priority **queue thresholds** shed low-priority work first as the
  replica queues fill (classic load shedding: ``low`` traffic is
  rejected at 50% occupancy, ``normal`` at 85%, ``high`` rides to the
  bound);
* a **deadline feasibility check** rejects requests whose deadline
  cannot be met given the current queue depth and the observed batch
  latency — failing in microseconds instead of timing out at the queue
  tail after burning a batch slot.

Every decision increments a ``serving.fleet.admission.*`` counter, and
every rejection is a typed :class:`~repro.serving.errors.AdmissionRejected`
carrying its reason, so load generators can assert exact shed counts.
The wait-estimate maths lives in :func:`estimate_wait_s` so the
autoscaling simulation in ``benchmarks/fleet_bench.py`` exercises the
very same admission logic under a virtual clock.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .. import obs
from ..tools.annotations import guarded_by
from .errors import AdmissionRejected, BadRequest

#: Priority classes, most to least important.  Lower rank sheds later.
PRIORITIES: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}

#: Queue-occupancy fraction beyond which each class is shed.
DEFAULT_QUEUE_THRESHOLDS: Dict[str, float] = {
    "high": 1.0,
    "normal": 0.85,
    "low": 0.5,
}


def priority_rank(priority: str) -> int:
    """The numeric rank of *priority* (raises :class:`BadRequest`)."""
    try:
        return PRIORITIES[priority]
    except KeyError:
        raise BadRequest(
            f"unknown priority {priority!r}; expected one of {sorted(PRIORITIES)}"
        ) from None


def estimate_wait_s(
    queue_depth: int, max_batch_size: int, batch_latency_s: float
) -> float:
    """Estimated completion time for a request joining a replica queue.

    The request waits for every already-queued batch ahead of it, then
    for its own batch: ``ceil((depth + 1) / B)`` flushes at the observed
    per-flush latency.  Deliberately pessimism-free — admission sheds on
    *provable* misses, not on noise.
    """
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be >= 1")
    flushes = math.ceil((queue_depth + 1) / max_batch_size)
    return flushes * max(batch_latency_s, 0.0)


@guarded_by("_lock", "_tokens", "_last", "granted", "denied")
class TokenBucket:
    """A deterministic token-bucket rate limiter.

    ``rate_per_s`` tokens accrue per second up to ``burst``; each
    admitted request spends one.  The clock is injectable so the
    autoscaling simulation (and the admission tests) drive it with
    virtual time and get bitwise-reproducible decisions.
    ``rate_per_s=0`` disables the limiter (every acquire succeeds).
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s < 0:
            raise ValueError("rate_per_s must be >= 0")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = clock()
        self.granted = 0
        self.denied = 0

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend *tokens* if available; False means shed the request."""
        if self.rate_per_s == 0:
            return True
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._last)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
            self._last = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.granted += 1
                return True
            self.denied += 1
            return False

    def stats(self) -> Dict[str, float]:
        """Grant/deny counters and the current token level."""
        with self._lock:
            return {
                "rate_per_s": self.rate_per_s,
                "burst": self.burst,
                "tokens": round(self._tokens, 6),
                "granted": self.granted,
                "denied": self.denied,
            }


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of one :class:`AdmissionController`."""

    rate_limit_rps: float = 0.0
    rate_burst: float = 64.0
    queue_thresholds: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_QUEUE_THRESHOLDS)
    )
    deadline_margin_s: float = 0.005

    def __post_init__(self) -> None:
        if self.rate_limit_rps < 0:
            raise ValueError("rate_limit_rps must be >= 0")
        if self.rate_burst <= 0:
            raise ValueError("rate_burst must be positive")
        if self.deadline_margin_s < 0:
            raise ValueError("deadline_margin_s must be >= 0")
        for priority in PRIORITIES:
            fraction = self.queue_thresholds.get(priority)
            if fraction is None or not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"queue_thresholds[{priority!r}] must lie in (0, 1], "
                    f"got {fraction!r}"
                )


@guarded_by("_lock", "admitted", "shed")
class AdmissionController:
    """Decides, per request, whether the fleet should accept the work."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.bucket = TokenBucket(
            self.config.rate_limit_rps, self.config.rate_burst, clock=clock
        )
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed: Dict[str, int] = {"rate": 0, "queue": 0, "deadline": 0}

    def _reject(self, reason: str, message: str) -> None:
        with self._lock:
            self.shed[reason] += 1
        obs.counter(f"serving.fleet.admission.shed_{reason}").inc()
        raise AdmissionRejected(message, reason=reason)

    def admit(
        self,
        priority: str,
        queue_depth: int,
        queue_capacity: int,
        max_batch_size: int,
        batch_latency_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        """Admit or shed one request (raises :class:`AdmissionRejected`).

        Checks run cheapest-first: the token bucket (``high`` priority
        is exempt — operator probes and health traffic must not starve),
        then the priority-class queue threshold, then the deadline
        feasibility estimate (skipped until a batch-latency observation
        exists).
        """
        rank = priority_rank(priority)
        if rank > PRIORITIES["high"] and not self.bucket.try_acquire():
            self._reject(
                "rate",
                f"rate limit exceeded ({self.bucket.rate_per_s:.0f} rps, "
                f"burst {self.bucket.burst:.0f}); retry with backoff",
            )
        threshold = self.config.queue_thresholds[priority]
        if queue_capacity > 0 and queue_depth >= threshold * queue_capacity:
            self._reject(
                "queue",
                f"queue at {queue_depth}/{queue_capacity} exceeds the "
                f"{priority!r} shed threshold ({threshold:.0%})",
            )
        if deadline_s is not None and batch_latency_s is not None:
            wait = estimate_wait_s(queue_depth, max_batch_size, batch_latency_s)
            if wait + self.config.deadline_margin_s > deadline_s:
                self._reject(
                    "deadline",
                    f"deadline {deadline_s * 1000.0:.1f}ms cannot be met: "
                    f"estimated completion {wait * 1000.0:.1f}ms at queue "
                    f"depth {queue_depth}",
                )
        with self._lock:
            self.admitted += 1
        obs.counter("serving.fleet.admission.admitted").inc()

    def stats(self) -> Dict[str, object]:
        """Admission counters for ``/metrics`` (one consistent snapshot)."""
        with self._lock:
            admitted = self.admitted
            shed = dict(self.shed)
        return {
            "admitted": admitted,
            "shed": shed,
            "shed_total": sum(shed.values()),
            "rate_limiter": self.bucket.stats(),
        }
