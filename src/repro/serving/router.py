"""Replica router: pluggable policies, health tracking, probe/re-admission.

The router owns the *which replica serves this request* decision for a
:class:`~repro.serving.fleet.FleetService`:

* **policies** — ``round_robin`` (strict rotation over the healthy set)
  and ``least_loaded`` (minimum queue depth, ties to the lowest replica
  index).  Both are deterministic functions of the routing history and
  the observed queue depths, so tests can pin exact assignments;
* **ejection** — a replica that fails ``eject_after`` consecutive
  batches takes itself out of rotation (see
  :meth:`repro.serving.fleet.Replica.note_batch_outcome`); the router
  simply stops selecting it;
* **re-admission** — after every ``probe_after`` routed requests, the
  router sends one synthetic probe through an ejected replica's full
  scheduler path; a healthy answer re-admits it.  Counted, not timed,
  so ejection/re-admission sequences are reproducible in tests.

Counters: ``serving.fleet.router.routed`` / ``.ejections`` /
``.readmissions`` / ``.probes``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from ..tools.annotations import guarded_by
from .errors import ModelUnavailable

#: policy(healthy_indices, queue_depths, rotation) -> chosen replica index.
#: ``rotation`` is the router's monotonically increasing pick counter.
PolicyFn = Callable[[Sequence[int], Sequence[int], int], int]


def round_robin(healthy: Sequence[int], depths: Sequence[int], rotation: int) -> int:
    """Strict rotation across the healthy replicas."""
    return healthy[rotation % len(healthy)]


def least_loaded(healthy: Sequence[int], depths: Sequence[int], rotation: int) -> int:
    """Minimum queue depth; ties break to the lowest replica index."""
    best = healthy[0]
    best_depth = depths[0]
    for index, depth in zip(healthy[1:], depths[1:]):
        if depth < best_depth:
            best, best_depth = index, depth
    return best


#: Name -> policy function, the registry behind ``--router``.
POLICIES: Dict[str, PolicyFn] = {
    "round_robin": round_robin,
    "least_loaded": least_loaded,
}


@guarded_by("_lock", "_rotation", "_routed", "_probe_marks", "_probing", "routed_per_replica")
class Router:
    """Routes requests across a replica pool, probing ejected members."""

    def __init__(
        self,
        replicas: Sequence,
        policy: str = "least_loaded",
        probe_after: int = 8,
    ) -> None:
        if not replicas:
            raise ValueError("router needs at least one replica")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown router policy {policy!r}; expected one of "
                f"{sorted(POLICIES)}"
            )
        if probe_after < 1:
            raise ValueError("probe_after must be >= 1")
        self.replicas = list(replicas)
        self.policy_name = policy
        self._policy = POLICIES[policy]
        self.probe_after = probe_after
        self._lock = threading.Lock()
        self._rotation = 0
        self._routed = 0
        #: replica index -> routed count at its last eject/probe event.
        self._probe_marks: Dict[int, int] = {}
        #: replica indices with an in-flight probe (never probe twice).
        self._probing: set = set()
        self.routed_per_replica = [0 for _ in replicas]

    # -- selection -----------------------------------------------------------

    def route(self):
        """Pick the replica for one request (may probe an ejected one).

        Raises :class:`ModelUnavailable` when every replica is ejected —
        the caller should surface 503 rather than queueing into a dead
        pool.  Probing happens outside the router lock: the probe is a
        real request through the ejected replica's scheduler.
        """
        # Health and depth are snapshotted *outside* the router lock:
        # they are advisory (a replica can eject the instant after we
        # look), and reading them under our lock would nest
        # Router._lock over Replica._lock / BatchScheduler._cond for
        # no consistency gain.
        healthy = [r.index for r in self.replicas if r.available()]
        if not healthy:
            obs.counter("serving.fleet.router.no_replicas").inc()
            raise ModelUnavailable(
                "all replicas are ejected; the fleet cannot serve"
            )
        depths = [self.replicas[i].queue_depth for i in healthy]
        ejected = [r for r in self.replicas if r.index not in set(healthy)]
        with self._lock:
            chosen = self._policy(healthy, depths, self._rotation)
            self._rotation += 1
            self._routed += 1
            self.routed_per_replica[chosen] += 1
            probe_target = self._due_probe_locked(ejected)
        obs.counter("serving.fleet.router.routed").inc()
        if probe_target is not None:
            self._probe(probe_target)
        return self.replicas[chosen]

    def _due_probe_locked(self, ejected):
        # Caller holds self._lock; *ejected* was snapshotted outside it.
        # At most one ejected replica is selected per routed request,
        # and only when its probe budget (probe_after routed requests
        # since the last attempt) is spent.
        for replica in ejected:
            if replica.index in self._probing:
                continue
            mark = self._probe_marks.get(replica.index)
            if mark is None:
                # First time we see it ejected: start its budget now.
                self._probe_marks[replica.index] = self._routed
                obs.counter("serving.fleet.router.ejections").inc()
                continue
            if self._routed - mark >= self.probe_after:
                self._probe_marks[replica.index] = self._routed
                self._probing.add(replica.index)
                return replica
        return None

    def _probe(self, replica) -> None:
        """Health-check *replica* end to end; re-admit on success."""
        obs.counter("serving.fleet.router.probes").inc()
        try:
            healthy = replica.probe()
        finally:
            with self._lock:
                self._probing.discard(replica.index)
        if healthy:
            with self._lock:
                self._probe_marks.pop(replica.index, None)
            obs.counter("serving.fleet.router.readmissions").inc()

    # -- introspection -------------------------------------------------------

    def healthy_indices(self) -> List[int]:
        """Indices of replicas currently in rotation."""
        return [r.index for r in self.replicas if r.available()]

    def min_queue_depth(self) -> Optional[int]:
        """Smallest healthy-replica queue depth (None when pool is dead).

        This is the depth the admission controller's wait estimate uses:
        under ``least_loaded`` routing it is exactly the queue the next
        admitted request would join.
        """
        depths = [r.queue_depth for r in self.replicas if r.available()]
        return min(depths) if depths else None

    def stats(self) -> Dict[str, object]:
        """Router counters and per-replica health for ``/metrics``."""
        with self._lock:
            routed = self._routed
            per_replica = list(self.routed_per_replica)
        return {
            "policy": self.policy_name,
            "routed": routed,
            "routed_per_replica": per_replica,
            "healthy": self.healthy_indices(),
            "replicas": [r.describe() for r in self.replicas],
        }
