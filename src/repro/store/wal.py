"""Per-shard write-ahead log: CRC-framed, append-only, atomically compacted.

Format — one frame per line::

    <crc32 of payload, 8 hex chars> <payload JSON, compact, sorted keys>\\n

The payload is a WAL record (see :mod:`repro.store.shard` for the record
schema); document values inside it are encoded with
:func:`repro.resilience.codecs.encode_json_value` so the replayed
documents are bitwise-equal to what was acknowledged, datetimes included.

Recovery semantics: :meth:`ShardWAL.replay` returns every record up to —
and not including — the first frame that fails to parse or checksum.  A
torn tail is the expected signature of a crash mid-``write`` and is
silently discarded (counted in ``store.wal.torn_records``); anything
*after* a torn frame is unreachable by construction, since appends are
strictly sequential.

Compaction rewrites the log with only the records newer than a
checkpoint's LSN watermark, using the same temp-file + ``os.replace``
discipline as :func:`repro.resilience.checkpoint.atomic_write`, so a
crash during compaction leaves either the old complete log or the new
complete log — never a hybrid.

Thread-safety: none of its own, by design.  A :class:`ShardWAL` is owned
by exactly one :class:`~repro.store.shard.Shard`, which serializes every
call under its shard lock; keeping the WAL lock-free keeps it out of the
lock-order graph entirely.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Any, Dict, List, Optional

from .errors import WALError


def _frame(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    data = payload.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data), data)


def _parse_frame(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one frame; None when torn/corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    payload = line[9:]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


class ShardWAL:
    """Append-only framed record log for one shard."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: True when the most recent :meth:`replay` discarded a torn tail.
        #: The owning shard reads this to feed ``store.wal.torn_records``
        #: (all obs calls stay in the shard so the lock-order graph sees
        #: them; the WAL itself is lock- and metrics-free).
        self.torn_tail = False
        self._handle: Optional[Any] = None

    def _open(self) -> Any:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record and flush it to the OS.

        The append is the durability point: a record present on return is
        recovered by :meth:`replay`; a crash mid-write leaves a torn tail
        that replay discards.
        """
        handle = self._open()
        handle.write(_frame(record))
        handle.flush()

    def append_torn(self, record: Dict[str, Any]) -> None:
        """Write a deliberately half-written frame (crash simulation).

        Used by the fault-injection kill point ``store.wal.torn.*`` to
        model a process dying mid-``write``: the prefix of the frame
        reaches the file, the record must NOT survive recovery.
        """
        frame = _frame(record)
        handle = self._open()
        handle.write(frame[: max(1, len(frame) // 2)])
        handle.flush()

    def replay(self) -> List[Dict[str, Any]]:
        """All intact records, in append order, stopping at the first tear."""
        self.torn_tail = False
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as handle:
            data = handle.read()
        records: List[Dict[str, Any]] = []
        for line in data.split(b"\n"):
            if not line:
                continue
            record = _parse_frame(line)
            if record is None:
                self.torn_tail = True
                break
            records.append(record)
        return records

    def rewrite(self, records: List[Dict[str, Any]]) -> None:
        """Atomically replace the log's contents with *records*."""
        self.close()
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".wal-")
        try:
            with os.fdopen(fd, "wb") as handle:
                for record in records:
                    handle.write(_frame(record))
                handle.flush()
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def compact(self, keep_after_lsn: int) -> int:
        """Drop records with ``lsn <= keep_after_lsn``; returns kept count.

        Called after a checkpoint lands: everything at or below the
        checkpoint's LSN watermark is redundant with the checkpoint file.
        """
        records = self.replay()
        kept = [r for r in records if int(r.get("lsn", 0)) > keep_after_lsn]
        self.rewrite(kept)
        return len(kept)

    def size_bytes(self) -> int:
        """Current on-disk size (0 when the log does not exist yet)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        """Close the append handle (reopened lazily on the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


__all__ = ["ShardWAL", "WALError"]
