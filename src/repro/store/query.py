"""Mongo-style query matching and update application.

The paper's deployment stores every corpus (raw news, raw tweets, the three
preprocessed corpora, detected events) in MongoDB and retrieves them with
filter documents.  This module implements the query dialect that the rest of
the reproduction relies on:

Comparison operators
    ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$nin``

Element / evaluation operators
    ``$exists``, ``$type``, ``$regex``, ``$mod``, ``$size``, ``$where``

Logical operators
    ``$and``, ``$or``, ``$nor``, ``$not``

Update operators
    ``$set``, ``$unset``, ``$inc``, ``$mul``, ``$min``, ``$max``,
    ``$rename``, ``$push``, ``$pull``, ``$addToSet``, ``$pop``

Dotted paths (``"user.followers"``) address nested documents and list
elements, as in MongoDB.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import QueryError

_MISSING = object()

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens of *text*, in order of appearance.

    The single tokenizer shared by ``$text`` matching and the inverted
    index (:class:`repro.store.index.InvertedIndex`), so an index lookup
    and a full-scan text predicate always agree on which documents a
    search hits.
    """
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class TextQuery:
    """A parsed ``$text`` search: deduplicated terms plus AND/OR mode."""

    terms: Tuple[str, ...]
    mode: str  # "all" (AND) or "any" (OR)


def parse_text_query(spec: Any) -> TextQuery:
    """Parse the value of a top-level ``$text`` operator.

    Accepted forms::

        {"$text": "brexit vote"}                              # AND terms
        {"$text": {"$search": "brexit vote"}}                 # AND terms
        {"$text": {"$search": "brexit vote", "$mode": "any"}} # OR terms
    """
    if isinstance(spec, str):
        search, mode = spec, "all"
    elif isinstance(spec, dict):
        unknown = set(spec) - {"$search", "$mode"}
        if unknown or "$search" not in spec:
            raise QueryError(
                "$text requires {'$search': <str>[, '$mode': 'all'|'any']}"
            )
        search = spec["$search"]
        mode = spec.get("$mode", "all")
    else:
        raise QueryError("$text requires a string or a {'$search': ...} dict")
    if not isinstance(search, str):
        raise QueryError("$search must be a string")
    if mode not in ("all", "any"):
        raise QueryError(f"$mode must be 'all' or 'any', got {mode!r}")
    return TextQuery(terms=tuple(dict.fromkeys(tokenize(search))), mode=mode)


def split_text_query(
    query: Dict[str, Any],
) -> Tuple[Optional[TextQuery], Dict[str, Any]]:
    """Split a query into its parsed ``$text`` part and the residual filter.

    ``$text`` is only legal at the top level (as in MongoDB); the residual
    is what :func:`matches` understands.  The input is not mutated.
    """
    if "$text" not in query:
        return None, query
    residual = {k: v for k, v in query.items() if k != "$text"}
    return parse_text_query(query["$text"]), residual


def text_matches(
    document: Dict[str, Any], fields: Sequence[str], text: TextQuery
) -> bool:
    """Full-scan ``$text`` predicate over the declared text *fields*.

    Reference semantics for the inverted index: a document matches when
    the union of tokens across its text fields contains all (``"all"``)
    or at least one (``"any"``) of the search terms.  An empty search
    matches nothing.
    """
    if not text.terms:
        return False
    tokens: set = set()
    for field in fields:
        value = get_path(document, field)
        if value is _MISSING:
            continue
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, str):
                tokens.update(tokenize(item))
    if text.mode == "any":
        return any(term in tokens for term in text.terms)
    return all(term in tokens for term in text.terms)

_TYPE_NAMES = {
    "double": float,
    "string": str,
    "object": dict,
    "array": list,
    "bool": bool,
    "int": int,
    "null": type(None),
}


def get_path(document: Any, path: str) -> Any:
    """Resolve a dotted *path* inside *document*.

    Returns the sentinel ``_MISSING`` (checked via :func:`path_exists`)
    when any step of the path is absent.  Integer path segments index into
    lists, mirroring MongoDB semantics.
    """
    current = document
    for part in path.split("."):
        if isinstance(current, dict):
            if part not in current:
                return _MISSING
            current = current[part]
        elif isinstance(current, (list, tuple)):
            if not part.isdigit() or int(part) >= len(current):
                return _MISSING
            current = current[int(part)]
        else:
            return _MISSING
    return current


def path_exists(document: Any, path: str) -> bool:
    """Return True when the dotted *path* resolves inside *document*."""
    return get_path(document, path) is not _MISSING


def _values_at(document: Any, path: str) -> List[Any]:
    """All values addressed by *path*, fanning out across list elements.

    MongoDB matches ``{"tags": "x"}`` when ``tags`` is a list containing
    ``"x"``; this helper produces the candidate values for such matching.
    """
    value = get_path(document, path)
    if value is _MISSING:
        return []
    if isinstance(value, list):
        return [value] + list(value)
    return [value]


def _compare(op: Callable[[Any, Any], bool], left: Any, right: Any) -> bool:
    """Apply a comparison, treating cross-type comparisons as non-matching."""
    try:
        return bool(op(left, right))
    except TypeError:
        return False


def _match_operator(op: str, expected: Any, actual: Any) -> bool:
    if op == "$eq":
        return actual == expected
    if op == "$ne":
        return actual != expected
    if op == "$gt":
        return _compare(lambda a, b: a > b, actual, expected)
    if op == "$gte":
        return _compare(lambda a, b: a >= b, actual, expected)
    if op == "$lt":
        return _compare(lambda a, b: a < b, actual, expected)
    if op == "$lte":
        return _compare(lambda a, b: a <= b, actual, expected)
    if op == "$in":
        if not isinstance(expected, (list, tuple, set)):
            raise QueryError("$in requires a list")
        return actual in expected
    if op == "$nin":
        if not isinstance(expected, (list, tuple, set)):
            raise QueryError("$nin requires a list")
        return actual not in expected
    if op == "$regex":
        if not isinstance(actual, str):
            return False
        pattern = expected.pattern if isinstance(expected, re.Pattern) else str(expected)
        return re.search(pattern, actual) is not None
    if op == "$mod":
        if (
            not isinstance(expected, (list, tuple))
            or len(expected) != 2
            or not all(isinstance(x, (int, float)) for x in expected)
        ):
            raise QueryError("$mod requires [divisor, remainder]")
        divisor, remainder = expected
        if divisor == 0:
            raise QueryError("$mod divisor must be non-zero")
        if not isinstance(actual, (int, float)) or isinstance(actual, bool):
            return False
        return actual % divisor == remainder
    if op == "$size":
        return isinstance(actual, list) and len(actual) == expected
    if op == "$type":
        if expected not in _TYPE_NAMES:
            raise QueryError(f"unknown $type: {expected!r}")
        python_type = _TYPE_NAMES[expected]
        if python_type is int and isinstance(actual, bool):
            return False
        return isinstance(actual, python_type)
    raise QueryError(f"unknown query operator: {op}")


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, dict) and value and all(
        isinstance(k, str) and k.startswith("$") for k in value
    )


def _match_condition(document: Any, path: str, condition: Any) -> bool:
    """Match one ``field: condition`` pair against *document*."""
    if _is_operator_doc(condition):
        for op, expected in condition.items():
            if op == "$exists":
                if path_exists(document, path) != bool(expected):
                    return False
                continue
            if op == "$not":
                if _match_condition(document, path, expected):
                    return False
                continue
            if op == "$elemMatch":
                value = get_path(document, path)
                if not isinstance(value, list):
                    return False
                if not any(matches(elem, expected) for elem in value if isinstance(elem, dict)):
                    return False
                continue
            if op == "$all":
                if not isinstance(expected, (list, tuple)):
                    raise QueryError("$all requires a list")
                value = get_path(document, path)
                if not isinstance(value, list):
                    return False
                if not all(item in value for item in expected):
                    return False
                continue
            candidates = _values_at(document, path)
            if op in ("$ne", "$nin"):
                # Negated operators must hold for every addressed value and
                # also match when the field is missing (MongoDB semantics).
                if not candidates:
                    continue
                if not all(_match_operator(op, expected, c) for c in candidates):
                    return False
            else:
                if not any(_match_operator(op, expected, c) for c in candidates):
                    return False
        return True
    # Plain equality (possibly against list elements).
    candidates = _values_at(document, path)
    if isinstance(condition, re.Pattern):
        return any(isinstance(c, str) and condition.search(c) for c in candidates)
    return any(c == condition for c in candidates)


def matches(document: Dict[str, Any], query: Dict[str, Any]) -> bool:
    """Return True when *document* satisfies the Mongo-style *query*."""
    if not isinstance(query, dict):
        raise QueryError("query must be a dict")
    for key, condition in query.items():
        if key == "$and":
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QueryError("$and requires a non-empty list")
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QueryError("$or requires a non-empty list")
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QueryError("$nor requires a non-empty list")
            if any(matches(document, sub) for sub in condition):
                return False
        elif key == "$where":
            if not callable(condition):
                raise QueryError("$where requires a callable")
            if not condition(document):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown top-level operator: {key}")
        else:
            if not _match_condition(document, key, condition):
                return False
    return True


def _set_path(document: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    current = document
    for part in parts[:-1]:
        nxt = current.get(part) if isinstance(current, dict) else None
        if not isinstance(nxt, dict):
            nxt = {}
            current[part] = nxt
        current = nxt
    current[parts[-1]] = value


def _unset_path(document: Dict[str, Any], path: str) -> None:
    parts = path.split(".")
    current: Any = document
    for part in parts[:-1]:
        if not isinstance(current, dict) or part not in current:
            return
        current = current[part]
    if isinstance(current, dict):
        current.pop(parts[-1], None)


def _numeric(value: Any, op: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"{op} requires a numeric field, got {type(value).__name__}")
    return value


def apply_update(document: Dict[str, Any], update: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a Mongo-style *update* document to *document* in place.

    An update with no ``$`` operators is a full-document replacement that
    preserves ``_id``, as in MongoDB.
    """
    if not isinstance(update, dict):
        raise QueryError("update must be a dict")
    has_ops = any(k.startswith("$") for k in update)
    if not has_ops:
        doc_id = document.get("_id")
        document.clear()
        document.update(update)
        if doc_id is not None and "_id" not in document:
            document["_id"] = doc_id
        return document

    for op, spec in update.items():
        if not op.startswith("$"):
            raise QueryError("cannot mix operator and replacement updates")
        if not isinstance(spec, dict):
            raise QueryError(f"{op} requires a dict specification")
        for path, value in spec.items():
            if op == "$set":
                _set_path(document, path, value)
            elif op == "$unset":
                _unset_path(document, path)
            elif op == "$inc":
                current = get_path(document, path)
                base = 0 if current is _MISSING else _numeric(current, "$inc")
                _set_path(document, path, base + _numeric(value, "$inc"))
            elif op == "$mul":
                current = get_path(document, path)
                base = 0 if current is _MISSING else _numeric(current, "$mul")
                _set_path(document, path, base * _numeric(value, "$mul"))
            elif op == "$min":
                current = get_path(document, path)
                if current is _MISSING or _compare(lambda a, b: a < b, value, current):
                    _set_path(document, path, value)
            elif op == "$max":
                current = get_path(document, path)
                if current is _MISSING or _compare(lambda a, b: a > b, value, current):
                    _set_path(document, path, value)
            elif op == "$rename":
                current = get_path(document, path)
                if current is not _MISSING:
                    _unset_path(document, path)
                    _set_path(document, str(value), current)
            elif op == "$push":
                current = get_path(document, path)
                if current is _MISSING:
                    _set_path(document, path, [value])
                elif isinstance(current, list):
                    current.append(value)
                else:
                    raise QueryError("$push target is not a list")
            elif op == "$addToSet":
                current = get_path(document, path)
                if current is _MISSING:
                    _set_path(document, path, [value])
                elif isinstance(current, list):
                    if value not in current:
                        current.append(value)
                else:
                    raise QueryError("$addToSet target is not a list")
            elif op == "$pull":
                current = get_path(document, path)
                if isinstance(current, list):
                    if _is_operator_doc(value):
                        current[:] = [
                            item
                            for item in current
                            if not _match_condition({"v": item}, "v", value)
                        ]
                    else:
                        current[:] = [item for item in current if item != value]
            elif op == "$pop":
                current = get_path(document, path)
                if isinstance(current, list) and current:
                    if value == 1:
                        current.pop()
                    elif value == -1:
                        current.pop(0)
                    else:
                        raise QueryError("$pop requires 1 or -1")
            else:
                raise QueryError(f"unknown update operator: {op}")
    return document


def project(document: Dict[str, Any], projection: Optional[Dict[str, int]]) -> Dict[str, Any]:
    """Apply a Mongo-style projection (inclusion or exclusion, not mixed)."""
    if not projection:
        return document
    include_id = projection.get("_id", 1)
    fields = {k: v for k, v in projection.items() if k != "_id"}
    modes = set(fields.values())
    if modes - {0, 1}:
        raise QueryError("projection values must be 0 or 1")
    if len(modes) > 1:
        raise QueryError("cannot mix inclusion and exclusion in a projection")
    if not fields:
        if include_id:
            return document
        return {k: v for k, v in document.items() if k != "_id"}
    if modes == {1}:
        out: Dict[str, Any] = {}
        for path in fields:
            value = get_path(document, path)
            if value is not _MISSING:
                _set_path(out, path, value)
        if include_id and "_id" in document:
            out["_id"] = document["_id"]
        return out
    out = {k: v for k, v in document.items()}
    for path in fields:
        _unset_path(out, path)
    if not include_id:
        out.pop("_id", None)
    return out


def sort_documents(
    documents: Iterable[Dict[str, Any]],
    spec: Sequence,
) -> List[Dict[str, Any]]:
    """Sort documents by a ``[(field, direction), ...]`` specification.

    Missing values sort before present ones on ascending order, after them
    on descending order (approximating BSON's "missing sorts lowest").
    """
    docs = list(documents)
    for field, direction in reversed(list(spec)):
        if direction not in (1, -1):
            raise QueryError("sort direction must be 1 or -1")

        def key(doc: Dict[str, Any]) -> tuple:
            value = get_path(doc, field)
            if value is _MISSING or value is None:
                return (0, "", 0)
            # Group by type name so heterogeneous fields never raise; within
            # a type group the natural ordering applies.
            type_name = "int" if isinstance(value, bool) else type(value).__name__
            if isinstance(value, (list, dict)):
                return (1, type_name, len(value))
            return (1, type_name, value)

        docs.sort(key=key, reverse=(direction == -1))
    return docs
