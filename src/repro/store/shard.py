"""The sharded store engine: hash-partitioned shards behind one facade.

:class:`ShardedCollection` is the scale-out successor to the coarse
single-lock :class:`~repro.store.Collection` (ROADMAP item 2).  Documents
are hash-partitioned across N :class:`Shard` objects by a stable
``sha256`` routing of their ``_id``, each shard owning its own RLock,
field indexes, inverted text index, and (in durable mode) write-ahead
log — so readers and writers on different shards never contend.

**Result parity.** The engine's behavioral contract is bitwise parity
with the legacy collection (asserted by the differential harness in
``tests/store/test_differential.py``): every multi-shard read merges
per-shard results by each document's global *insertion sequence number*,
which reproduces the legacy single-dict iteration order exactly, for any
shard count.

**Durability.** With ``wal_dir`` set, every acknowledged write is framed
into the owning shard's WAL *before* it is applied; checkpoints
serialize a shard's documents to ``shard<k>/checkpoint.json`` via the
temp-file + ``os.replace`` discipline of
:func:`repro.resilience.checkpoint.atomic_write`, then compact the WAL
down to the records newer than the checkpoint's LSN watermark.  A killed
process recovers to exactly the acknowledged-write prefix: torn WAL
tails are discarded, replay is idempotent by LSN, and a crash anywhere
between checkpoint phases leaves either the old or the new state.

**Fault injection.** The kill points exercised by
``tests/store/test_wal_recovery.py`` run through
:func:`repro.resilience.faults.inject` at these sites (``<tag>`` is
``shard00``, ``shard01``, ...)::

    store.wal.append.<tag>        before a WAL append (op not acked)
    store.wal.torn.<tag>          append dies mid-write (torn frame)
    store.checkpoint.begin.<tag>  before the checkpoint starts
    store.checkpoint.snapshot.<tag>  after serialization, before the temp write
    store.checkpoint.swap.<tag>   temp file written, before os.replace
    store.wal.compact.<tag>       checkpoint durable, before compaction

Every injection happens with **no lock held**: the fault plan has its own
witnessed lock, and checking it under a shard lock would create a
runtime lock-order edge the static analyzer cannot derive (the plan
receiver is a local variable inside ``inject``).

**Lock order.** ``ShardedCollection._lock`` (the meta lock, guarding id /
sequence counters and index registries) and ``Shard._lock`` are never
nested — the facade always releases the meta lock before touching a
shard.  Shard-level obs counters are emitted from ``*_locked`` helpers,
which the static lock-order graph resolves, keeping the lockwitness
cross-check green.
"""

from __future__ import annotations

import copy
import hashlib
import heapq
import json
import os
import tempfile
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs
from ..resilience import faults
from ..tools.annotations import guarded_by
from .aggregate import run_pipeline
from .collection import Cursor
from .errors import DuplicateKeyError, QueryError, ValidationError, WALError
from .index import HashIndex, InvertedIndex, plan_index_lookup
from .planner import (
    PLAN_FIELD_INDEX,
    PLAN_ID_LOOKUP,
    PLAN_SCAN,
    PLAN_TEXT_INDEX,
    QueryPlan,
    plan_query,
)
from .query import (
    apply_update,
    get_path,
    matches,
    project,
    text_matches,
    _MISSING,
)

ENGINE_VERSION = 1

#: Default shard count when neither the caller nor the environment says.
SHARDS_ENV = "REPRO_STORE_SHARDS"
DEFAULT_SHARD_COUNT = 4

#: Auto-checkpoint a shard once this many WAL appends accumulate.
DEFAULT_CHECKPOINT_EVERY = 1024


def default_shard_count() -> int:
    """Shard count from ``REPRO_STORE_SHARDS`` (default 4)."""
    raw = os.environ.get(SHARDS_ENV, "")
    count = int(raw) if raw.strip() else DEFAULT_SHARD_COUNT
    if count < 1:
        raise ValueError(f"{SHARDS_ENV} must be >= 1, got {count}")
    return count


def _route_key(doc_id: Any) -> str:
    """Canonical routing string: equal dict keys map to equal strings.

    Python dict keys compare ``1 == 1.0 == True``, so all three must
    route to the same shard or a duplicate ``_id`` could land undetected
    on a different shard.
    """
    if isinstance(doc_id, bool):
        return f"num:{int(doc_id)}"
    if isinstance(doc_id, int):
        return f"num:{doc_id}"
    if isinstance(doc_id, float):
        if doc_id.is_integer():
            return f"num:{int(doc_id)}"
        return f"num:{doc_id!r}"
    if isinstance(doc_id, str):
        return f"str:{doc_id}"
    return f"obj:{doc_id!r}"


def shard_index(doc_id: Any, shard_count: int) -> int:
    """Stable shard for *doc_id*: process-independent sha256 routing.

    ``hash()`` is salted per process, which would scatter a recovered
    store's documents differently from the run that wrote them; sha256
    over the canonical key keeps routing stable across processes,
    restarts, and platforms.
    """
    if shard_count == 1:
        return 0
    digest = hashlib.sha256(_route_key(doc_id).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % shard_count


def _encode_doc(value: Any) -> Any:
    # Imported lazily: repro.resilience.codecs pulls repro.core, which
    # imports repro.store back — fine at call time, a cycle at import time.
    from ..resilience.codecs import encode_json_value

    return encode_json_value(value)


def _decode_doc(value: Any) -> Any:
    from ..resilience.codecs import decode_json_value

    return decode_json_value(value)


@guarded_by(
    "_lock",
    "_docs",
    "_seqs",
    "_indexes",
    "_inverted",
    "_text_fields",
    "_lsn",
    "_appended",
    "_ckpt_busy",
)
class Shard:
    """One hash partition: documents, indexes, WAL, and its own lock.

    All public methods take and release ``self._lock``; ``*_locked``
    helpers assume the caller holds it.  The shard never calls back into
    the owning collection and never touches another shard, so shard
    locks are leaves of the lock-order graph (their only outgoing edge
    is to the obs registry).
    """

    def __init__(
        self,
        index: int,
        collection_name: str,
        wal_path: Optional[str] = None,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        from .wal import ShardWAL

        self.index = index
        self.tag = f"shard{index:02d}"
        self.collection_name = collection_name
        self._lock = threading.RLock()
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._seqs: Dict[Any, int] = {}
        self._indexes: Dict[str, HashIndex] = {}
        self._inverted: Optional[InvertedIndex] = None
        self._text_fields: Tuple[str, ...] = ()
        self._lsn = 0
        self._appended = 0
        self._ckpt_busy = False
        if wal_path:
            self._wal: Optional[ShardWAL] = ShardWAL(wal_path)
        else:
            self._wal = None
        self._ckpt_path = checkpoint_path

    # -- write path ---------------------------------------------------------

    def insert(
        self,
        doc: Dict[str, Any],
        seq: int,
        next_id_hint: Optional[int],
        validator: Optional[Callable[[Dict[str, Any]], bool]],
        torn: Optional[BaseException] = None,
    ) -> None:
        """Insert an already-routed, already-copied document."""
        with self._lock:
            if doc["_id"] in self._docs:
                raise DuplicateKeyError(doc["_id"])
            self._validate_locked(doc, validator)
            self._log_locked("put", doc["_id"], doc, seq, next_id_hint, torn)
            self._apply_put_locked(doc, seq)

    def update_by_id(
        self,
        doc_id: Any,
        update: Dict[str, Any],
        plan: QueryPlan,
        validator: Optional[Callable[[Dict[str, Any]], bool]],
        torn: Optional[BaseException] = None,
    ) -> bool:
        """Re-verify *plan* against the live document, then update it.

        Returns False when the document vanished or stopped matching
        between the caller's scan and this call (the facade retries).
        The update is applied to a copy and swapped in whole, so a
        failing update operator never leaves a half-updated document.
        """
        with self._lock:
            doc = self._docs.get(doc_id)
            if doc is None or not self._doc_matches_locked(plan, doc):
                return False
            new_doc = copy.deepcopy(doc)
            apply_update(new_doc, update)
            self._validate_locked(new_doc, validator)
            self._log_locked("put", doc_id, new_doc, self._seqs[doc_id], None, torn)
            self._replace_doc_locked(doc_id, new_doc)
            return True

    def update_matching(
        self,
        plan: QueryPlan,
        update: Dict[str, Any],
        validator: Optional[Callable[[Dict[str, Any]], bool]],
        torn: Optional[BaseException] = None,
    ) -> int:
        """Update every matching document in this shard; returns the count."""
        with self._lock:
            targets = [doc_id for doc_id, _doc in self._matching_locked(plan)]
            for doc_id in targets:
                new_doc = copy.deepcopy(self._docs[doc_id])
                apply_update(new_doc, update)
                self._validate_locked(new_doc, validator)
                self._log_locked(
                    "put", doc_id, new_doc, self._seqs[doc_id], None, torn
                )
                self._replace_doc_locked(doc_id, new_doc)
            return len(targets)

    def replace_by_id(
        self,
        doc_id: Any,
        replacement: Dict[str, Any],
        plan: QueryPlan,
        validator: Optional[Callable[[Dict[str, Any]], bool]],
        torn: Optional[BaseException] = None,
    ) -> bool:
        """Wholesale-replace one document (keeps ``_id`` and sequence)."""
        with self._lock:
            doc = self._docs.get(doc_id)
            if doc is None or not self._doc_matches_locked(plan, doc):
                return False
            new_doc = copy.deepcopy(replacement)
            new_doc["_id"] = doc_id
            self._validate_locked(new_doc, validator)
            self._log_locked("put", doc_id, new_doc, self._seqs[doc_id], None, torn)
            self._replace_doc_locked(doc_id, new_doc)
            return True

    def delete_by_id(
        self, doc_id: Any, plan: QueryPlan, torn: Optional[BaseException] = None
    ) -> bool:
        """Re-verify *plan*, then delete the document."""
        with self._lock:
            doc = self._docs.get(doc_id)
            if doc is None or not self._doc_matches_locked(plan, doc):
                return False
            self._log_locked("del", doc_id, None, self._seqs[doc_id], None, torn)
            self._remove_doc_locked(doc_id)
            return True

    def delete_matching(
        self, plan: QueryPlan, torn: Optional[BaseException] = None
    ) -> int:
        """Delete every matching document in this shard; returns the count."""
        with self._lock:
            targets = [doc_id for doc_id, _doc in self._matching_locked(plan)]
            for doc_id in targets:
                self._log_locked(
                    "del", doc_id, None, self._seqs[doc_id], None, torn
                )
                self._remove_doc_locked(doc_id)
            return len(targets)

    # -- locked write helpers ----------------------------------------------

    def _validate_locked(
        self,
        doc: Dict[str, Any],
        validator: Optional[Callable[[Dict[str, Any]], bool]],
    ) -> None:
        if validator is not None and not validator(doc):
            raise ValidationError(
                f"document failed validation for collection "
                f"{self.collection_name!r}"
            )

    def _log_locked(
        self,
        op: str,
        doc_id: Any,
        doc: Optional[Dict[str, Any]],
        seq: int,
        next_id_hint: Optional[int],
        torn: Optional[BaseException],
    ) -> None:
        """Frame the operation into the WAL before it is applied.

        With *torn* set (the ``store.wal.torn.*`` kill point), a partial
        frame is written and the fault re-raised: the op is neither
        acknowledged nor applied, and recovery discards the tear.
        """
        if self._wal is None:
            return
        self._lsn += 1
        record: Dict[str, Any] = {
            "lsn": self._lsn,
            "op": op,
            "id": _encode_doc(doc_id),
            "seq": seq,
        }
        if doc is not None:
            record["doc"] = _encode_doc(doc)
        if next_id_hint is not None:
            record["nid"] = next_id_hint
        if torn is not None:
            self._wal.append_torn(record)
            raise torn
        self._wal.append(record)
        self._appended += 1

    def _apply_put_locked(self, doc: Dict[str, Any], seq: int) -> None:
        self._docs[doc["_id"]] = doc
        self._seqs[doc["_id"]] = seq
        for index in self._indexes.values():
            index.add(doc["_id"], doc)
        if self._inverted is not None:
            self._inverted.add(doc["_id"], doc)

    def _replace_doc_locked(self, doc_id: Any, new_doc: Dict[str, Any]) -> None:
        # Same-key assignment keeps the dict position; the sequence
        # number is untouched, so updates never reorder scans.
        self._docs[doc_id] = new_doc
        for index in self._indexes.values():
            index.update(doc_id, new_doc)
        if self._inverted is not None:
            self._inverted.update(doc_id, new_doc)

    def _remove_doc_locked(self, doc_id: Any) -> None:
        self._docs.pop(doc_id, None)
        self._seqs.pop(doc_id, None)
        for index in self._indexes.values():
            index.remove(doc_id)
        if self._inverted is not None:
            self._inverted.remove(doc_id)

    # -- read path ----------------------------------------------------------

    def _matching_locked(
        self, plan: QueryPlan
    ) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        """Yield live ``(doc_id, doc)`` pairs matching *plan*.

        The access path follows the plan kind, falling back to a scan
        when this shard lacks the planned index (a create-index race);
        candidates are always re-verified against the residual filter,
        so a degraded path changes cost, never results.
        """
        text_resolved = False
        pool: Iterable[Tuple[Any, Dict[str, Any]]]
        if plan.kind == PLAN_ID_LOOKUP:
            doc = self._docs.get(plan.id_value)
            pool = [] if doc is None else [(plan.id_value, doc)]
        elif plan.kind == PLAN_TEXT_INDEX and self._inverted is not None:
            assert plan.text is not None
            ids = self._inverted.lookup(plan.text.terms, plan.text.mode)
            pool = [(i, self._docs[i]) for i in ids if i in self._docs]
            text_resolved = True
        elif plan.kind == PLAN_FIELD_INDEX:
            ids = plan_index_lookup(plan.residual, self._indexes)
            if ids is None:
                pool = self._docs.items()
            else:
                pool = [(i, self._docs[i]) for i in ids if i in self._docs]
        else:
            pool = self._docs.items()
        for doc_id, doc in pool:
            if plan.residual and not matches(doc, plan.residual):
                continue
            if plan.text is not None and not text_resolved:
                if not text_matches(doc, self._text_fields, plan.text):
                    continue
            yield doc_id, doc

    def _doc_matches_locked(self, plan: QueryPlan, doc: Dict[str, Any]) -> bool:
        """Full predicate re-check against a live document (no index trust)."""
        if plan.residual and not matches(doc, plan.residual):
            return False
        if plan.text is not None:
            return text_matches(doc, self._text_fields, plan.text)
        return True

    def collect(self, plan: QueryPlan) -> List[Tuple[int, Dict[str, Any]]]:
        """Matching documents as ``(seq, deep copy)`` pairs, sequence-ordered."""
        with self._lock:
            out = [
                (self._seqs[doc_id], copy.deepcopy(doc))
                for doc_id, doc in self._matching_locked(plan)
            ]
        out.sort(key=lambda pair: pair[0])
        return out

    def first_match(self, plan: QueryPlan) -> Optional[Tuple[int, Any]]:
        """The lowest-sequence match as ``(seq, doc_id)``, or None."""
        with self._lock:
            best: Optional[Tuple[int, Any]] = None
            for doc_id, _doc in self._matching_locked(plan):
                seq = self._seqs[doc_id]
                if best is None or seq < best[0]:
                    best = (seq, doc_id)
            return best

    def count_matching(self, plan: QueryPlan) -> int:
        """Number of matching documents (no copies)."""
        with self._lock:
            return sum(1 for _ in self._matching_locked(plan))

    def doc_count(self) -> int:
        """Number of documents resident in this shard."""
        with self._lock:
            return len(self._docs)

    def appended(self) -> int:
        """WAL appends since the last completed checkpoint."""
        with self._lock:
            return self._appended

    # -- indexes ------------------------------------------------------------

    def create_field_index(self, field: str) -> None:
        """Build (or rebuild) this shard's hash index on *field*."""
        with self._lock:
            index = HashIndex(field)
            index.rebuild(self._docs)
            self._indexes[field] = index

    def drop_field_index(self, field: str) -> None:
        """Drop this shard's hash index on *field* if present."""
        with self._lock:
            self._indexes.pop(field, None)

    def set_text_index(self, fields: Sequence[str], indexed: bool) -> None:
        """Declare text fields; build posting lists when *indexed*."""
        with self._lock:
            self._text_fields = tuple(fields)
            if indexed:
                inverted = InvertedIndex(fields)
                inverted.rebuild(self._docs)
                self._inverted = inverted
            else:
                self._inverted = None

    # -- checkpoint / recovery ----------------------------------------------

    def checkpoint(self, next_id_hint: int) -> bool:
        """Write an atomic checkpoint, then compact the WAL behind it.

        Phases (fault-injection sites fire between them, never under the
        lock): serialize under the lock → write a same-directory temp
        file → ``os.replace`` → compact.  A crash at any point leaves
        either the previous checkpoint + full WAL or the new checkpoint
        (+ possibly uncompacted WAL, which replay skips by LSN).
        """
        if self._wal is None or self._ckpt_path is None:
            return False
        with self._lock:
            if self._ckpt_busy:
                return False
            self._ckpt_busy = True
        try:
            faults.inject(f"store.checkpoint.begin.{self.tag}")
            with self._lock:
                payload = self._snapshot_payload_locked(next_id_hint)
                watermark = self._lsn
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            faults.inject(f"store.checkpoint.snapshot.{self.tag}")
            directory = os.path.dirname(self._ckpt_path) or "."
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                faults.inject(f"store.checkpoint.swap.{self.tag}")
                os.replace(tmp, self._ckpt_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            faults.inject(f"store.wal.compact.{self.tag}")
            with self._lock:
                self._compact_locked(watermark)
            return True
        finally:
            with self._lock:
                self._ckpt_busy = False

    def _snapshot_payload_locked(self, next_id_hint: int) -> Dict[str, Any]:
        return {
            "version": ENGINE_VERSION,
            "shard": self.index,
            "lsn": self._lsn,
            "next_id": next_id_hint,
            "docs": [
                [self._seqs[doc_id], _encode_doc(doc)]
                for doc_id, doc in self._docs.items()
            ],
        }

    def _compact_locked(self, watermark: int) -> None:
        assert self._wal is not None
        self._wal.compact(watermark)
        self._appended = 0
        obs.counter("store.wal.compactions").inc()
        obs.counter("store.checkpoints").inc()

    def recover(self) -> Tuple[int, int]:
        """Load checkpoint + replay the WAL; returns ``(max_seq, next_id)``.

        ``max_seq`` is -1 and ``next_id`` 1 when the shard held nothing.
        Raises :class:`WALError` on a corrupt checkpoint file — only WAL
        *tails* are expendable; a damaged checkpoint means data loss the
        engine must not silently absorb.
        """
        with self._lock:
            return self._recover_locked()

    def _recover_locked(self) -> Tuple[int, int]:
        max_seq = -1
        next_id = 1
        watermark = 0
        if self._ckpt_path and os.path.exists(self._ckpt_path):
            try:
                with open(self._ckpt_path, "rb") as handle:
                    payload = json.loads(handle.read().decode("utf-8"))
                watermark = int(payload["lsn"])
                next_id = int(payload.get("next_id", 1))
                entries = payload["docs"]
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                raise WALError(
                    f"corrupt shard checkpoint {self._ckpt_path!r}: {exc}"
                ) from exc
            for seq, encoded in entries:
                doc = _decode_doc(encoded)
                self._docs[doc["_id"]] = doc
                self._seqs[doc["_id"]] = int(seq)
                max_seq = max(max_seq, int(seq))
            self._lsn = watermark
        if self._wal is not None:
            records = self._wal.replay()
            if self._wal.torn_tail:
                obs.counter("store.wal.torn_records").inc()
            applied = 0
            for record in records:
                lsn = int(record["lsn"])
                if lsn <= watermark:
                    continue
                self._lsn = max(self._lsn, lsn)
                doc_id = _decode_doc(record["id"])
                if record["op"] == "put":
                    doc = _decode_doc(record["doc"])
                    seq = int(record["seq"])
                    self._docs[doc_id] = doc
                    self._seqs[doc_id] = seq
                    max_seq = max(max_seq, seq)
                elif record["op"] == "del":
                    self._docs.pop(doc_id, None)
                    self._seqs.pop(doc_id, None)
                else:
                    raise WALError(
                        f"unknown WAL op {record['op']!r} in {self._wal.path!r}"
                    )
                next_id = max(next_id, int(record.get("nid", 1)))
                applied += 1
            self._appended = applied
            obs.counter("store.wal.replayed").inc(applied)
        if self._seqs:
            max_seq = max(max_seq, max(self._seqs.values()))
        return max_seq, next_id

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()


@guarded_by(
    "_lock",
    "_next_id",
    "_next_seq",
    "_version",
    "_field_index_names",
    "_text_field_names",
    "_text_indexed",
    "_dumped",
)
class ShardedCollection:
    """Drop-in :class:`~repro.store.Collection` replacement, sharded.

    The facade owns only cross-shard coordination state under its meta
    lock — the ``_id`` counter, the global insertion-sequence counter,
    the mutation version (for dirty-tracked persistence), and the index
    registries.  Documents live in the shards.  The meta lock is never
    held across a shard call, so the two lock levels never nest.

    With *wal_dir* set the collection is durable: an ``engine.json``
    manifest pins the shard count and index definitions, and each shard
    keeps ``wal.log`` + ``checkpoint.json`` under ``wal_dir/shard<k>/``.
    Re-opening a :class:`ShardedCollection` on the same directory
    recovers exactly the acknowledged writes.

    Multi-document operations (``insert_many``, ``update_many``,
    ``delete_many``) are atomic per shard but not across shards: a crash
    mid-operation can persist the writes already routed to some shards.
    Single-document operations are atomic.
    """

    def __init__(
        self,
        name: str,
        shard_count: Optional[int] = None,
        validator: Optional[Callable[[Dict[str, Any]], bool]] = None,
        wal_dir: Optional[str] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._validator = validator
        self._wal_dir = wal_dir
        self._checkpoint_every = checkpoint_every
        self._next_id = 1
        self._next_seq = 0
        self._version = 0
        self._dumped: Dict[str, int] = {}
        self._field_index_names: Tuple[str, ...] = ()
        self._text_field_names: Tuple[str, ...] = ()
        self._text_indexed = False

        manifest: Optional[Dict[str, Any]] = None
        if wal_dir:
            os.makedirs(wal_dir, exist_ok=True)
            manifest = self._read_manifest()
            if manifest is not None:
                on_disk = int(manifest["shards"])
                if shard_count is not None and shard_count != on_disk:
                    raise WALError(
                        f"collection {name!r} was created with {on_disk} "
                        f"shards; cannot reopen with {shard_count}"
                    )
                shard_count = on_disk
        if shard_count is None:
            shard_count = default_shard_count()
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")

        self._shards: Tuple[Shard, ...] = tuple(
            Shard(
                i,
                name,
                wal_path=(
                    os.path.join(wal_dir, f"shard{i:02d}", "wal.log")
                    if wal_dir
                    else None
                ),
                checkpoint_path=(
                    os.path.join(wal_dir, f"shard{i:02d}", "checkpoint.json")
                    if wal_dir
                    else None
                ),
            )
            for i in range(shard_count)
        )

        if wal_dir:
            if manifest is not None:
                self._field_index_names = tuple(manifest.get("field_indexes", ()))
                self._text_field_names = tuple(manifest.get("text_fields", ()))
                self._text_indexed = bool(manifest.get("text_indexed", False))
            max_seq = -1
            next_id = 1
            for shard in self._shards:
                shard_seq, shard_next = shard.recover()
                max_seq = max(max_seq, shard_seq)
                next_id = max(next_id, shard_next)
            self._next_seq = max_seq + 1
            self._next_id = next_id
            for field in self._field_index_names:
                for shard in self._shards:
                    shard.create_field_index(field)
            if self._text_field_names:
                for shard in self._shards:
                    shard.set_text_index(self._text_field_names, self._text_indexed)
            self._write_manifest()

    # -- basic properties ---------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of hash partitions backing this collection."""
        return len(self._shards)

    def __len__(self) -> int:
        return sum(shard.doc_count() for shard in self._shards)

    def __repr__(self) -> str:
        return (
            f"ShardedCollection({self.name!r}, {len(self)} docs, "
            f"{self.shard_count} shards)"
        )

    def _shard_for(self, doc_id: Any) -> Shard:
        return self._shards[shard_index(doc_id, len(self._shards))]

    def _shards_for_plan(self, plan: QueryPlan) -> Tuple[Shard, ...]:
        """The shards a plan must visit (one for ``id_lookup``, else all)."""
        if plan.kind == PLAN_ID_LOOKUP:
            return (self._shard_for(plan.id_value),)
        return self._shards

    def _plan(self, query: Optional[Dict[str, Any]]) -> QueryPlan:
        with self._lock:
            indexed = self._field_index_names
            text_fields = self._text_field_names
            text_indexed = self._text_indexed
        return plan_query(
            query,
            indexed_fields=indexed,
            text_fields=text_fields,
            text_indexed=text_indexed,
        )

    def _scan_plan(self) -> QueryPlan:
        """An unconditional scan-all plan (not counted in ``store.plan.*``)."""
        return QueryPlan(kind=PLAN_SCAN, residual={})

    def _merged(
        self, plan: QueryPlan
    ) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Matching ``(seq, doc copy)`` pairs across shards, in global order."""
        collected = [shard.collect(plan) for shard in self._shards_for_plan(plan)]
        return heapq.merge(*collected, key=lambda pair: pair[0])

    def _bump_version(self) -> None:
        with self._lock:
            self._version += 1

    # -- durability plumbing ------------------------------------------------

    @property
    def _durable(self) -> bool:
        return self._wal_dir is not None

    def _manifest_path(self) -> str:
        assert self._wal_dir is not None
        return os.path.join(self._wal_dir, "engine.json")

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        path = self._manifest_path()
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
            if int(manifest["version"]) != ENGINE_VERSION:
                raise WALError(
                    f"engine manifest {path!r} has version "
                    f"{manifest['version']}, expected {ENGINE_VERSION}"
                )
            int(manifest["shards"])
        except WALError:
            raise
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise WALError(f"corrupt engine manifest {path!r}: {exc}") from exc
        return manifest

    def _write_manifest(self) -> None:
        if not self._durable:
            return
        # Same atomic temp-file + rename discipline as the resilience
        # checkpoint store (imported from it, not reimplemented).
        from ..resilience.checkpoint import atomic_write

        with self._lock:
            payload = {
                "version": ENGINE_VERSION,
                "name": self.name,
                "shards": len(self._shards),
                "field_indexes": list(self._field_index_names),
                "text_fields": list(self._text_field_names),
                "text_indexed": self._text_indexed,
            }
        atomic_write(
            self._manifest_path(),
            json.dumps(payload, sort_keys=True, indent=2).encode("utf-8"),
        )

    def _wal_gate(self, shard: Shard) -> Optional[BaseException]:
        """Fault kill points guarding the next WAL append on *shard*.

        ``store.wal.append.*`` raises here — before any byte is written,
        so the op is neither acked, applied, nor durable.
        ``store.wal.torn.*`` is returned instead of raised: the shard
        writes a half frame and then re-raises it, modeling a crash
        mid-``write``.  Both injections run with no lock held.
        """
        if not self._durable:
            return None
        faults.inject(f"store.wal.append.{shard.tag}")
        try:
            faults.inject(f"store.wal.torn.{shard.tag}")
        except faults.FaultError as exc:
            return exc
        return None

    def _maybe_checkpoint(self, shard: Shard) -> None:
        """Auto-checkpoint *before* the triggering append, so a faulting
        checkpoint aborts the op while it is still unacknowledged."""
        if not self._durable or self._checkpoint_every <= 0:
            return
        if shard.appended() >= self._checkpoint_every:
            self._checkpoint_shard(shard)

    def _checkpoint_shard(self, shard: Shard) -> bool:
        with self._lock:
            next_id_hint = self._next_id
        return shard.checkpoint(next_id_hint)

    def checkpoint(self) -> int:
        """Checkpoint every shard now; returns how many were written."""
        if not self._durable:
            return 0
        count = 0
        for shard in self._shards:
            if self._checkpoint_shard(shard):
                count += 1
        return count

    def close(self) -> None:
        """Release WAL file handles (the store stays usable; they reopen)."""
        for shard in self._shards:
            shard.close()

    # -- writes -------------------------------------------------------------

    def insert_one(self, document: Dict[str, Any]) -> Any:
        """Insert one document; returns its ``_id``."""
        if not isinstance(document, dict):
            raise QueryError("documents must be dicts")
        doc = copy.deepcopy(document)
        with self._lock:
            next_id_hint: Optional[int] = None
            if "_id" not in doc:
                doc["_id"] = self._next_id
                self._next_id += 1
                next_id_hint = self._next_id
            elif isinstance(doc["_id"], int) and doc["_id"] >= self._next_id:
                # An explicit integer _id (snapshot restore, bulk import)
                # must advance the auto-id counter, or the next
                # auto-assigned insert would collide with it.  The hint
                # is WAL-logged so crash recovery keeps the advance.
                self._next_id = doc["_id"] + 1
                next_id_hint = self._next_id
            seq = self._next_seq
            self._next_seq += 1
            self._version += 1
        shard = self._shard_for(doc["_id"])
        self._maybe_checkpoint(shard)
        torn = self._wal_gate(shard)
        shard.insert(doc, seq, next_id_hint, self._validator, torn)
        obs.counter("store.inserts").inc()
        return doc["_id"]

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> List[Any]:
        """Insert many documents; returns their ``_id``s."""
        return [self.insert_one(doc) for doc in documents]

    def update_one(self, query: Dict[str, Any], update: Dict[str, Any]) -> int:
        """Apply *update* to the first (lowest-sequence) match."""
        plan = self._plan(query)
        while True:
            target = self._first_match(plan)
            if target is None:
                return 0
            _seq, doc_id, shard = target
            self._maybe_checkpoint(shard)
            torn = self._wal_gate(shard)
            if shard.update_by_id(doc_id, update, plan, self._validator, torn):
                self._bump_version()
                obs.counter("store.updates").inc()
                return 1
            # Raced with a concurrent writer between scan and apply; rescan.

    def update_many(self, query: Dict[str, Any], update: Dict[str, Any]) -> int:
        """Apply *update* to every match; returns the count."""
        plan = self._plan(query)
        count = 0
        for shard in self._shards_for_plan(plan):
            self._maybe_checkpoint(shard)
            torn = self._wal_gate(shard)
            count += shard.update_matching(plan, update, self._validator, torn)
        if count:
            self._bump_version()
        obs.counter("store.updates").inc(count)
        return count

    def replace_one(
        self, query: Dict[str, Any], replacement: Dict[str, Any]
    ) -> int:
        """Replace the first match wholesale; returns 1 if replaced."""
        plan = self._plan(query)
        while True:
            target = self._first_match(plan)
            if target is None:
                return 0
            _seq, doc_id, shard = target
            self._maybe_checkpoint(shard)
            torn = self._wal_gate(shard)
            if shard.replace_by_id(
                doc_id, replacement, plan, self._validator, torn
            ):
                self._bump_version()
                return 1

    def delete_one(self, query: Dict[str, Any]) -> int:
        """Delete the first (lowest-sequence) match; returns 0 or 1."""
        plan = self._plan(query)
        while True:
            target = self._first_match(plan)
            if target is None:
                return 0
            _seq, doc_id, shard = target
            self._maybe_checkpoint(shard)
            torn = self._wal_gate(shard)
            if shard.delete_by_id(doc_id, plan, torn):
                self._bump_version()
                obs.counter("store.deletes").inc()
                return 1

    def delete_many(self, query: Dict[str, Any]) -> int:
        """Delete every match; returns the count."""
        plan = self._plan(query)
        count = 0
        for shard in self._shards_for_plan(plan):
            self._maybe_checkpoint(shard)
            torn = self._wal_gate(shard)
            count += shard.delete_matching(plan, torn)
        if count:
            self._bump_version()
        obs.counter("store.deletes").inc(count)
        return count

    def _first_match(
        self, plan: QueryPlan
    ) -> Optional[Tuple[int, Any, Shard]]:
        """The globally lowest-sequence match as ``(seq, doc_id, shard)``."""
        best: Optional[Tuple[int, Any, Shard]] = None
        for shard in self._shards_for_plan(plan):
            found = shard.first_match(plan)
            if found is not None and (best is None or found[0] < best[0]):
                best = (found[0], found[1], shard)
        return best

    # -- reads --------------------------------------------------------------

    def find(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
    ) -> Cursor:
        """Query the collection; returns a chainable :class:`Cursor`."""
        frozen = dict(query or {})
        obs.counter("store.queries").inc()

        def producer() -> Iterable[Dict[str, Any]]:
            plan = self._plan(frozen)
            return [
                project(doc, projection) for _seq, doc in self._merged(plan)
            ]

        return Cursor(producer)

    def find_one(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, Any]]:
        """First matching document, or None."""
        for doc in self.find(query, projection).limit(1):
            return doc
        return None

    def count_documents(self, query: Optional[Dict[str, Any]] = None) -> int:
        """Count documents matching *query* (all when None)."""
        if not query:
            return len(self)
        plan = self._plan(query)
        return sum(
            shard.count_matching(plan) for shard in self._shards_for_plan(plan)
        )

    def distinct(
        self, field: str, query: Optional[Dict[str, Any]] = None
    ) -> List[Any]:
        """Distinct values of *field* across matching documents."""
        plan = self._plan(dict(query or {}))
        seen: List[Any] = []
        for _seq, doc in self._merged(plan):
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if v not in seen:
                    seen.append(v)
        return seen

    # -- indexes ------------------------------------------------------------

    def create_index(self, field: str) -> str:
        """Create (or refresh) a hash index on a dotted *field* path."""
        with self._lock:
            if field not in self._field_index_names:
                self._field_index_names = self._field_index_names + (field,)
        for shard in self._shards:
            shard.create_field_index(field)
        self._write_manifest()
        obs.counter("store.index_builds").inc()
        return field

    def drop_index(self, field: str) -> None:
        """Remove the index on *field* if present."""
        with self._lock:
            self._field_index_names = tuple(
                f for f in self._field_index_names if f != field
            )
        for shard in self._shards:
            shard.drop_field_index(field)
        self._write_manifest()

    def list_indexes(self) -> List[str]:
        """Names of the indexed fields."""
        with self._lock:
            return list(self._field_index_names)

    def create_text_index(self, *fields: str) -> Tuple[str, ...]:
        """Build an inverted index over *fields* to serve ``$text`` queries."""
        if not fields:
            raise QueryError("create_text_index requires at least one field")
        with self._lock:
            self._text_field_names = tuple(fields)
            self._text_indexed = True
        for shard in self._shards:
            shard.set_text_index(fields, indexed=True)
        self._write_manifest()
        obs.counter("store.index_builds").inc()
        return tuple(fields)

    def declare_text_fields(self, *fields: str) -> Tuple[str, ...]:
        """Declare ``$text`` fields WITHOUT an inverted index (scan mode).

        The reference path: queries tokenize every candidate document.
        Exists so the store benchmark (and the differential harness) can
        compare index-resolved against scan-resolved text search on the
        same engine.
        """
        if not fields:
            raise QueryError("declare_text_fields requires at least one field")
        with self._lock:
            self._text_field_names = tuple(fields)
            self._text_indexed = False
        for shard in self._shards:
            shard.set_text_index(fields, indexed=False)
        self._write_manifest()
        return tuple(fields)

    def text_fields(self) -> Tuple[str, ...]:
        """The declared ``$text`` fields (empty when none)."""
        with self._lock:
            return self._text_field_names

    # -- aggregation --------------------------------------------------------

    def aggregate(self, pipeline: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run an aggregation pipeline (see :mod:`repro.store.aggregate`)."""
        obs.counter("store.aggregates").inc()
        docs = [doc for _seq, doc in self._merged(self._scan_plan())]
        return run_pipeline(docs, pipeline)

    # -- persistence --------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write every document as one JSON line; returns the count.

        Dirty-tracked: when nothing changed since the last dump to the
        same *path*, the file is left untouched (``store.dump.skipped``
        counts these; ``store.dump.written`` counts real writes).
        """
        key = os.path.abspath(path)
        with self._lock:
            version = self._version
            dumped = self._dumped.get(key)
        if dumped == version and os.path.exists(path):
            obs.counter("store.dump.skipped").inc()
            return len(self)
        lines = [
            json.dumps(doc, default=str)
            for _seq, doc in self._merged(self._scan_plan())
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        with self._lock:
            self._dumped[key] = version
        obs.counter("store.dump.written").inc()
        return len(lines)

    def load_jsonl(self, path: str) -> int:
        """Load documents from a JSONL file; returns the count inserted."""
        count = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                self.insert_one(json.loads(line))
                count += 1
        return count
