"""Embedded document store — the reproduction's MongoDB substitute.

The paper (§4.1) stores collected news articles and tweets, the three
preprocessed corpora, and detected events in MongoDB.  This package gives
the pipeline the same surface in-process: collections of dict documents,
Mongo-style queries/updates (including ``$text`` search), secondary hash
indexes and an inverted text index, a small aggregation pipeline, and
JSONL persistence.

Two engines share that surface:

:class:`Collection`
    The legacy single-lock engine — one dict, one RLock.  Kept as the
    differential-testing reference (``tests/store/test_differential.py``).
:class:`ShardedCollection`
    The sharded engine — hash-partitioned shards with per-shard locks,
    optional per-shard write-ahead logs with checkpoint/compaction, and
    a query planner (see ``docs/store.md``).  :class:`Database` hands
    out sharded collections.
"""

from .collection import Collection, Cursor
from .database import Database
from .errors import (
    CollectionNotFound,
    DuplicateKeyError,
    QueryError,
    StoreError,
    ValidationError,
    WALError,
)
from .index import HashIndex, InvertedIndex
from .planner import QueryPlan, plan_query
from .query import (
    TextQuery,
    apply_update,
    matches,
    parse_text_query,
    project,
    sort_documents,
    tokenize,
)

# Imported last: shard.py depends on collection/planner/index above.
from .shard import ShardedCollection, default_shard_count, shard_index
from .wal import ShardWAL

__all__ = [
    "Collection",
    "ShardedCollection",
    "Cursor",
    "Database",
    "HashIndex",
    "InvertedIndex",
    "ShardWAL",
    "QueryPlan",
    "TextQuery",
    "StoreError",
    "DuplicateKeyError",
    "QueryError",
    "CollectionNotFound",
    "ValidationError",
    "WALError",
    "matches",
    "apply_update",
    "project",
    "sort_documents",
    "tokenize",
    "parse_text_query",
    "plan_query",
    "shard_index",
    "default_shard_count",
]
