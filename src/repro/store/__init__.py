"""Embedded document store — the reproduction's MongoDB substitute.

The paper (§4.1) stores collected news articles and tweets, the three
preprocessed corpora, and detected events in MongoDB.  This package gives
the pipeline the same surface in-process: collections of dict documents,
Mongo-style queries/updates, secondary hash indexes, a small aggregation
pipeline, and JSONL persistence.
"""

from .collection import Collection, Cursor
from .database import Database
from .errors import (
    CollectionNotFound,
    DuplicateKeyError,
    QueryError,
    StoreError,
    ValidationError,
)
from .index import HashIndex
from .query import apply_update, matches, project, sort_documents

__all__ = [
    "Collection",
    "Cursor",
    "Database",
    "HashIndex",
    "StoreError",
    "DuplicateKeyError",
    "QueryError",
    "CollectionNotFound",
    "ValidationError",
    "matches",
    "apply_update",
    "project",
    "sort_documents",
]
