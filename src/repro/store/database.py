"""Database object grouping named collections, with disk snapshots.

Stands in for the MongoDB instance in the paper's architecture (§4.1).
A :class:`Database` is a namespace of :class:`~repro.store.Collection`
objects plus whole-database JSONL snapshot/restore, which the examples use
to persist generated corpora between runs.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional

from ..tools.annotations import guarded_by
from .collection import Collection
from .errors import CollectionNotFound


@guarded_by("_lock", "_collections")
class Database:
    """A named set of collections.

    Collections are created lazily on first access, mirroring MongoDB:

    >>> db = Database("news_diffusion")
    >>> db["tweets"].insert_one({"text": "hello"})
    1
    >>> db.list_collections()
    ['tweets']
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._lock = threading.RLock()
        self._collections: Dict[str, Collection] = {}

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._collections

    def collection(
        self,
        name: str,
        validator: Optional[Callable[[dict], bool]] = None,
    ) -> Collection:
        """Get or create the collection called *name*."""
        with self._lock:
            if name not in self._collections:
                self._collections[name] = Collection(name, validator=validator)
            return self._collections[name]

    def list_collections(self) -> List[str]:
        """Sorted names of the existing collections."""
        with self._lock:
            return sorted(self._collections.keys())

    def drop_collection(self, name: str) -> None:
        """Delete a collection and its documents if it exists."""
        with self._lock:
            if name not in self._collections:
                raise CollectionNotFound(name)
            del self._collections[name]

    def drop_all(self) -> None:
        """Delete every collection."""
        with self._lock:
            self._collections.clear()

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, directory: str) -> Dict[str, int]:
        """Dump every collection to ``<directory>/<collection>.jsonl``."""
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            collections = list(self._collections.items())
        counts: Dict[str, int] = {}
        for name, coll in collections:
            counts[name] = coll.dump_jsonl(os.path.join(directory, f"{name}.jsonl"))
        return counts

    def restore(self, directory: str) -> Dict[str, int]:
        """Load every ``*.jsonl`` file in *directory* as a collection."""
        if not os.path.isdir(directory):
            raise CollectionNotFound(directory)
        counts: Dict[str, int] = {}
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".jsonl"):
                continue
            name = filename[: -len(".jsonl")]
            counts[name] = self.collection(name).load_jsonl(
                os.path.join(directory, filename)
            )
        return counts

    def stats(self) -> Dict[str, int]:
        """Document counts by collection."""
        with self._lock:
            collections = list(self._collections.items())
        return {name: len(coll) for name, coll in collections}
