"""Database object grouping named collections, with disk snapshots.

Stands in for the MongoDB instance in the paper's architecture (§4.1).
A :class:`Database` is a namespace of sharded collections
(:class:`~repro.store.ShardedCollection`) plus whole-database JSONL
snapshot/restore, which the examples use to persist generated corpora
between runs.

Sharding: every collection is hash-partitioned across ``shard_count``
shards (``REPRO_STORE_SHARDS`` or 4 when unspecified).  With *wal_dir*
set, each collection keeps a write-ahead log plus checkpoints under
``<wal_dir>/<collection>/`` and recovers acknowledged writes on reopen.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional

from ..tools.annotations import guarded_by
from .errors import CollectionNotFound
from .shard import ShardedCollection, default_shard_count


@guarded_by("_lock", "_collections")
class Database:
    """A named set of collections.

    Collections are created lazily on first access, mirroring MongoDB:

    >>> db = Database("news_diffusion")
    >>> db["tweets"].insert_one({"text": "hello"})
    1
    >>> db.list_collections()
    ['tweets']
    """

    def __init__(
        self,
        name: str = "repro",
        shard_count: Optional[int] = None,
        wal_dir: Optional[str] = None,
    ) -> None:
        self.name = name
        self.shard_count = (
            shard_count if shard_count is not None else default_shard_count()
        )
        self.wal_dir = wal_dir
        self._lock = threading.RLock()
        self._collections: Dict[str, ShardedCollection] = {}
        # Reopening a durable database must surface the collections that
        # already exist on disk — otherwise lazily-created collections
        # stay invisible to ``list_collections``/``__contains__`` until
        # first access, and resume logic built on them silently starts
        # from nothing.
        if wal_dir is not None and os.path.isdir(wal_dir):
            for entry in sorted(os.listdir(wal_dir)):
                if os.path.isdir(os.path.join(wal_dir, entry)):
                    self.collection(entry)

    def __getitem__(self, name: str) -> ShardedCollection:
        return self.collection(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._collections

    def collection(
        self,
        name: str,
        validator: Optional[Callable[[dict], bool]] = None,
    ) -> ShardedCollection:
        """Get or create the collection called *name*."""
        with self._lock:
            existing = self._collections.get(name)
        if existing is not None:
            return existing
        # Construct outside the facade lock: a WAL-backed collection
        # replays its shards' logs (taking shard locks) during
        # construction, and the meta lock must never be held across
        # shard calls.  A racing creator loses to ``setdefault`` and
        # closes its redundant instance.
        created = ShardedCollection(
            name,
            shard_count=self.shard_count,
            validator=validator,
            wal_dir=(os.path.join(self.wal_dir, name) if self.wal_dir else None),
        )
        with self._lock:
            winner = self._collections.setdefault(name, created)
        if winner is not created:
            created.close()
        return winner

    def list_collections(self) -> List[str]:
        """Sorted names of the existing collections."""
        with self._lock:
            return sorted(self._collections.keys())

    def drop_collection(self, name: str) -> None:
        """Delete a collection and its documents if it exists."""
        with self._lock:
            if name not in self._collections:
                raise CollectionNotFound(name)
            coll = self._collections.pop(name)
        coll.close()

    def drop_all(self) -> None:
        """Delete every collection."""
        with self._lock:
            collections = list(self._collections.values())
            self._collections.clear()
        for coll in collections:
            coll.close()

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> Dict[str, int]:
        """Checkpoint every durable collection; shard counts by name."""
        with self._lock:
            collections = list(self._collections.items())
        return {name: coll.checkpoint() for name, coll in collections}

    def close(self) -> None:
        """Release every collection's WAL file handles."""
        with self._lock:
            collections = list(self._collections.values())
        for coll in collections:
            coll.close()

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, directory: str) -> Dict[str, int]:
        """Dump every collection to ``<directory>/<collection>.jsonl``."""
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            collections = list(self._collections.items())
        counts: Dict[str, int] = {}
        for name, coll in collections:
            counts[name] = coll.dump_jsonl(os.path.join(directory, f"{name}.jsonl"))
        return counts

    def restore(self, directory: str) -> Dict[str, int]:
        """Load every ``*.jsonl`` file in *directory* as a collection."""
        if not os.path.isdir(directory):
            raise CollectionNotFound(directory)
        counts: Dict[str, int] = {}
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".jsonl"):
                continue
            name = filename[: -len(".jsonl")]
            counts[name] = self.collection(name).load_jsonl(
                os.path.join(directory, filename)
            )
        return counts

    def stats(self) -> Dict[str, int]:
        """Document counts by collection."""
        with self._lock:
            collections = list(self._collections.items())
        return {name: len(coll) for name, coll in collections}
