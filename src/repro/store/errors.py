"""Exception hierarchy for the embedded document store.

The paper stores collected news articles and tweets in MongoDB (§4.1).
``repro.store`` is the in-process substitute; these exceptions mirror the
failure modes client code must handle (bad queries, duplicate ids, missing
collections).
"""

from __future__ import annotations


class StoreError(Exception):
    """Base class for all document-store errors."""


class DuplicateKeyError(StoreError):
    """Raised when inserting a document whose ``_id`` already exists."""

    def __init__(self, key: object) -> None:
        super().__init__(f"duplicate _id: {key!r}")
        self.key = key


class QueryError(StoreError):
    """Raised when a query filter or update specification is malformed."""


class CollectionNotFound(StoreError):
    """Raised when dropping or loading a collection that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"collection not found: {name!r}")
        self.name = name


class ValidationError(StoreError):
    """Raised when a document violates a collection's validator."""


class WALError(StoreError):
    """Raised for unrecoverable write-ahead-log or checkpoint corruption.

    A torn WAL *tail* is expected after a crash and silently discarded;
    this error covers what recovery cannot paper over — a corrupt shard
    checkpoint, or an engine manifest that disagrees with the caller.
    """
