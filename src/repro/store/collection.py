"""A MongoDB-like collection: documents, CRUD, cursors, and aggregation.

This is the storage surface the reproduction's pipeline modules talk to
(§4.1–§4.2 of the paper store raw and preprocessed corpora in MongoDB).

Thread-safety: every operation that touches the document map, the
indexes, or the id counter runs under the collection's RLock (declared
via ``@guarded_by``), so concurrent pipeline stages — and the ROADMAP's
upcoming sharded engine — can share a collection.  Cursors materialise
their snapshot under the lock at consumption time; the returned copies
are private to the caller.
"""

from __future__ import annotations

import copy
import json
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs
from ..tools.annotations import guarded_by
from .errors import DuplicateKeyError, QueryError, ValidationError
from .index import HashIndex, plan_index_lookup
from .query import apply_update, get_path, matches, project, sort_documents, _MISSING


class Cursor:
    """Lazy view over a query result supporting sort/skip/limit chaining."""

    def __init__(self, producer: Callable[[], Iterable[Dict[str, Any]]]) -> None:
        self._producer = producer
        self._sort_spec: Optional[Sequence[Tuple[str, int]]] = None
        self._skip = 0
        self._limit: Optional[int] = None
        self._consumed = False

    def sort(self, field_or_spec, direction: int = 1) -> "Cursor":
        """Sort by a field name or a [(field, direction), ...] spec."""
        if isinstance(field_or_spec, str):
            self._sort_spec = [(field_or_spec, direction)]
        else:
            self._sort_spec = list(field_or_spec)
        return self

    def skip(self, n: int) -> "Cursor":
        """Skip the first *n* documents."""
        if n < 0:
            raise QueryError("skip must be non-negative")
        self._skip = n
        return self

    def limit(self, n: int) -> "Cursor":
        """Yield at most *n* documents."""
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    def _materialize(self) -> List[Dict[str, Any]]:
        docs = list(self._producer())
        if self._sort_spec:
            docs = sort_documents(docs, self._sort_spec)
        if self._skip:
            docs = docs[self._skip:]
        if self._limit is not None:
            docs = docs[: self._limit]
        return docs

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if self._consumed:
            raise QueryError("cursor already consumed")
        self._consumed = True
        return iter(self._materialize())

    def to_list(self) -> List[Dict[str, Any]]:
        """Materialize the cursor into a list."""
        return list(self)

    def count(self) -> int:
        """Number of documents the cursor yields."""
        return len(self._materialize())


@guarded_by("_lock", "_docs", "_indexes", "_next_id")
class Collection:
    """An in-memory document collection with Mongo-flavoured operations.

    Documents are plain dicts.  Every document receives an ``_id`` (an
    auto-incrementing integer unless the caller supplies one).  Reads return
    deep copies so callers cannot corrupt stored state by mutating results.
    """

    def __init__(
        self,
        name: str,
        validator: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, HashIndex] = {}
        self._next_id = 1
        self._validator = validator

    # -- basic properties -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, {len(self)} docs)"

    def count_documents(self, query: Optional[Dict[str, Any]] = None) -> int:
        """Count documents matching *query* (all when None)."""
        with self._lock:
            if not query:
                return len(self._docs)
            return sum(1 for _ in self._iter_matching_locked(query))

    # -- writes ------------------------------------------------------------

    def _validate(self, document: Dict[str, Any]) -> None:
        if self._validator is not None and not self._validator(document):
            raise ValidationError(
                f"document failed validation for collection {self.name!r}"
            )

    def insert_one(self, document: Dict[str, Any]) -> Any:
        """Insert one document; returns its ``_id``."""
        if not isinstance(document, dict):
            raise QueryError("documents must be dicts")
        doc = copy.deepcopy(document)
        with self._lock:
            if "_id" not in doc:
                doc["_id"] = self._next_id
                self._next_id += 1
            if doc["_id"] in self._docs:
                raise DuplicateKeyError(doc["_id"])
            self._validate(doc)
            self._docs[doc["_id"]] = doc
            for index in self._indexes.values():
                index.add(doc["_id"], doc)
        obs.counter("store.inserts").inc()
        return doc["_id"]

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> List[Any]:
        """Insert many documents; returns their ``_id``s."""
        return [self.insert_one(doc) for doc in documents]

    def replace_one(self, query: Dict[str, Any], replacement: Dict[str, Any]) -> int:
        """Replace the first match wholesale; returns 1 if replaced, else 0."""
        with self._lock:
            for doc in self._iter_matching_locked(query):
                doc_id = doc["_id"]
                new_doc = copy.deepcopy(replacement)
                new_doc["_id"] = doc_id
                self._validate(new_doc)
                self._docs[doc_id] = new_doc
                for index in self._indexes.values():
                    index.update(doc_id, new_doc)
                return 1
            return 0

    def update_one(self, query: Dict[str, Any], update: Dict[str, Any]) -> int:
        """Apply *update* to the first matching document; returns count."""
        with self._lock:
            for doc in self._iter_matching_locked(query):
                apply_update(doc, update)
                self._validate(doc)
                for index in self._indexes.values():
                    index.update(doc["_id"], doc)
                obs.counter("store.updates").inc()
                return 1
            return 0

    def update_many(self, query: Dict[str, Any], update: Dict[str, Any]) -> int:
        """Apply *update* to every matching document; returns count."""
        count = 0
        with self._lock:
            for doc in list(self._iter_matching_locked(query)):
                apply_update(doc, update)
                self._validate(doc)
                for index in self._indexes.values():
                    index.update(doc["_id"], doc)
                count += 1
        obs.counter("store.updates").inc(count)
        return count

    def delete_one(self, query: Dict[str, Any]) -> int:
        """Delete the first match; returns the number deleted (0 or 1)."""
        with self._lock:
            for doc in self._iter_matching_locked(query):
                self._remove_locked(doc["_id"])
                return 1
            return 0

    def delete_many(self, query: Dict[str, Any]) -> int:
        """Delete every match; returns the number deleted."""
        with self._lock:
            ids = [doc["_id"] for doc in self._iter_matching_locked(query)]
            for doc_id in ids:
                self._remove_locked(doc_id)
        return len(ids)

    def _remove_locked(self, doc_id: Any) -> None:
        # Caller holds self._lock.
        self._docs.pop(doc_id, None)
        for index in self._indexes.values():
            index.remove(doc_id)
        obs.counter("store.deletes").inc()

    # -- reads -------------------------------------------------------------

    def _iter_matching_locked(self, query: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Yield *live* matching documents (caller holds ``_lock``)."""
        candidate_ids = plan_index_lookup(query, self._indexes) if query else None
        if candidate_ids is not None:
            obs.counter("store.index_scans").inc()
            pool: Iterable[Dict[str, Any]] = (
                self._docs[i] for i in candidate_ids if i in self._docs
            )
        else:
            obs.counter("store.full_scans").inc()
            pool = self._docs.values()
        for doc in pool:
            if matches(doc, query):
                yield doc

    def find(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
    ) -> Cursor:
        """Query the collection; returns a chainable :class:`Cursor`."""
        query = query or {}
        obs.counter("store.queries").inc()

        def producer() -> Iterable[Dict[str, Any]]:
            # Snapshot under the lock; the copies are private to the cursor.
            with self._lock:
                return [
                    project(copy.deepcopy(doc), projection)
                    for doc in self._iter_matching_locked(query)
                ]

        return Cursor(producer)

    def find_one(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, Any]]:
        """First matching document, or None."""
        for doc in self.find(query, projection).limit(1):
            return doc
        return None

    def distinct(self, field: str, query: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Distinct values of *field* across matching documents."""
        seen: List[Any] = []
        with self._lock:
            for doc in self._iter_matching_locked(query or {}):
                value = get_path(doc, field)
                if value is _MISSING:
                    continue
                values = value if isinstance(value, list) else [value]
                for v in values:
                    if v not in seen:
                        seen.append(v)
        return seen

    # -- indexes -----------------------------------------------------------

    def create_index(self, field: str) -> str:
        """Create (or refresh) a hash index on a dotted *field* path."""
        index = HashIndex(field)
        with self._lock:
            index.rebuild(self._docs)
            self._indexes[field] = index
        obs.counter("store.index_builds").inc()
        return field

    def drop_index(self, field: str) -> None:
        """Remove the index on *field* if present."""
        with self._lock:
            self._indexes.pop(field, None)

    def list_indexes(self) -> List[str]:
        """Names of the indexed fields."""
        with self._lock:
            return list(self._indexes.keys())

    # -- aggregation -------------------------------------------------------

    def aggregate(self, pipeline: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run a small aggregation pipeline.

        Supported stages: ``$match``, ``$project``, ``$sort``, ``$skip``,
        ``$limit``, ``$group`` (accumulators ``$sum``, ``$avg``, ``$min``,
        ``$max``, ``$count``, ``$push``, ``$addToSet``, ``$first``,
        ``$last``), ``$unwind``, ``$count``.
        """
        obs.counter("store.aggregates").inc()
        with self._lock:
            docs: List[Dict[str, Any]] = [
                copy.deepcopy(d) for d in self._docs.values()
            ]
        for stage in pipeline:
            if len(stage) != 1:
                raise QueryError("each pipeline stage must have exactly one key")
            op, spec = next(iter(stage.items()))
            if op == "$match":
                docs = [d for d in docs if matches(d, spec)]
            elif op == "$project":
                docs = [project(d, spec) for d in docs]
            elif op == "$sort":
                docs = sort_documents(docs, list(spec.items()))
            elif op == "$skip":
                docs = docs[int(spec):]
            elif op == "$limit":
                docs = docs[: int(spec)]
            elif op == "$unwind":
                field = spec.lstrip("$") if isinstance(spec, str) else spec["path"].lstrip("$")
                unwound: List[Dict[str, Any]] = []
                for d in docs:
                    value = get_path(d, field)
                    if isinstance(value, list):
                        for item in value:
                            clone = copy.deepcopy(d)
                            parts = field.split(".")
                            target = clone
                            for part in parts[:-1]:
                                target = target[part]
                            target[parts[-1]] = item
                            unwound.append(clone)
                docs = unwound
            elif op == "$count":
                docs = [{str(spec): len(docs)}]
            elif op == "$group":
                docs = self._group(docs, spec)
            else:
                raise QueryError(f"unsupported aggregation stage: {op}")
        return docs

    @staticmethod
    def _resolve(doc: Dict[str, Any], expr: Any) -> Any:
        if isinstance(expr, str) and expr.startswith("$"):
            value = get_path(doc, expr[1:])
            return None if value is _MISSING else value
        return expr

    def _group(
        self, docs: List[Dict[str, Any]], spec: Dict[str, Any]
    ) -> List[Dict[str, Any]]:
        if "_id" not in spec:
            raise QueryError("$group requires an _id expression")
        id_expr = spec["_id"]
        groups: Dict[Any, List[Dict[str, Any]]] = {}
        order: List[Any] = []
        for doc in docs:
            key = self._resolve(doc, id_expr)
            hashable = repr(key) if isinstance(key, (list, dict)) else key
            if hashable not in groups:
                groups[hashable] = []
                order.append((hashable, key))
            groups[hashable].append(doc)
        out: List[Dict[str, Any]] = []
        for hashable, key in order:
            members = groups[hashable]
            row: Dict[str, Any] = {"_id": key}
            for field, acc in spec.items():
                if field == "_id":
                    continue
                if not isinstance(acc, dict) or len(acc) != 1:
                    raise QueryError(f"bad accumulator for {field!r}")
                acc_op, acc_expr = next(iter(acc.items()))
                values = [self._resolve(m, acc_expr) for m in members]
                numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
                if acc_op == "$sum":
                    row[field] = sum(numeric)
                elif acc_op == "$avg":
                    row[field] = sum(numeric) / len(numeric) if numeric else None
                elif acc_op == "$min":
                    row[field] = min(numeric) if numeric else None
                elif acc_op == "$max":
                    row[field] = max(numeric) if numeric else None
                elif acc_op == "$count":
                    row[field] = len(members)
                elif acc_op == "$push":
                    row[field] = values
                elif acc_op == "$addToSet":
                    unique: List[Any] = []
                    for v in values:
                        if v not in unique:
                            unique.append(v)
                    row[field] = unique
                elif acc_op == "$first":
                    row[field] = values[0] if values else None
                elif acc_op == "$last":
                    row[field] = values[-1] if values else None
                else:
                    raise QueryError(f"unknown accumulator: {acc_op}")
            out.append(row)
        return out

    # -- persistence --------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write every document as one JSON line; returns the count."""
        with self._lock:
            lines = [json.dumps(doc, default=str) for doc in self._docs.values()]
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def load_jsonl(self, path: str) -> int:
        """Load documents from a JSONL file; returns the count inserted."""
        count = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                self.insert_one(json.loads(line))
                count += 1
        return count
