"""A MongoDB-like collection: documents, CRUD, cursors, and aggregation.

This is the storage surface the reproduction's pipeline modules talk to
(§4.1–§4.2 of the paper store raw and preprocessed corpora in MongoDB).

Thread-safety: every operation that touches the document map, the
indexes, or the id counter runs under the collection's RLock (declared
via ``@guarded_by``), so concurrent pipeline stages — and the ROADMAP's
upcoming sharded engine — can share a collection.  Cursors materialise
their snapshot under the lock at consumption time; the returned copies
are private to the caller.
"""

from __future__ import annotations

import copy
import json
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import os

from .. import obs
from ..tools.annotations import guarded_by
from .aggregate import run_pipeline
from .errors import DuplicateKeyError, QueryError, ValidationError
from .index import HashIndex, InvertedIndex, plan_index_lookup
from .query import (
    apply_update,
    get_path,
    matches,
    project,
    sort_documents,
    split_text_query,
    text_matches,
    _MISSING,
)


class Cursor:
    """Lazy view over a query result supporting sort/skip/limit chaining."""

    def __init__(self, producer: Callable[[], Iterable[Dict[str, Any]]]) -> None:
        self._producer = producer
        self._sort_spec: Optional[Sequence[Tuple[str, int]]] = None
        self._skip = 0
        self._limit: Optional[int] = None
        self._consumed = False

    def sort(self, field_or_spec, direction: int = 1) -> "Cursor":
        """Sort by a field name or a [(field, direction), ...] spec."""
        if isinstance(field_or_spec, str):
            self._sort_spec = [(field_or_spec, direction)]
        else:
            self._sort_spec = list(field_or_spec)
        return self

    def skip(self, n: int) -> "Cursor":
        """Skip the first *n* documents."""
        if n < 0:
            raise QueryError("skip must be non-negative")
        self._skip = n
        return self

    def limit(self, n: int) -> "Cursor":
        """Yield at most *n* documents."""
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    def _materialize(self) -> List[Dict[str, Any]]:
        docs = list(self._producer())
        if self._sort_spec:
            docs = sort_documents(docs, self._sort_spec)
        if self._skip:
            docs = docs[self._skip:]
        if self._limit is not None:
            docs = docs[: self._limit]
        return docs

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if self._consumed:
            raise QueryError("cursor already consumed")
        self._consumed = True
        return iter(self._materialize())

    def to_list(self) -> List[Dict[str, Any]]:
        """Materialize the cursor into a list."""
        return list(self)

    def count(self) -> int:
        """Number of documents the cursor yields."""
        return len(self._materialize())


@guarded_by(
    "_lock",
    "_docs",
    "_indexes",
    "_next_id",
    "_seq_by_id",
    "_next_seq",
    "_inverted",
    "_text_fields",
    "_version",
    "_dumped",
)
class Collection:
    """An in-memory document collection with Mongo-flavoured operations.

    Documents are plain dicts.  Every document receives an ``_id`` (an
    auto-incrementing integer unless the caller supplies one).  Reads return
    deep copies so callers cannot corrupt stored state by mutating results.
    """

    def __init__(
        self,
        name: str,
        validator: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._docs: Dict[Any, Dict[str, Any]] = {}
        self._indexes: Dict[str, HashIndex] = {}
        self._next_id = 1
        self._validator = validator
        # Global insertion-sequence numbers: the result-order contract
        # shared with the sharded engine (index scans replay documents in
        # insertion order, not in hash-bucket order).
        self._seq_by_id: Dict[Any, int] = {}
        self._next_seq = 0
        self._inverted: Optional[InvertedIndex] = None
        self._text_fields: Tuple[str, ...] = ()
        # Mutation version + last-dumped versions, for dirty-tracked dumps.
        self._version = 0
        self._dumped: Dict[str, int] = {}

    # -- basic properties -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, {len(self)} docs)"

    def count_documents(self, query: Optional[Dict[str, Any]] = None) -> int:
        """Count documents matching *query* (all when None)."""
        with self._lock:
            if not query:
                return len(self._docs)
            return sum(1 for _ in self._iter_matching_locked(query))

    # -- writes ------------------------------------------------------------

    def _validate(self, document: Dict[str, Any]) -> None:
        if self._validator is not None and not self._validator(document):
            raise ValidationError(
                f"document failed validation for collection {self.name!r}"
            )

    def insert_one(self, document: Dict[str, Any]) -> Any:
        """Insert one document; returns its ``_id``."""
        if not isinstance(document, dict):
            raise QueryError("documents must be dicts")
        doc = copy.deepcopy(document)
        with self._lock:
            if "_id" not in doc:
                doc["_id"] = self._next_id
                self._next_id += 1
            elif (
                isinstance(doc["_id"], int) and doc["_id"] >= self._next_id
            ):
                # Mirror the sharded store: explicit integer ids advance
                # the auto-id counter so a later auto-assigned insert
                # (e.g. streaming ingest after a snapshot restore) can
                # never collide with an imported id.
                self._next_id = doc["_id"] + 1
            if doc["_id"] in self._docs:
                raise DuplicateKeyError(doc["_id"])
            self._validate(doc)
            self._docs[doc["_id"]] = doc
            self._seq_by_id[doc["_id"]] = self._next_seq
            self._next_seq += 1
            for index in self._indexes.values():
                index.add(doc["_id"], doc)
            if self._inverted is not None:
                self._inverted.add(doc["_id"], doc)
            self._version += 1
        obs.counter("store.inserts").inc()
        return doc["_id"]

    def insert_many(self, documents: Iterable[Dict[str, Any]]) -> List[Any]:
        """Insert many documents; returns their ``_id``s."""
        return [self.insert_one(doc) for doc in documents]

    def replace_one(self, query: Dict[str, Any], replacement: Dict[str, Any]) -> int:
        """Replace the first match wholesale; returns 1 if replaced, else 0."""
        with self._lock:
            for doc in self._iter_matching_locked(query):
                doc_id = doc["_id"]
                new_doc = copy.deepcopy(replacement)
                new_doc["_id"] = doc_id
                self._validate(new_doc)
                self._docs[doc_id] = new_doc
                for index in self._indexes.values():
                    index.update(doc_id, new_doc)
                if self._inverted is not None:
                    self._inverted.update(doc_id, new_doc)
                self._version += 1
                return 1
            return 0

    def update_one(self, query: Dict[str, Any], update: Dict[str, Any]) -> int:
        """Apply *update* to the first matching document; returns count."""
        with self._lock:
            for doc in self._iter_matching_locked(query):
                apply_update(doc, update)
                self._validate(doc)
                for index in self._indexes.values():
                    index.update(doc["_id"], doc)
                if self._inverted is not None:
                    self._inverted.update(doc["_id"], doc)
                self._version += 1
                obs.counter("store.updates").inc()
                return 1
            return 0

    def update_many(self, query: Dict[str, Any], update: Dict[str, Any]) -> int:
        """Apply *update* to every matching document; returns count."""
        count = 0
        with self._lock:
            for doc in list(self._iter_matching_locked(query)):
                apply_update(doc, update)
                self._validate(doc)
                for index in self._indexes.values():
                    index.update(doc["_id"], doc)
                if self._inverted is not None:
                    self._inverted.update(doc["_id"], doc)
                count += 1
            if count:
                self._version += 1
        obs.counter("store.updates").inc(count)
        return count

    def delete_one(self, query: Dict[str, Any]) -> int:
        """Delete the first match; returns the number deleted (0 or 1)."""
        with self._lock:
            for doc in self._iter_matching_locked(query):
                self._remove_locked(doc["_id"])
                return 1
            return 0

    def delete_many(self, query: Dict[str, Any]) -> int:
        """Delete every match; returns the number deleted."""
        with self._lock:
            ids = [doc["_id"] for doc in self._iter_matching_locked(query)]
            for doc_id in ids:
                self._remove_locked(doc_id)
        return len(ids)

    def _remove_locked(self, doc_id: Any) -> None:
        # Caller holds self._lock.
        self._docs.pop(doc_id, None)
        self._seq_by_id.pop(doc_id, None)
        for index in self._indexes.values():
            index.remove(doc_id)
        if self._inverted is not None:
            self._inverted.remove(doc_id)
        self._version += 1
        obs.counter("store.deletes").inc()

    # -- reads -------------------------------------------------------------

    def _iter_matching_locked(self, query: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Yield *live* matching documents in insertion order (lock held)."""
        text, residual = split_text_query(query)
        if text is not None and not self._text_fields:
            raise QueryError(
                "$text requires text fields (create_text_index / "
                "declare_text_fields)"
            )
        text_resolved = False
        candidate_ids = None
        if text is not None and self._inverted is not None:
            candidate_ids = self._inverted.lookup(text.terms, text.mode)
            text_resolved = True
        elif residual:
            candidate_ids = plan_index_lookup(residual, self._indexes)
        if candidate_ids is not None:
            obs.counter("store.index_scans").inc()
            # Candidate sets come back in hash order; replay them in
            # insertion order so indexed and unindexed queries agree.
            live = [i for i in candidate_ids if i in self._docs]
            live.sort(key=lambda i: self._seq_by_id[i])
            pool: Iterable[Dict[str, Any]] = (self._docs[i] for i in live)
        else:
            obs.counter("store.full_scans").inc()
            pool = self._docs.values()
        for doc in pool:
            if residual and not matches(doc, residual):
                continue
            if text is not None and not text_resolved:
                if not text_matches(doc, self._text_fields, text):
                    continue
            yield doc

    def find(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
    ) -> Cursor:
        """Query the collection; returns a chainable :class:`Cursor`."""
        query = query or {}
        obs.counter("store.queries").inc()

        def producer() -> Iterable[Dict[str, Any]]:
            # Snapshot under the lock; the copies are private to the cursor.
            with self._lock:
                return [
                    project(copy.deepcopy(doc), projection)
                    for doc in self._iter_matching_locked(query)
                ]

        return Cursor(producer)

    def find_one(
        self,
        query: Optional[Dict[str, Any]] = None,
        projection: Optional[Dict[str, int]] = None,
    ) -> Optional[Dict[str, Any]]:
        """First matching document, or None."""
        for doc in self.find(query, projection).limit(1):
            return doc
        return None

    def distinct(self, field: str, query: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Distinct values of *field* across matching documents."""
        seen: List[Any] = []
        with self._lock:
            for doc in self._iter_matching_locked(query or {}):
                value = get_path(doc, field)
                if value is _MISSING:
                    continue
                values = value if isinstance(value, list) else [value]
                for v in values:
                    if v not in seen:
                        seen.append(v)
        return seen

    # -- indexes -----------------------------------------------------------

    def create_index(self, field: str) -> str:
        """Create (or refresh) a hash index on a dotted *field* path."""
        index = HashIndex(field)
        with self._lock:
            index.rebuild(self._docs)
            self._indexes[field] = index
        obs.counter("store.index_builds").inc()
        return field

    def drop_index(self, field: str) -> None:
        """Remove the index on *field* if present."""
        with self._lock:
            self._indexes.pop(field, None)

    def list_indexes(self) -> List[str]:
        """Names of the indexed fields."""
        with self._lock:
            return list(self._indexes.keys())

    def create_text_index(self, *fields: str) -> Tuple[str, ...]:
        """Build an inverted index over *fields* to serve ``$text`` queries."""
        if not fields:
            raise QueryError("create_text_index requires at least one field")
        inverted = InvertedIndex(fields)
        with self._lock:
            inverted.rebuild(self._docs)
            self._inverted = inverted
            self._text_fields = tuple(fields)
        obs.counter("store.index_builds").inc()
        return tuple(fields)

    def declare_text_fields(self, *fields: str) -> Tuple[str, ...]:
        """Declare ``$text`` fields WITHOUT an inverted index (scan mode)."""
        if not fields:
            raise QueryError("declare_text_fields requires at least one field")
        with self._lock:
            self._text_fields = tuple(fields)
            self._inverted = None
        return tuple(fields)

    def text_fields(self) -> Tuple[str, ...]:
        """The declared ``$text`` fields (empty when none)."""
        with self._lock:
            return self._text_fields

    # -- aggregation -------------------------------------------------------

    def aggregate(self, pipeline: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run a small aggregation pipeline.

        Supported stages: ``$match``, ``$project``, ``$sort``, ``$skip``,
        ``$limit``, ``$group`` (accumulators ``$sum``, ``$avg``, ``$min``,
        ``$max``, ``$count``, ``$push``, ``$addToSet``, ``$first``,
        ``$last``), ``$unwind``, ``$count``.
        """
        obs.counter("store.aggregates").inc()
        with self._lock:
            docs: List[Dict[str, Any]] = [
                copy.deepcopy(d) for d in self._docs.values()
            ]
        return run_pipeline(docs, pipeline)

    # -- persistence --------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write every document as one JSON line; returns the count.

        Dirty-tracked: an unchanged collection dumped twice to the same
        path rewrites nothing (``store.dump.skipped`` vs
        ``store.dump.written`` count the two outcomes).
        """
        key = os.path.abspath(path)
        with self._lock:
            version = self._version
            if self._dumped.get(key) == version and os.path.exists(path):
                skipped = True
                lines = []
                count = len(self._docs)
            else:
                skipped = False
                lines = [
                    json.dumps(doc, default=str) for doc in self._docs.values()
                ]
                count = len(lines)
        if skipped:
            obs.counter("store.dump.skipped").inc()
            return count
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        with self._lock:
            self._dumped[key] = version
        obs.counter("store.dump.written").inc()
        return count

    def load_jsonl(self, path: str) -> int:
        """Load documents from a JSONL file; returns the count inserted."""
        count = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                self.insert_one(json.loads(line))
                count += 1
        return count
