"""Secondary hash indexes for the embedded document store.

The paper's pipeline repeatedly looks tweets and articles up by exact field
values (author handle, time-slice id, event id).  A hash index turns those
equality scans into O(1) bucket lookups, which matters once the synthetic
corpora reach tens of thousands of documents.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Set

from .query import get_path, _MISSING


def _hashable(value: Any) -> Any:
    """Reduce *value* to a hashable index key (lists/dicts via repr)."""
    if isinstance(value, (list, dict)):
        return repr(value)
    return value


class HashIndex:
    """Equality index over one dotted field path.

    Maps each observed field value to the set of document ``_id``s holding
    it.  Multi-key behaviour mirrors MongoDB: indexing a list field indexes
    every element.
    """

    def __init__(self, field: str) -> None:
        self.field = field
        self._buckets: Dict[Any, Set[Any]] = defaultdict(set)
        self._keys_by_doc: Dict[Any, List[Any]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def _keys_for(self, document: Dict[str, Any]) -> List[Any]:
        value = get_path(document, self.field)
        if value is _MISSING:
            return []
        if isinstance(value, list):
            return [_hashable(v) for v in value] or [_hashable(value)]
        return [_hashable(value)]

    def add(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Index *document* under *doc_id*."""
        keys = self._keys_for(document)
        self._keys_by_doc[doc_id] = keys
        for key in keys:
            self._buckets[key].add(doc_id)

    def remove(self, doc_id: Any) -> None:
        """Drop *doc_id* from every bucket it appears in."""
        for key in self._keys_by_doc.pop(doc_id, []):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[key]

    def update(self, doc_id: Any, document: Dict[str, Any]) -> None:
        self.remove(doc_id)
        self.add(doc_id, document)

    def lookup(self, value: Any) -> Set[Any]:
        """Document ids whose indexed field equals *value*."""
        return set(self._buckets.get(_hashable(value), ()))

    def lookup_in(self, values: Iterable[Any]) -> Set[Any]:
        """Document ids whose indexed field equals any of *values*."""
        out: Set[Any] = set()
        for value in values:
            out |= self.lookup(value)
        return out

    def distinct_keys(self) -> List[Any]:
        """All distinct indexed key values."""
        return list(self._buckets.keys())

    def rebuild(self, documents: Dict[Any, Dict[str, Any]]) -> None:
        """Re-index from scratch from a {doc_id: document} mapping."""
        self._buckets.clear()
        self._keys_by_doc.clear()
        for doc_id, document in documents.items():
            self.add(doc_id, document)


def plan_index_lookup(
    query: Dict[str, Any], indexes: Dict[str, HashIndex]
) -> Optional[Set[Any]]:
    """Return a candidate ``_id`` set when an index can serve part of *query*.

    Only top-level equality and ``$in`` conditions are index-eligible; the
    remaining predicates are verified by the full matcher afterwards, so a
    partial plan is always safe.
    """
    candidate: Optional[Set[Any]] = None
    for field, condition in query.items():
        if field.startswith("$") or field not in indexes:
            continue
        index = indexes[field]
        ids: Optional[Set[Any]] = None
        if isinstance(condition, dict):
            if set(condition) == {"$eq"}:
                ids = index.lookup(condition["$eq"])
            elif set(condition) == {"$in"} and isinstance(condition["$in"], (list, tuple, set)):
                ids = index.lookup_in(condition["$in"])
        elif not isinstance(condition, dict):
            ids = index.lookup(condition)
        if ids is None:
            continue
        candidate = ids if candidate is None else candidate & ids
    return candidate
