"""Secondary indexes for the embedded document store.

The paper's pipeline repeatedly looks tweets and articles up by exact field
values (author handle, time-slice id, event id).  A hash index turns those
equality scans into O(1) bucket lookups, which matters once the synthetic
corpora reach tens of thousands of documents.

:class:`InvertedIndex` is the term-level counterpart for ``$text``
queries: it maps every token appearing in the declared text fields to the
set of documents containing it, so AND/OR term searches resolve by
posting-list intersection/union instead of tokenizing the whole corpus
per query (the Elasticsearch half of the related ``db_handler.py`` split,
folded into this engine).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from .query import get_path, tokenize, _MISSING


def _hashable(value: Any) -> Any:
    """Reduce *value* to a hashable index key (lists/dicts via repr)."""
    if isinstance(value, (list, dict)):
        return repr(value)
    return value


class HashIndex:
    """Equality index over one dotted field path.

    Maps each observed field value to the set of document ``_id``s holding
    it.  Multi-key behaviour mirrors MongoDB: indexing a list field indexes
    every element.
    """

    def __init__(self, field: str) -> None:
        self.field = field
        self._buckets: Dict[Any, Set[Any]] = defaultdict(set)
        self._keys_by_doc: Dict[Any, List[Any]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def _keys_for(self, document: Dict[str, Any]) -> List[Any]:
        value = get_path(document, self.field)
        if value is _MISSING:
            return []
        if isinstance(value, list):
            return [_hashable(v) for v in value] or [_hashable(value)]
        return [_hashable(value)]

    def add(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Index *document* under *doc_id*."""
        keys = self._keys_for(document)
        self._keys_by_doc[doc_id] = keys
        for key in keys:
            self._buckets[key].add(doc_id)

    def remove(self, doc_id: Any) -> None:
        """Drop *doc_id* from every bucket it appears in."""
        for key in self._keys_by_doc.pop(doc_id, []):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[key]

    def update(self, doc_id: Any, document: Dict[str, Any]) -> None:
        self.remove(doc_id)
        self.add(doc_id, document)

    def lookup(self, value: Any) -> Set[Any]:
        """Document ids whose indexed field equals *value*."""
        return set(self._buckets.get(_hashable(value), ()))

    def lookup_in(self, values: Iterable[Any]) -> Set[Any]:
        """Document ids whose indexed field equals any of *values*."""
        out: Set[Any] = set()
        for value in values:
            out |= self.lookup(value)
        return out

    def distinct_keys(self) -> List[Any]:
        """All distinct indexed key values."""
        return list(self._buckets.keys())

    def rebuild(self, documents: Dict[Any, Dict[str, Any]]) -> None:
        """Re-index from scratch from a {doc_id: document} mapping."""
        self._buckets.clear()
        self._keys_by_doc.clear()
        for doc_id, document in documents.items():
            self.add(doc_id, document)


class InvertedIndex:
    """Term → document-id postings over one or more text fields.

    Indexed values are strings (tokenized) or lists of strings (each
    element tokenized); other types contribute no terms.  Lookup
    semantics mirror :func:`repro.store.query.text_matches`: ``"all"``
    intersects the per-term postings, ``"any"`` unions them.
    """

    def __init__(self, fields: Sequence[str]) -> None:
        self.fields = tuple(fields)
        self._postings: Dict[str, Set[Any]] = defaultdict(set)
        self._terms_by_doc: Dict[Any, List[str]] = {}

    def __len__(self) -> int:
        return len(self._terms_by_doc)

    def _terms_for(self, document: Dict[str, Any]) -> List[str]:
        terms: Set[str] = set()
        for field in self.fields:
            value = get_path(document, field)
            if value is _MISSING:
                continue
            values = value if isinstance(value, list) else [value]
            for item in values:
                if isinstance(item, str):
                    terms.update(tokenize(item))
        return sorted(terms)

    def add(self, doc_id: Any, document: Dict[str, Any]) -> None:
        """Index *document* under *doc_id*."""
        terms = self._terms_for(document)
        self._terms_by_doc[doc_id] = terms
        for term in terms:
            self._postings[term].add(doc_id)

    def remove(self, doc_id: Any) -> None:
        """Drop *doc_id* from every posting list it appears in."""
        for term in self._terms_by_doc.pop(doc_id, []):
            postings = self._postings.get(term)
            if postings is not None:
                postings.discard(doc_id)
                if not postings:
                    del self._postings[term]

    def update(self, doc_id: Any, document: Dict[str, Any]) -> None:
        self.remove(doc_id)
        self.add(doc_id, document)

    def lookup(self, terms: Sequence[str], mode: str = "all") -> Set[Any]:
        """Document ids matching *terms* under ``"all"``/``"any"`` semantics.

        No terms match no documents (an empty search selects nothing,
        deterministically, in both modes).
        """
        if not terms:
            return set()
        postings = [self._postings.get(term, frozenset()) for term in terms]
        if mode == "any":
            out: Set[Any] = set()
            for p in postings:
                out |= p
            return out
        out = set(postings[0])
        for p in postings[1:]:
            out &= p
            if not out:
                break
        return out

    def distinct_terms(self) -> List[str]:
        """All indexed terms, sorted."""
        return sorted(self._postings.keys())

    def rebuild(self, documents: Dict[Any, Dict[str, Any]]) -> None:
        """Re-index from scratch from a {doc_id: document} mapping."""
        self._postings.clear()
        self._terms_by_doc.clear()
        for doc_id, document in documents.items():
            self.add(doc_id, document)


def plan_index_lookup(
    query: Dict[str, Any], indexes: Dict[str, HashIndex]
) -> Optional[Set[Any]]:
    """Return a candidate ``_id`` set when an index can serve part of *query*.

    Only top-level equality and ``$in`` conditions are index-eligible; the
    remaining predicates are verified by the full matcher afterwards, so a
    partial plan is always safe.
    """
    candidate: Optional[Set[Any]] = None
    for field, condition in query.items():
        if field.startswith("$") or field not in indexes:
            continue
        index = indexes[field]
        ids: Optional[Set[Any]] = None
        if isinstance(condition, dict):
            if set(condition) == {"$eq"}:
                ids = index.lookup(condition["$eq"])
            elif set(condition) == {"$in"} and isinstance(condition["$in"], (list, tuple, set)):
                ids = index.lookup_in(condition["$in"])
        elif not isinstance(condition, dict):
            ids = index.lookup(condition)
        if ids is None:
            continue
        candidate = ids if candidate is None else candidate & ids
    return candidate
