"""Aggregation pipeline evaluation, shared by both store engines.

Extracted from :class:`~repro.store.Collection` so the legacy single-lock
collection and the sharded engine (:class:`~repro.store.ShardedCollection`)
run byte-identical aggregation code over their snapshots — a load-bearing
property for the differential harness, which replays the same pipelines
against both engines and asserts equal output.

Supported stages: ``$match``, ``$project``, ``$sort``, ``$skip``,
``$limit``, ``$unwind``, ``$count``, ``$group`` (accumulators ``$sum``,
``$avg``, ``$min``, ``$max``, ``$count``, ``$push``, ``$addToSet``,
``$first``, ``$last``).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Sequence

from .errors import QueryError
from .query import get_path, matches, project, sort_documents, _MISSING


def resolve_expr(doc: Dict[str, Any], expr: Any) -> Any:
    """Resolve a ``$field`` path expression against *doc* (else literal)."""
    if isinstance(expr, str) and expr.startswith("$"):
        value = get_path(doc, expr[1:])
        return None if value is _MISSING else value
    return expr


def group_documents(
    docs: List[Dict[str, Any]], spec: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Evaluate one ``$group`` stage over *docs*."""
    if "_id" not in spec:
        raise QueryError("$group requires an _id expression")
    id_expr = spec["_id"]
    groups: Dict[Any, List[Dict[str, Any]]] = {}
    order: List[Any] = []
    for doc in docs:
        key = resolve_expr(doc, id_expr)
        hashable = repr(key) if isinstance(key, (list, dict)) else key
        if hashable not in groups:
            groups[hashable] = []
            order.append((hashable, key))
        groups[hashable].append(doc)
    out: List[Dict[str, Any]] = []
    for hashable, key in order:
        members = groups[hashable]
        row: Dict[str, Any] = {"_id": key}
        for field, acc in spec.items():
            if field == "_id":
                continue
            if not isinstance(acc, dict) or len(acc) != 1:
                raise QueryError(f"bad accumulator for {field!r}")
            acc_op, acc_expr = next(iter(acc.items()))
            values = [resolve_expr(m, acc_expr) for m in members]
            numeric = [
                v
                for v in values
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            if acc_op == "$sum":
                row[field] = sum(numeric)
            elif acc_op == "$avg":
                row[field] = sum(numeric) / len(numeric) if numeric else None
            elif acc_op == "$min":
                row[field] = min(numeric) if numeric else None
            elif acc_op == "$max":
                row[field] = max(numeric) if numeric else None
            elif acc_op == "$count":
                row[field] = len(members)
            elif acc_op == "$push":
                row[field] = values
            elif acc_op == "$addToSet":
                unique: List[Any] = []
                for v in values:
                    if v not in unique:
                        unique.append(v)
                row[field] = unique
            elif acc_op == "$first":
                row[field] = values[0] if values else None
            elif acc_op == "$last":
                row[field] = values[-1] if values else None
            else:
                raise QueryError(f"unknown accumulator: {acc_op}")
        out.append(row)
    return out


def run_pipeline(
    docs: List[Dict[str, Any]], pipeline: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Run an aggregation *pipeline* over a private snapshot of documents.

    *docs* must already be copies owned by the caller — stages mutate and
    replace them freely.
    """
    for stage in pipeline:
        if len(stage) != 1:
            raise QueryError("each pipeline stage must have exactly one key")
        op, spec = next(iter(stage.items()))
        if op == "$match":
            docs = [d for d in docs if matches(d, spec)]
        elif op == "$project":
            docs = [project(d, spec) for d in docs]
        elif op == "$sort":
            docs = sort_documents(docs, list(spec.items()))
        elif op == "$skip":
            docs = docs[int(spec):]
        elif op == "$limit":
            docs = docs[: int(spec)]
        elif op == "$unwind":
            field = (
                spec.lstrip("$")
                if isinstance(spec, str)
                else spec["path"].lstrip("$")
            )
            unwound: List[Dict[str, Any]] = []
            for d in docs:
                value = get_path(d, field)
                if isinstance(value, list):
                    for item in value:
                        clone = copy.deepcopy(d)
                        parts = field.split(".")
                        target = clone
                        for part in parts[:-1]:
                            target = target[part]
                        target[parts[-1]] = item
                        unwound.append(clone)
            docs = unwound
        elif op == "$count":
            docs = [{str(spec): len(docs)}]
        elif op == "$group":
            docs = group_documents(docs, spec)
        else:
            raise QueryError(f"unsupported aggregation stage: {op}")
    return docs
