"""Query planner for the sharded store engine.

Given a query and what the engine has indexed, :func:`plan_query` picks
one of four access paths (cheapest first):

``id_lookup``
    Top-level ``_id`` equality — route to the owning shard and fetch the
    document by key, skipping every other shard entirely.
``text_index``
    A ``$text`` search with an inverted index built — resolve candidates
    by posting-list intersection/union, then verify the residual filter.
``field_index``
    A top-level equality/``$in`` condition on a hash-indexed field —
    per-shard bucket lookup, then verify the full filter.
``scan``
    Everything else — per-shard sequence-ordered scan.

Every planning decision increments an ``repro.obs`` counter
(``store.plan.<kind>``) so a workload's plan mix is visible in any obs
snapshot.  Planning is pure with respect to the store: execution happens
inside the shards (see :mod:`repro.store.shard`), which re-verify the
predicate against live documents, so a stale plan is never unsafe — at
worst it degrades to a scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from .. import obs
from .errors import QueryError
from .query import TextQuery, split_text_query

PLAN_ID_LOOKUP = "id_lookup"
PLAN_TEXT_INDEX = "text_index"
PLAN_FIELD_INDEX = "field_index"
PLAN_SCAN = "scan"

PLAN_KINDS = (PLAN_ID_LOOKUP, PLAN_TEXT_INDEX, PLAN_FIELD_INDEX, PLAN_SCAN)


@dataclass(frozen=True)
class QueryPlan:
    """One planned access path for a query.

    ``residual`` is the filter with ``$text`` stripped — always verified
    by the full matcher against every candidate.  ``text`` (when present)
    is verified via the text predicate unless the plan kind is
    ``text_index``, where the posting lists are exact by construction.
    """

    kind: str
    residual: Dict[str, Any]
    text: Optional[TextQuery] = None
    id_value: Any = None
    has_id: bool = False


def _id_equality(residual: Dict[str, Any]) -> Tuple[bool, Any]:
    """Detect a top-level ``_id`` equality (plain or ``{"$eq": v}``)."""
    if "_id" not in residual:
        return False, None
    condition = residual["_id"]
    if isinstance(condition, dict):
        if set(condition) == {"$eq"}:
            return True, condition["$eq"]
        return False, None
    return True, condition


def _field_index_eligible(
    residual: Dict[str, Any], indexed_fields: Sequence[str]
) -> bool:
    """True when :func:`repro.store.index.plan_index_lookup` can narrow."""
    for fname, condition in residual.items():
        if fname.startswith("$") or fname not in indexed_fields:
            continue
        if isinstance(condition, dict):
            if set(condition) == {"$eq"}:
                return True
            if set(condition) == {"$in"} and isinstance(
                condition["$in"], (list, tuple, set)
            ):
                return True
        else:
            return True
    return False


def plan_query(
    query: Optional[Dict[str, Any]],
    *,
    indexed_fields: Sequence[str],
    text_fields: Sequence[str],
    text_indexed: bool,
) -> QueryPlan:
    """Choose an access path for *query* and record it in ``store.plan.*``.

    Raises :class:`~repro.store.errors.QueryError` when the query uses
    ``$text`` but the collection declared no text fields — the engine has
    nothing to search over, and silently matching nothing would hide the
    configuration error.
    """
    text, residual = split_text_query(dict(query or {}))
    if text is not None and not text_fields:
        raise QueryError(
            "$text requires text fields (create_text_index / declare_text_fields)"
        )
    has_id, id_value = _id_equality(residual)
    if has_id:
        kind = PLAN_ID_LOOKUP
    elif text is not None and text_indexed:
        kind = PLAN_TEXT_INDEX
    elif _field_index_eligible(residual, indexed_fields):
        kind = PLAN_FIELD_INDEX
    else:
        kind = PLAN_SCAN
    obs.counter(f"store.plan.{kind}").inc()
    return QueryPlan(
        kind=kind,
        residual=residual,
        text=text,
        id_value=id_value,
        has_id=has_id,
    )
