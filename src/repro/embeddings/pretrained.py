"""Pretrained-embedding stand-in for the GoogleNews word2vec model.

§4.9: the paper vectorizes with a word2vec pretrained on Google News
(3M words, 300 dimensions) because it generalizes better than anything
trainable on the collected data.  That 3.6 GB binary is unavailable
offline, so :class:`PretrainedEmbeddings` provides the same *interface*
(fixed word -> 300-d vector lookup with an out-of-vocabulary notion, which
drives the SW/RND/SWM distinction in §4.7) built from either

* a Word2Vec model trained on a background corpus (semantically structured
  vectors — the default for the reproduction's experiments), or
* deterministic hash-seeded Gaussian vectors (fast, collision-free, used
  by unit tests and as a filler for background-corpus gaps).

The ``coverage`` knob deliberately marks a slice of words as OOV, because
reproducing the paper's A/B/C dataset differences requires some tweet terms
to be missing from the "pretrained" model.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .word2vec import Word2Vec


def _hash_seed(word: str, salt: int) -> int:
    digest = hashlib.sha256(f"{salt}:{word}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def hash_vector(word: str, dim: int, salt: int = 0) -> np.ndarray:
    """Deterministic unit-norm Gaussian vector for *word*."""
    rng = np.random.default_rng(_hash_seed(word, salt))
    v = rng.standard_normal(dim)
    norm = np.linalg.norm(v)
    return v / norm if norm > 0 else v


class PretrainedEmbeddings:
    """Immutable word -> vector store with explicit OOV behaviour.

    >>> emb = PretrainedEmbeddings.deterministic(["election", "vote"], dim=8)
    >>> "election" in emb
    True
    >>> emb.get("unknown") is None
    True
    """

    def __init__(self, vectors: Dict[str, np.ndarray], dim: int) -> None:
        for word, vector in vectors.items():
            if vector.shape != (dim,):
                raise ValueError(
                    f"vector for {word!r} has shape {vector.shape}, expected ({dim},)"
                )
        self._vectors = dict(vectors)
        self.dim = dim

    # -- constructors ------------------------------------------------------------

    @classmethod
    def deterministic(
        cls,
        words: Iterable[str],
        dim: int = 300,
        salt: int = 0,
    ) -> "PretrainedEmbeddings":
        """Hash-seeded vectors for *words* (unit norm, reproducible)."""
        return cls({w: hash_vector(w, dim, salt) for w in sorted(set(words))}, dim)

    @classmethod
    def from_word2vec(cls, model: Word2Vec) -> "PretrainedEmbeddings":
        """Freeze a trained :class:`Word2Vec` into a lookup store."""
        return cls(model.vectors(), model.vector_size)

    @classmethod
    def train_background(
        cls,
        corpus: Sequence[Sequence[str]],
        dim: int = 300,
        epochs: int = 2,
        min_count: int = 2,
        coverage: float = 1.0,
        seed: int = 0,
    ) -> "PretrainedEmbeddings":
        """Train on a background corpus, then optionally drop coverage.

        *coverage* < 1 removes the rarest (1 - coverage) fraction of words
        from the store, simulating GoogleNews misses on novel/slang tweet
        terms (which is what distinguishes the SW and RND variants).
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        model = Word2Vec(
            vector_size=dim,
            min_count=min_count,
            epochs=epochs,
            seed=seed,
            sg=True,
        )
        model.train(corpus)
        vectors = model.vectors()
        if coverage < 1.0 and vectors:
            # Drop the rarest words first: GoogleNews misses tail terms.
            ranked = sorted(
                vectors, key=lambda w: (model.word_counts[w], w), reverse=True
            )
            keep = max(1, int(round(len(ranked) * coverage)))
            vectors = {w: vectors[w] for w in ranked[:keep]}
        return cls(vectors, dim)

    @classmethod
    def train_background_lsa(
        cls,
        corpus: Sequence[Sequence[str]],
        dim: int = 300,
        min_count: int = 2,
        coverage: float = 1.0,
        seed: int = 0,
    ) -> "PretrainedEmbeddings":
        """Fast background embeddings via LSA over a TFIDF term-doc matrix.

        Word2Vec training is the faithful route but costs minutes on large
        corpora; truncated SVD of the term-document matrix yields word
        vectors with the same property the pipeline needs — terms of the
        same topic land close together — in a few seconds.  Vectors are
        unit-normalized and zero-padded up to *dim* when the corpus rank
        is smaller.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        from ..text.vocabulary import Vocabulary
        from ..weighting.matrix import DocumentTermMatrix

        vocabulary = Vocabulary.from_documents(corpus, min_count=min_count)
        if len(vocabulary) == 0:
            return cls({}, dim)
        dtm = DocumentTermMatrix.from_documents_with_vocabulary(
            corpus, vocabulary, weighting="tfidf"
        )
        return cls.lsa_from_matrix(dtm, dim=dim, coverage=coverage, seed=seed)

    @classmethod
    def lsa_from_matrix(
        cls,
        dtm,
        dim: int = 300,
        coverage: float = 1.0,
        seed: int = 0,
    ) -> "PretrainedEmbeddings":
        """LSA embeddings from a prebuilt TFIDF :class:`DocumentTermMatrix`.

        Split out of :meth:`train_background_lsa` so the streaming
        pipeline, which maintains the document-term matrix
        incrementally, can run the identical SVD path and stay bitwise
        compatible with the batch route.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        import numpy as _np
        from scipy.sparse.linalg import svds

        vocabulary = dtm.vocabulary
        if len(vocabulary) == 0:
            return cls({}, dim)
        terms_by_docs = dtm.matrix.T.tocsc().astype(float)
        # Request one extra component: the dominant singular direction is
        # a corpus-wide "mean" shared by every word, which would make all
        # keyword-set averages nearly parallel (cosine ~ 1 between any two
        # topics).  Dropping it ("all-but-the-top" postprocessing) restores
        # discriminative cosines, as with published word embeddings.
        k = min(dim + 1, min(terms_by_docs.shape) - 1)
        if k < 1:
            vectors = {w: hash_vector(w, dim, seed) for w in vocabulary.terms()}
            return cls(vectors, dim)
        rng = np.random.default_rng(seed)
        U, S, _Vt = svds(terms_by_docs, k=k, v0=rng.random(min(terms_by_docs.shape)))
        order = _np.argsort(-S)
        U, S = U[:, order], S[order]
        if k > 1:
            U, S = U[:, 1:], S[1:]  # drop the dominant shared component
        k = S.size
        word_matrix = U * S
        if k < dim:
            word_matrix = _np.hstack(
                [word_matrix, _np.zeros((word_matrix.shape[0], dim - k))]
            )
        norms = _np.linalg.norm(word_matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        word_matrix = word_matrix / norms
        vectors = {
            vocabulary.term(i): word_matrix[i] for i in range(len(vocabulary))
        }
        if coverage < 1.0:
            ranked = sorted(
                vectors,
                key=lambda w: (vocabulary.term_frequency(w), w),
                reverse=True,
            )
            keep = max(1, int(round(len(ranked) * coverage)))
            vectors = {w: vectors[w] for w in ranked[:keep]}
        return cls(vectors, dim)

    def without(self, words: Iterable[str]) -> "PretrainedEmbeddings":
        """A copy of the store with *words* removed (made OOV).

        The reproduction uses this to simulate GoogleNews's vocabulary
        gaps: platform slang ("lmao", "ngl", ...) never appears in a 2013
        news-corpus model, and those gaps are exactly what separates the
        SW and RND document-embedding variants (§4.7).
        """
        dropped = set(words)
        return PretrainedEmbeddings(
            {w: v for w, v in self._vectors.items() if w not in dropped},
            self.dim,
        )

    # -- lookup -------------------------------------------------------------------

    def __contains__(self, word: str) -> bool:
        return word in self._vectors

    def __len__(self) -> int:
        return len(self._vectors)

    def __getitem__(self, word: str) -> np.ndarray:
        return self._vectors[word]

    def get(self, word: str) -> Optional[np.ndarray]:
        """Vector for *word*, or None when out of vocabulary."""
        return self._vectors.get(word)

    def words(self) -> List[str]:
        """All in-vocabulary words."""
        return list(self._vectors.keys())

    def coverage_of(self, tokens: Sequence[str]) -> float:
        """Fraction of *tokens* present in the store (1.0 for empty input)."""
        if not tokens:
            return 1.0
        hits = sum(1 for t in tokens if t in self._vectors)
        return hits / len(tokens)
