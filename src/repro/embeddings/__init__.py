"""Text representation via embeddings (§3.4, §4.7)."""

from .doc2vec import (
    keywords2vec,
    rnd_doc2vec,
    sif_doc2vec,
    sw_doc2vec,
    swm_doc2vec,
)
from .paragraph import ParagraphVectors
from .pretrained import PretrainedEmbeddings, hash_vector
from .similarity import (
    cosine_similarity,
    cosine_similarity_matrix,
    safe_cosine_similarity,
)
from .word2vec import Word2Vec

__all__ = [
    "Word2Vec",
    "ParagraphVectors",
    "PretrainedEmbeddings",
    "hash_vector",
    "sw_doc2vec",
    "rnd_doc2vec",
    "swm_doc2vec",
    "sif_doc2vec",
    "keywords2vec",
    "cosine_similarity",
    "safe_cosine_similarity",
    "cosine_similarity_matrix",
]
