"""Word2Vec — skip-gram and CBOW with negative sampling, in numpy.

Replaces Gensim's implementation (§4.7 uses Gensim Word2Vec; §3.4
describes both architectures).  The model learns two matrices: input
vectors W_in (the embeddings handed to callers) and output vectors W_out
(context side).  Training uses the standard negative-sampling objective
with a unigram^0.75 noise distribution and optional frequent-word
subsampling.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .. import obs


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Word2Vec:
    """Train word embeddings on a tokenized corpus.

    Parameters
    ----------
    vector_size:
        Embedding dimensionality (the paper's pretrained vectors are 300-d).
    window:
        Maximum context distance on each side of the center word.
    min_count:
        Discard words rarer than this.
    sg:
        True for skip-gram, False for CBOW (§3.4 describes both).
    negative:
        Number of negative samples per positive pair.
    subsample:
        Frequent-word subsampling threshold (0 disables).
    epochs / learning_rate / seed:
        Training-loop knobs; the learning rate decays linearly to 1e-4 of
        its initial value across all epochs.
    """

    def __init__(
        self,
        vector_size: int = 100,
        window: int = 5,
        min_count: int = 2,
        sg: bool = True,
        negative: int = 5,
        subsample: float = 1e-3,
        epochs: int = 3,
        learning_rate: float = 0.025,
        seed: int = 0,
    ) -> None:
        if vector_size < 1:
            raise ValueError("vector_size must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if negative < 1:
            raise ValueError("negative must be >= 1")
        self.vector_size = vector_size
        self.window = window
        self.min_count = min_count
        self.sg = sg
        self.negative = negative
        self.subsample = subsample
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed

        self.word_to_index: Dict[str, int] = {}
        self.index_to_word: List[str] = []
        self.word_counts: Counter = Counter()
        self.W_in: Optional[np.ndarray] = None
        self.W_out: Optional[np.ndarray] = None
        self._noise_table: Optional[np.ndarray] = None

    # -- vocabulary ----------------------------------------------------------

    def build_vocab(self, corpus: Sequence[Sequence[str]]) -> None:
        """Build the vocabulary and negative-sampling table from *corpus*."""
        counts: Counter = Counter()
        for sentence in corpus:
            counts.update(sentence)
        kept = sorted(
            (w for w, c in counts.items() if c >= self.min_count),
            key=lambda w: (-counts[w], w),
        )
        self.index_to_word = kept
        self.word_to_index = {w: i for i, w in enumerate(kept)}
        self.word_counts = Counter({w: counts[w] for w in kept})

        rng = np.random.default_rng(self.seed)
        bound = 0.5 / self.vector_size
        self.W_in = rng.uniform(-bound, bound, (len(kept), self.vector_size))
        self.W_out = np.zeros((len(kept), self.vector_size))
        self._build_noise_table()

    def _build_noise_table(self, table_size: int = 100_000) -> None:
        """Cumulative unigram^0.75 table for O(1) negative sampling."""
        if not self.index_to_word:
            self._noise_table = np.zeros(0, dtype=np.int64)
            return
        freqs = np.array(
            [self.word_counts[w] for w in self.index_to_word], dtype=np.float64
        )
        probs = freqs ** 0.75
        probs /= probs.sum()
        self._noise_table = np.random.default_rng(self.seed).choice(
            len(freqs), size=table_size, p=probs
        )

    # -- training -----------------------------------------------------------------

    def train(self, corpus: Sequence[Sequence[str]]) -> float:
        """Train on *corpus*; builds the vocabulary if not yet built.

        Returns the mean negative-sampling loss of the final epoch (useful
        for convergence assertions in tests).
        """
        if self.W_in is None:
            self.build_vocab(corpus)
        if len(self.index_to_word) == 0:
            raise ValueError("empty vocabulary — corpus too small for min_count")

        encoded = self._encode_corpus(corpus)
        total_steps = max(1, self.epochs * sum(len(s) for s in encoded))
        rng = np.random.default_rng(self.seed + 1)
        step = 0
        final_loss = 0.0
        with obs.span("embeddings.word2vec.train") as train_span:
            for _epoch in range(self.epochs):
                epoch_loss = 0.0
                n_pairs = 0
                for sentence in encoded:
                    sampled = self._subsample(sentence, rng)
                    for pos, center in enumerate(sampled):
                        step += 1
                        lr = self.learning_rate * max(
                            1e-4, 1.0 - step / (total_steps + 1)
                        )
                        reduced = rng.integers(1, self.window + 1)
                        left = max(0, pos - reduced)
                        context = [
                            sampled[i]
                            for i in range(left, min(len(sampled), pos + reduced + 1))
                            if i != pos
                        ]
                        if not context:
                            continue
                        if self.sg:
                            for ctx in context:
                                epoch_loss += self._train_pair(center, ctx, lr, rng)
                                n_pairs += 1
                        else:
                            epoch_loss += self._train_cbow(context, center, lr, rng)
                            n_pairs += 1
                final_loss = epoch_loss / max(n_pairs, 1)
                obs.histogram("embeddings.word2vec.epoch_loss").observe(final_loss)
            train_span.annotate(
                vocabulary=len(self.index_to_word),
                sentences=len(encoded),
                epochs=self.epochs,
                final_loss=final_loss,
            )
        return final_loss

    def _encode_corpus(self, corpus: Sequence[Sequence[str]]) -> List[List[int]]:
        return [
            [self.word_to_index[w] for w in sentence if w in self.word_to_index]
            for sentence in corpus
        ]

    def _subsample(self, sentence: List[int], rng) -> List[int]:
        if self.subsample <= 0:
            return sentence
        total = sum(self.word_counts.values())
        out: List[int] = []
        for idx in sentence:
            freq = self.word_counts[self.index_to_word[idx]] / total
            keep = min(1.0, math.sqrt(self.subsample / freq)) if freq > 0 else 1.0
            if rng.random() < keep:
                out.append(idx)
        return out

    def _negative_samples(self, exclude: int, rng) -> np.ndarray:
        table = self._noise_table
        picks = table[rng.integers(0, len(table), size=self.negative)]
        # Re-draw collisions with the positive target (cheap, rare).
        for i, p in enumerate(picks):
            while p == exclude:
                p = table[rng.integers(0, len(table))]
            picks[i] = p
        return picks

    def _train_pair(self, center: int, context: int, lr: float, rng) -> float:
        """One skip-gram negative-sampling step; returns the pair loss."""
        v = self.W_in[center]
        targets = np.concatenate(([context], self._negative_samples(context, rng)))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self.W_out[targets]                      # (1+neg, dim)
        scores = _sigmoid(outs @ v)                     # (1+neg,)
        grads = scores - labels                         # dL/dscore
        loss = -math.log(max(scores[0], 1e-10)) - np.sum(
            np.log(np.maximum(1.0 - scores[1:], 1e-10))
        )
        grad_v = grads @ outs                           # (dim,)
        self.W_out[targets] -= lr * grads[:, np.newaxis] * v[np.newaxis, :]
        self.W_in[center] -= lr * grad_v
        return float(loss)

    def _train_cbow(self, context: List[int], center: int, lr: float, rng) -> float:
        """One CBOW step: mean of context vectors predicts the center."""
        ctx = np.asarray(context)
        h = self.W_in[ctx].mean(axis=0)
        targets = np.concatenate(([center], self._negative_samples(center, rng)))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self.W_out[targets]
        scores = _sigmoid(outs @ h)
        grads = scores - labels
        loss = -math.log(max(scores[0], 1e-10)) - np.sum(
            np.log(np.maximum(1.0 - scores[1:], 1e-10))
        )
        grad_h = grads @ outs
        self.W_out[targets] -= lr * grads[:, np.newaxis] * h[np.newaxis, :]
        self.W_in[ctx] -= lr * grad_h / len(context)
        return float(loss)

    # -- lookups ----------------------------------------------------------------------

    def __contains__(self, word: str) -> bool:
        return word in self.word_to_index

    def __getitem__(self, word: str) -> np.ndarray:
        if self.W_in is None:
            raise RuntimeError("model not trained")
        return self.W_in[self.word_to_index[word]]

    def get(self, word: str) -> Optional[np.ndarray]:
        if self.W_in is None or word not in self.word_to_index:
            return None
        return self.W_in[self.word_to_index[word]]

    def most_similar(self, word: str, top: int = 10) -> List[tuple]:
        """Nearest neighbours by cosine over the input vectors."""
        if self.W_in is None:
            raise RuntimeError("model not trained")
        if word not in self.word_to_index:
            raise KeyError(word)
        v = self[word]
        norms = np.linalg.norm(self.W_in, axis=1) * np.linalg.norm(v)
        norms[norms == 0] = 1e-12
        sims = (self.W_in @ v) / norms
        order = np.argsort(-sims)
        out = []
        for idx in order:
            candidate = self.index_to_word[int(idx)]
            if candidate == word:
                continue
            out.append((candidate, float(sims[idx])))
            if len(out) >= top:
                break
        return out

    def vectors(self) -> Dict[str, np.ndarray]:
        """Word -> embedding copy of the full table."""
        if self.W_in is None:
            raise RuntimeError("model not trained")
        return {w: self.W_in[i].copy() for w, i in self.word_to_index.items()}
