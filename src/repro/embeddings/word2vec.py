"""Word2Vec — skip-gram and CBOW with negative sampling, in numpy.

Replaces Gensim's implementation (§4.7 uses Gensim Word2Vec; §3.4
describes both architectures).  The model learns two matrices: input
vectors W_in (the embeddings handed to callers) and output vectors W_out
(context side).  Training uses the standard negative-sampling objective
with a unigram^0.75 noise distribution and optional frequent-word
subsampling.

Two trainers share the same objective:

* ``trainer="batch"`` (default) — all (center, context, negatives) pairs
  of a sentence are encoded as index arrays up front and updated in one
  ``(P, 1+negative, dim)`` einsum block, mirroring Gensim's batched
  sg/cbow kernels.  **Accumulation semantics:** every pair in a sentence
  computes its gradient against the weights as they stood at the start
  of that sentence, and the gradients are scatter-added (``np.add.at``,
  deterministic index order) afterwards — mini-batch SGD with one batch
  per sentence, whereas the loop trainer is strictly sequential SGD.
  The two reach the same loss plateau (pinned within 5% by the
  benchmark harness) but are not bitwise interchangeable.
* ``trainer="loop"`` — the original per-pair Python loop, kept as the
  reference implementation for parity and regression benchmarks.

Randomness uses three decorrelated streams derived from ``seed``:
``W_in`` init (``default_rng(seed)``), the training stream
(``default_rng(seed + 1)``), and the noise table
(``SeedSequence(seed).spawn``-style child stream) — the noise table used
to reuse the ``W_in`` stream, correlating negative samples with
initialization.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs

TRAINERS = ("batch", "loop")


def _word_seed(word: str, salt: int) -> int:
    """Stable per-word RNG seed: init rows for words added by
    :meth:`Word2Vec.grow_vocab` must not depend on *when* the word
    crossed ``min_count``, only on the word itself and the model seed."""
    digest = hashlib.sha256(f"w2v:{salt}:{word}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")

# Bounded re-draw budget when a negative sample collides with the
# positive target; past it we derive a non-colliding index directly.
_MAX_NEGATIVE_RETRIES = 8


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _scatter_add(matrix: np.ndarray, indices: np.ndarray, updates: np.ndarray) -> None:
    """``matrix[indices] += updates`` with duplicate indices accumulated.

    Equivalent to ``np.add.at`` but ~5x faster: rows are stable-sorted by
    index and summed per segment with ``np.add.reduceat``.  Accumulation
    order is index-sorted (not input-ordered), which is deterministic —
    the float-addition order is a fixed function of the index multiset.
    """
    if len(indices) == 0:
        return
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    sorted_upd = updates[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_idx[1:] != sorted_idx[:-1]))
    )
    matrix[sorted_idx[boundaries]] += np.add.reduceat(sorted_upd, boundaries, axis=0)


class Word2Vec:
    """Train word embeddings on a tokenized corpus.

    Parameters
    ----------
    vector_size:
        Embedding dimensionality (the paper's pretrained vectors are 300-d).
    window:
        Maximum context distance on each side of the center word.
    min_count:
        Discard words rarer than this.
    sg:
        True for skip-gram, False for CBOW (§3.4 describes both).
    negative:
        Number of negative samples per positive pair.
    subsample:
        Frequent-word subsampling threshold (0 disables).
    epochs / learning_rate / seed:
        Training-loop knobs; the learning rate decays linearly to 1e-4 of
        its initial value across all epochs.
    trainer:
        ``"batch"`` for the vectorized per-sentence kernel (default) or
        ``"loop"`` for the sequential per-pair reference implementation.
    """

    def __init__(
        self,
        vector_size: int = 100,
        window: int = 5,
        min_count: int = 2,
        sg: bool = True,
        negative: int = 5,
        subsample: float = 1e-3,
        epochs: int = 3,
        learning_rate: float = 0.025,
        seed: int = 0,
        trainer: str = "batch",
    ) -> None:
        if vector_size < 1:
            raise ValueError("vector_size must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if negative < 1:
            raise ValueError("negative must be >= 1")
        if trainer not in TRAINERS:
            raise ValueError(f"trainer must be one of {TRAINERS}, got {trainer!r}")
        self.vector_size = vector_size
        self.window = window
        self.min_count = min_count
        self.sg = sg
        self.negative = negative
        self.subsample = subsample
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.trainer = trainer

        self.word_to_index: Dict[str, int] = {}
        self.index_to_word: List[str] = []
        self.word_counts: Counter = Counter()
        self.W_in: Optional[np.ndarray] = None
        self.W_out: Optional[np.ndarray] = None
        self._noise_table: Optional[np.ndarray] = None
        self._keep_probs: Optional[np.ndarray] = None
        # Cumulative raw counts (including sub-min_count words) so that
        # grow_vocab can promote a word once its *total* count crosses
        # the threshold, and the number of completed training sessions,
        # which decorrelates each continue_train's stream.
        self._raw_counts: Counter = Counter()
        self._sessions = 0

    # -- vocabulary ----------------------------------------------------------

    def build_vocab(self, corpus: Sequence[Sequence[str]]) -> None:
        """Build the vocabulary and negative-sampling table from *corpus*."""
        counts: Counter = Counter()
        for sentence in corpus:
            counts.update(sentence)
        kept = sorted(
            (w for w, c in counts.items() if c >= self.min_count),
            key=lambda w: (-counts[w], w),
        )
        self.index_to_word = kept
        self.word_to_index = {w: i for i, w in enumerate(kept)}
        self.word_counts = Counter({w: counts[w] for w in kept})
        self._raw_counts = counts

        rng = np.random.default_rng(self.seed)
        bound = 0.5 / self.vector_size
        self.W_in = rng.uniform(-bound, bound, (len(kept), self.vector_size))
        self.W_out = np.zeros((len(kept), self.vector_size))
        self._build_noise_table()
        self._build_keep_probs()

    def grow_vocab(self, corpus: Sequence[Sequence[str]]) -> List[str]:
        """Fold *corpus* into the vocabulary, appending newly eligible words.

        Existing words keep their indexes (and therefore their trained
        vectors); words whose cumulative raw count crosses ``min_count``
        are appended in ``(-count, word)`` order with deterministic
        per-word init rows (``uniform(-bound, bound)`` seeded by a hash
        of the word, so the row is independent of arrival time) and
        zeroed output rows, matching a fresh word's state in
        :meth:`build_vocab`.  The noise table and subsampling
        probabilities are rebuilt from the updated counts.  Returns the
        list of words added.  Builds from scratch when no vocabulary
        exists yet.
        """
        if self.W_in is None:
            self.build_vocab(corpus)
            return list(self.index_to_word)
        for sentence in corpus:
            self._raw_counts.update(sentence)
        new_words = sorted(
            (
                w
                for w, c in self._raw_counts.items()
                if c >= self.min_count and w not in self.word_to_index
            ),
            key=lambda w: (-self._raw_counts[w], w),
        )
        if new_words:
            bound = 0.5 / self.vector_size
            rows = np.vstack(
                [
                    np.random.default_rng(_word_seed(w, self.seed)).uniform(
                        -bound, bound, self.vector_size
                    )
                    for w in new_words
                ]
            )
            self.W_in = np.vstack([self.W_in, rows])
            self.W_out = np.vstack(
                [self.W_out, np.zeros((len(new_words), self.vector_size))]
            )
            for w in new_words:
                self.word_to_index[w] = len(self.index_to_word)
                self.index_to_word.append(w)
        self.word_counts = Counter(
            {w: self._raw_counts[w] for w in self.index_to_word}
        )
        self._build_noise_table()
        self._build_keep_probs()
        return new_words

    def _build_noise_table(self, table_size: int = 100_000) -> None:
        """Cumulative unigram^0.75 table for O(1) negative sampling.

        Drawn from a child stream of ``seed`` (``spawn_key=(2,)``) so the
        table is decorrelated from the ``W_in`` init stream
        (``default_rng(seed)``) and the training stream (``seed + 1``).
        """
        if not self.index_to_word:
            self._noise_table = np.zeros(0, dtype=np.int64)
            return
        freqs = np.array(
            [self.word_counts[w] for w in self.index_to_word], dtype=np.float64
        )
        probs = freqs ** 0.75
        probs /= probs.sum()
        noise_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(2,))
        )
        self._noise_table = noise_rng.choice(len(freqs), size=table_size, p=probs)

    def _build_keep_probs(self) -> None:
        """Per-index subsampling keep-probabilities (vectorized lookup)."""
        n = len(self.index_to_word)
        if n == 0 or self.subsample <= 0:
            self._keep_probs = np.ones(n)
            return
        freqs = np.array(
            [self.word_counts[w] for w in self.index_to_word], dtype=np.float64
        )
        total = freqs.sum()
        with np.errstate(divide="ignore"):
            keep = np.sqrt(self.subsample * total / freqs)
        keep[freqs <= 0] = 1.0
        self._keep_probs = np.minimum(1.0, keep)

    # -- training -----------------------------------------------------------------

    def train(self, corpus: Sequence[Sequence[str]]) -> float:
        """Train on *corpus*; builds the vocabulary if not yet built.

        Returns the mean negative-sampling loss of the final epoch (useful
        for convergence assertions in tests).
        """
        if self.W_in is None:
            self.build_vocab(corpus)
        if len(self.index_to_word) == 0:
            raise ValueError("empty vocabulary — corpus too small for min_count")

        encoded = self._encode_corpus(corpus)
        rng = np.random.default_rng(self.seed + 1)
        final_loss = self._run_epochs(encoded, rng)
        self._sessions = max(self._sessions, 1)
        return final_loss

    def continue_train(self, corpus: Sequence[Sequence[str]]) -> float:
        """Further train the existing vectors on *corpus* only.

        Unlike :meth:`train` this never rebuilds the vocabulary — call
        :meth:`grow_vocab` first so new words have rows — and it draws
        from a fresh stream (``seed + 1 + sessions``) so successive
        continuations are decorrelated from each other and from the
        initial :meth:`train` pass.  Cost is O(len(corpus)), which is
        what makes per-cycle embedding continuation in the streaming
        pipeline cheap.  Returns the mean final-epoch loss.
        """
        if self.W_in is None:
            raise RuntimeError("no vocabulary — call grow_vocab or train first")
        if len(self.index_to_word) == 0:
            raise ValueError("empty vocabulary — corpus too small for min_count")
        encoded = self._encode_corpus(corpus)
        rng = np.random.default_rng(self.seed + 1 + self._sessions)
        self._sessions += 1
        return self._run_epochs(encoded, rng)

    def _run_epochs(self, encoded: List[np.ndarray], rng) -> float:
        """The shared epoch loop over pre-encoded sentences."""
        total_steps = max(1, self.epochs * sum(len(s) for s in encoded))
        step = 0
        final_loss = 0.0
        train_sentence = (
            self._train_sentence_batched
            if self.trainer == "batch"
            else self._train_sentence_loop
        )
        with obs.span("embeddings.word2vec.train") as train_span:
            for _epoch in range(self.epochs):
                epoch_loss = 0.0
                n_pairs = 0
                for sentence in encoded:
                    sampled = self._subsample(sentence, rng)
                    loss, pairs = train_sentence(sampled, rng, step, total_steps)
                    epoch_loss += loss
                    n_pairs += pairs
                    step += len(sampled)
                final_loss = epoch_loss / max(n_pairs, 1)
                obs.histogram("embeddings.word2vec.epoch_loss").observe(final_loss)
            train_span.annotate(
                vocabulary=len(self.index_to_word),
                sentences=len(encoded),
                epochs=self.epochs,
                trainer=self.trainer,
                final_loss=final_loss,
            )
        return final_loss

    def _learning_rate_at(self, step: int, total_steps: int) -> float:
        return self.learning_rate * max(1e-4, 1.0 - step / (total_steps + 1))

    def _encode_corpus(
        self, corpus: Sequence[Sequence[str]]
    ) -> List[np.ndarray]:
        return [
            np.array(
                [self.word_to_index[w] for w in sentence if w in self.word_to_index],
                dtype=np.int64,
            )
            for sentence in corpus
        ]

    def _subsample(self, sentence: np.ndarray, rng) -> np.ndarray:
        if self.subsample <= 0 or len(sentence) == 0:
            return sentence
        keep = self._keep_probs[sentence]
        return sentence[rng.random(len(sentence)) < keep]

    # -- batched trainer ----------------------------------------------------------

    def _sentence_pairs(
        self, sampled: np.ndarray, rng
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized (positions, context-position) grid for one sentence.

        Returns ``(pos, ctx_pos, valid)`` where ``pos`` indexes centers,
        ``ctx_pos`` is the ``(n, 2*window)`` matrix of candidate context
        positions and ``valid`` masks in-bounds positions within each
        center's per-position reduced window — the same window shrinking
        the loop trainer applies, drawn from the same stream.
        """
        n = len(sampled)
        reduced = rng.integers(1, self.window + 1, size=n)
        offsets = np.concatenate(
            [np.arange(-self.window, 0), np.arange(1, self.window + 1)]
        )
        pos = np.arange(n)
        ctx_pos = pos[:, None] + offsets[None, :]
        valid = (
            (ctx_pos >= 0)
            & (ctx_pos < n)
            & (np.abs(offsets)[None, :] <= reduced[:, None])
        )
        return pos, np.clip(ctx_pos, 0, max(n - 1, 0)), valid

    def _negative_samples_batch(
        self, exclude: np.ndarray, rng
    ) -> np.ndarray:
        """(P, negative) noise-table draws avoiding the positive targets.

        Collisions with the excluded positive are re-drawn at most
        ``_MAX_NEGATIVE_RETRIES`` times; survivors are replaced by a
        uniformly chosen *other* vocabulary index, so the draw terminates
        even when the noise table contains only the excluded word.  With
        a single-word vocabulary there is no other index: the pair trains
        with zero negatives (shape ``(P, 0)``).
        """
        n_vocab = len(self.index_to_word)
        p = len(exclude)
        if n_vocab <= 1:
            return np.empty((p, 0), dtype=np.int64)
        table = self._noise_table
        picks = table[rng.integers(0, len(table), size=(p, self.negative))]
        collisions = picks == exclude[:, None]
        for _ in range(_MAX_NEGATIVE_RETRIES):
            if not collisions.any():
                return picks
            rows, cols = np.nonzero(collisions)
            picks[rows, cols] = table[rng.integers(0, len(table), size=len(rows))]
            collisions = picks == exclude[:, None]
        rows, cols = np.nonzero(collisions)
        if len(rows):
            shift = rng.integers(0, n_vocab - 1, size=len(rows))
            picks[rows, cols] = (exclude[rows] + 1 + shift) % n_vocab
        return picks

    def _train_sentence_batched(
        self, sampled: np.ndarray, rng, step: int, total_steps: int
    ) -> Tuple[float, int]:
        """One sentence as a single vectorized mini-batch update.

        All pairs use the learning rate at the sentence's starting step
        (the loop trainer decays it per center position; over a sentence
        the difference is O(len/total_steps) and vanishes at scale).
        """
        n = len(sampled)
        if n < 2:
            return 0.0, 0
        lr = self._learning_rate_at(step, total_steps)
        pos, ctx_pos, valid = self._sentence_pairs(sampled, rng)
        if self.sg:
            centers = sampled[np.repeat(pos, valid.sum(axis=1))]
            contexts = sampled[ctx_pos[valid]]
            if len(centers) == 0:
                return 0.0, 0
            return self._train_batch_sg(centers, contexts, lr, rng)
        counts = valid.sum(axis=1)
        keep = counts > 0
        if not keep.any():
            return 0.0, 0
        ctx_flat = sampled[ctx_pos[valid]]
        rows = np.repeat(np.arange(n)[keep], counts[keep])
        rows = np.searchsorted(np.flatnonzero(keep), rows)
        return self._train_batch_cbow(
            sampled[keep], ctx_flat, rows, counts[keep], lr, rng
        )

    def _train_batch_sg(
        self, centers: np.ndarray, contexts: np.ndarray, lr: float, rng
    ) -> Tuple[float, int]:
        """Skip-gram negative-sampling update for a batch of pairs."""
        negatives = self._negative_samples_batch(contexts, rng)
        targets = np.concatenate([contexts[:, None], negatives], axis=1)
        v = self.W_in[centers]                                  # (P, dim)
        outs = self.W_out[targets]                              # (P, 1+neg, dim)
        scores = _sigmoid(np.einsum("pkd,pd->pk", outs, v))     # (P, 1+neg)
        grads = scores.copy()
        grads[:, 0] -= 1.0
        loss = -np.log(np.maximum(scores[:, 0], 1e-10)) - np.sum(
            np.log(np.maximum(1.0 - scores[:, 1:], 1e-10)), axis=1
        )
        grad_v = np.einsum("pk,pkd->pd", grads, outs)           # (P, dim)
        delta_out = (-lr) * grads[:, :, None] * v[:, None, :]   # (P, 1+neg, dim)
        _scatter_add(
            self.W_out,
            targets.reshape(-1),
            delta_out.reshape(-1, self.vector_size),
        )
        _scatter_add(self.W_in, centers, (-lr) * grad_v)
        return float(loss.sum()), len(centers)

    def _train_batch_cbow(
        self,
        centers: np.ndarray,
        ctx_flat: np.ndarray,
        rows: np.ndarray,
        counts: np.ndarray,
        lr: float,
        rng,
    ) -> Tuple[float, int]:
        """CBOW update for a batch of positions.

        ``ctx_flat`` holds every context index, ``rows`` maps each onto
        its center's row, ``counts`` the per-row context sizes.
        """
        h = np.zeros((len(centers), self.vector_size))
        _scatter_add(h, rows, self.W_in[ctx_flat])
        h /= counts[:, None]
        negatives = self._negative_samples_batch(centers, rng)
        targets = np.concatenate([centers[:, None], negatives], axis=1)
        outs = self.W_out[targets]
        scores = _sigmoid(np.einsum("pkd,pd->pk", outs, h))
        grads = scores.copy()
        grads[:, 0] -= 1.0
        loss = -np.log(np.maximum(scores[:, 0], 1e-10)) - np.sum(
            np.log(np.maximum(1.0 - scores[:, 1:], 1e-10)), axis=1
        )
        grad_h = np.einsum("pk,pkd->pd", grads, outs)
        delta_out = (-lr) * grads[:, :, None] * h[:, None, :]
        _scatter_add(
            self.W_out,
            targets.reshape(-1),
            delta_out.reshape(-1, self.vector_size),
        )
        _scatter_add(
            self.W_in,
            ctx_flat,
            (-lr) * grad_h[rows] / counts[rows][:, None],
        )
        return float(loss.sum()), len(centers)

    # -- loop trainer (reference implementation) -----------------------------------

    def _train_sentence_loop(
        self, sampled: np.ndarray, rng, step: int, total_steps: int
    ) -> Tuple[float, int]:
        """Sequential per-pair SGD over one sentence (original semantics)."""
        loss = 0.0
        n_pairs = 0
        for pos, center in enumerate(sampled):
            step += 1
            lr = self._learning_rate_at(step, total_steps)
            reduced = rng.integers(1, self.window + 1)
            left = max(0, pos - reduced)
            context = [
                sampled[i]
                for i in range(left, min(len(sampled), pos + reduced + 1))
                if i != pos
            ]
            if not context:
                continue
            if self.sg:
                for ctx in context:
                    loss += self._train_pair(int(center), int(ctx), lr, rng)
                    n_pairs += 1
            else:
                loss += self._train_cbow([int(c) for c in context], int(center), lr, rng)
                n_pairs += 1
        return loss, n_pairs

    def _negative_samples(self, exclude: int, rng) -> np.ndarray:
        """``negative`` noise draws avoiding *exclude*, guaranteed to halt.

        Collisions are re-drawn at most ``_MAX_NEGATIVE_RETRIES`` times,
        then replaced by a uniformly chosen other vocabulary index.  A
        single-word vocabulary yields an empty draw (no valid negative
        exists) — previously this case looped forever.
        """
        n_vocab = len(self.index_to_word)
        if n_vocab <= 1:
            return np.empty(0, dtype=np.int64)
        table = self._noise_table
        picks = table[rng.integers(0, len(table), size=self.negative)].copy()
        for i, p in enumerate(picks):
            retries = 0
            while p == exclude and retries < _MAX_NEGATIVE_RETRIES:
                p = table[rng.integers(0, len(table))]
                retries += 1
            if p == exclude:
                p = (exclude + 1 + rng.integers(0, n_vocab - 1)) % n_vocab
            picks[i] = p
        return picks

    def _train_pair(self, center: int, context: int, lr: float, rng) -> float:
        """One skip-gram negative-sampling step; returns the pair loss."""
        v = self.W_in[center]
        targets = np.concatenate(([context], self._negative_samples(context, rng)))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self.W_out[targets]                      # (1+neg, dim)
        scores = _sigmoid(outs @ v)                     # (1+neg,)
        grads = scores - labels                         # dL/dscore
        loss = -math.log(max(scores[0], 1e-10)) - np.sum(
            np.log(np.maximum(1.0 - scores[1:], 1e-10))
        )
        grad_v = grads @ outs                           # (dim,)
        self.W_out[targets] -= lr * grads[:, np.newaxis] * v[np.newaxis, :]
        self.W_in[center] -= lr * grad_v
        return float(loss)

    def _train_cbow(self, context: List[int], center: int, lr: float, rng) -> float:
        """One CBOW step: mean of context vectors predicts the center."""
        ctx = np.asarray(context)
        h = self.W_in[ctx].mean(axis=0)
        targets = np.concatenate(([center], self._negative_samples(center, rng)))
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        outs = self.W_out[targets]
        scores = _sigmoid(outs @ h)
        grads = scores - labels
        loss = -math.log(max(scores[0], 1e-10)) - np.sum(
            np.log(np.maximum(1.0 - scores[1:], 1e-10))
        )
        grad_h = grads @ outs
        self.W_out[targets] -= lr * grads[:, np.newaxis] * h[np.newaxis, :]
        self.W_in[ctx] -= lr * grad_h / len(context)
        return float(loss)

    # -- lookups ----------------------------------------------------------------------

    def __contains__(self, word: str) -> bool:
        return word in self.word_to_index

    def __getitem__(self, word: str) -> np.ndarray:
        if self.W_in is None:
            raise RuntimeError("model not trained")
        return self.W_in[self.word_to_index[word]]

    def get(self, word: str) -> Optional[np.ndarray]:
        """The word's vector, or None when untrained / out of vocabulary."""
        if self.W_in is None or word not in self.word_to_index:
            return None
        return self.W_in[self.word_to_index[word]]

    def most_similar(self, word: str, top: int = 10) -> List[tuple]:
        """Nearest neighbours by cosine over the input vectors."""
        if self.W_in is None:
            raise RuntimeError("model not trained")
        if word not in self.word_to_index:
            raise KeyError(word)
        v = self[word]
        norms = np.linalg.norm(self.W_in, axis=1) * np.linalg.norm(v)
        norms[norms == 0] = 1e-12
        sims = (self.W_in @ v) / norms
        order = np.argsort(-sims)
        out = []
        for idx in order:
            candidate = self.index_to_word[int(idx)]
            if candidate == word:
                continue
            out.append((candidate, float(sims[idx])))
            if len(out) >= top:
                break
        return out

    def vectors(self) -> Dict[str, np.ndarray]:
        """Word -> embedding copy of the full table."""
        if self.W_in is None:
            raise RuntimeError("model not trained")
        return {w: self.W_in[i].copy() for w, i in self.word_to_index.items()}
