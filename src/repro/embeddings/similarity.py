"""Cosine similarity (Eq 11) and batch helpers.

The Trending News and Correlation modules (§4.5–§4.6) score topic/event
matches with cosine similarity over Doc2Vec encodings; this module is that
scoring primitive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cosine_similarity(x: Sequence[float], y: Sequence[float]) -> float:
    """cos(theta) between vectors *x* and *y* (Eq 11).

    Raises ValueError when either vector has zero norm — the method
    "assumes that two embeddings have a non-zero norm" (§3.4), and a
    silent 0 would corrupt the correlation thresholds.
    """
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        raise ValueError("cosine similarity undefined for zero-norm vectors")
    return float(np.dot(a, b) / (norm_a * norm_b))


def safe_cosine_similarity(
    x: Sequence[float], y: Sequence[float], default: float = 0.0
) -> float:
    """Cosine similarity returning *default* for zero-norm inputs.

    Used where a missing embedding should simply fail to match rather than
    abort a batch correlation pass.
    """
    a = np.asarray(x, dtype=np.float64)
    b = np.asarray(y, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return default
    return float(np.dot(a, b) / (norm_a * norm_b))


def cosine_similarity_matrix(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between rows of X and rows of Y.

    Zero-norm rows produce 0 similarities (matching
    :func:`safe_cosine_similarity` semantics for batch use).
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if X.ndim != 2 or Y.ndim != 2 or X.shape[1] != Y.shape[1]:
        raise ValueError("X and Y must be 2-D with matching feature dimension")
    x_norms = np.linalg.norm(X, axis=1, keepdims=True)
    y_norms = np.linalg.norm(Y, axis=1, keepdims=True)
    x_scaled = np.divide(X, x_norms, out=np.zeros_like(X), where=x_norms > 0)
    y_scaled = np.divide(Y, y_norms, out=np.zeros_like(Y), where=y_norms > 0)
    return x_scaled @ y_scaled.T
